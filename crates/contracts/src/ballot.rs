//! The Ballot voting contract (paper Listing 1 / Appendix A).
//!
//! A faithful port of the Solidity "Voting with delegation" example: the
//! chairperson registers voters, voters cast a vote for one proposal or
//! delegate their vote, and anyone can compute the winning proposal.
//!
//! Storage layout and conflict structure:
//!
//! * `voters` is a per-address mapping, so two different voters' `vote`
//!   calls touch disjoint abstract locks — they commute;
//! * the `voteCount += weight` update uses the additive tally map, so even
//!   votes for the *same* proposal commute (this is why the paper's Ballot
//!   benchmark "suffers little from the extra data conflict");
//! * a double vote touches the same `voters[addr]` entry twice; the second
//!   call observes `voted == true` and throws — that pair of transactions
//!   conflicts, which is exactly how the benchmark injects data conflict.

use cc_vm::snapshot::ToBytes;
use cc_vm::{
    Address, ArgValue, CallContext, CallData, Contract, ContractKind, ContractSnapshot,
    ReturnValue, StorageCell, StorageCounterMap, StorageMap, StorageVec, VmError,
};

/// Per-voter state (Solidity `struct Voter`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Voter {
    /// Voting weight, accumulated by delegation. Zero means "not
    /// registered".
    pub weight: u64,
    /// Whether this voter already voted (or delegated).
    pub voted: bool,
    /// The address this voter delegated to (zero address if none).
    pub delegate: Address,
    /// Index of the proposal voted for (meaningful only if `voted`).
    pub vote: u64,
}

impl ToBytes for Voter {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 1 + 20 + 8);
        out.extend_from_slice(&self.weight.to_le_bytes());
        out.push(u8::from(self.voted));
        out.extend_from_slice(self.delegate.as_bytes());
        out.extend_from_slice(&self.vote.to_le_bytes());
        out
    }
}

/// The Ballot contract.
#[derive(Debug)]
pub struct Ballot {
    address: Address,
    chairperson: StorageCell<Address>,
    voters: StorageMap<Address, Voter>,
    proposal_names: StorageVec<[u8; 32]>,
    vote_counts: StorageCounterMap<u64>,
}

impl Ballot {
    /// Deploys a ballot at `address` with `chairperson` and the given
    /// proposal names (the constructor of the Solidity contract).
    pub fn new(address: Address, chairperson: Address, proposal_names: &[[u8; 32]]) -> Self {
        let tag = address.to_hex();
        let ballot = Ballot {
            address,
            chairperson: StorageCell::new(&format!("Ballot.chairperson.{tag}"), chairperson),
            voters: StorageMap::new(&format!("Ballot.voters.{tag}")),
            proposal_names: StorageVec::new(&format!("Ballot.proposals.{tag}")),
            vote_counts: StorageCounterMap::new(&format!("Ballot.voteCounts.{tag}")),
        };
        // The chairperson gets weight 1, like the Solidity constructor.
        ballot.voters.seed(
            chairperson,
            Voter {
                weight: 1,
                ..Voter::default()
            },
        );
        for (i, name) in proposal_names.iter().enumerate() {
            ballot.proposal_names.seed_push(*name);
            ballot.vote_counts.seed(i as u64, 0);
        }
        ballot
    }

    /// Convenience constructor naming proposals `"proposal-0"`,
    /// `"proposal-1"`, … .
    pub fn with_numbered_proposals(address: Address, chairperson: Address, count: usize) -> Self {
        let names: Vec<[u8; 32]> = (0..count).map(Self::proposal_name).collect();
        Ballot::new(address, chairperson, &names)
    }

    /// The canonical 32-byte name of a numbered proposal.
    pub fn proposal_name(index: usize) -> [u8; 32] {
        let mut name = [0u8; 32];
        let text = format!("proposal-{index}");
        let len = text.len().min(32);
        name[..len].copy_from_slice(&text.as_bytes()[..len]);
        name
    }

    /// Registers `voter` with weight 1 without a transaction (initial-state
    /// setup for benchmarks, mirroring the paper's "voters are already
    /// registered" starting condition).
    pub fn seed_registered_voter(&self, voter: Address) {
        self.voters.seed(
            voter,
            Voter {
                weight: 1,
                ..Voter::default()
            },
        );
    }

    /// Non-transactional view of a voter (tests only).
    pub fn voter(&self, address: &Address) -> Option<Voter> {
        self.voters.peek(address)
    }

    /// Non-transactional view of a proposal's tally (tests only).
    pub fn tally(&self, proposal: u64) -> u64 {
        self.vote_counts.peek(&proposal)
    }

    /// Number of proposals.
    pub fn proposal_count(&self) -> usize {
        self.proposal_names.snapshot_len()
    }

    // ---- contract functions -------------------------------------------------

    fn give_right_to_vote(
        &self,
        ctx: &mut CallContext<'_>,
        voter: Address,
    ) -> Result<ReturnValue, VmError> {
        let sender = ctx.sender();
        if self.chairperson.with(ctx, |chair| *chair != sender)? {
            return ctx.throw("only the chairperson can give the right to vote");
        }
        let existing = self.voters.get(ctx, &voter)?.unwrap_or_default();
        if existing.voted {
            return ctx.throw("voter already voted");
        }
        self.voters.insert(
            ctx,
            voter,
            Voter {
                weight: 1,
                ..existing
            },
        )?;
        Ok(ReturnValue::Unit)
    }

    fn delegate(&self, ctx: &mut CallContext<'_>, mut to: Address) -> Result<ReturnValue, VmError> {
        let sender_addr = ctx.sender();
        let sender = self.voters.get(ctx, &sender_addr)?.unwrap_or_default();
        if sender.voted {
            return ctx.throw("already voted");
        }
        // Forward the delegation as long as `to` also delegated. The
        // Solidity example warns that long chains may consume all gas;
        // every hop here charges storage reads, so the same bound applies.
        loop {
            ctx.charge_steps(1)?;
            // Only the hop target's delegate pointer matters here; read it
            // by reference instead of cloning the whole Voter per hop.
            let next = self
                .voters
                .get_with(ctx, &to, |v| v.map(|v| v.delegate).unwrap_or_default())?;
            if next.is_zero() || next == sender_addr {
                break;
            }
            to = next;
        }
        if to == sender_addr {
            return ctx.throw("delegation loop");
        }

        self.voters.insert(
            ctx,
            sender_addr,
            Voter {
                voted: true,
                delegate: to,
                ..sender.clone()
            },
        )?;

        let delegate = self.voters.get(ctx, &to)?.unwrap_or_default();
        if delegate.voted {
            // The delegate already voted: add our weight to their proposal.
            self.vote_counts.add(ctx, delegate.vote, sender.weight)?;
        } else {
            // Otherwise add to their weight.
            self.voters.insert(
                ctx,
                to,
                Voter {
                    weight: delegate.weight + sender.weight,
                    ..delegate
                },
            )?;
        }
        ctx.emit(
            "Delegated",
            vec![ArgValue::Addr(sender_addr), ArgValue::Addr(to)],
        )?;
        Ok(ReturnValue::Unit)
    }

    fn vote(&self, ctx: &mut CallContext<'_>, proposal: u64) -> Result<ReturnValue, VmError> {
        let sender_addr = ctx.sender();
        let sender = self.voters.get(ctx, &sender_addr)?.unwrap_or_default();
        if sender.voted {
            return ctx.throw("already voted");
        }
        // Solidity throws automatically on an out-of-range index.
        if proposal as usize >= self.proposal_names.snapshot_len() {
            return ctx.throw("proposal out of range");
        }
        self.voters.insert(
            ctx,
            sender_addr,
            Voter {
                voted: true,
                vote: proposal,
                ..sender.clone()
            },
        )?;
        self.vote_counts.add(ctx, proposal, sender.weight)?;
        ctx.emit(
            "Voted",
            vec![
                ArgValue::Addr(sender_addr),
                ArgValue::Uint(u128::from(proposal)),
            ],
        )?;
        Ok(ReturnValue::Unit)
    }

    fn winning_proposal(&self, ctx: &mut CallContext<'_>) -> Result<u64, VmError> {
        let count = self.proposal_names.len(ctx)?;
        let mut winning = 0u64;
        let mut winning_votes = 0u64;
        for p in 0..count as u64 {
            ctx.charge_steps(1)?;
            let votes = self.vote_counts.get(ctx, &p)?;
            if votes > winning_votes {
                winning_votes = votes;
                winning = p;
            }
        }
        Ok(winning)
    }

    fn winner_name(&self, ctx: &mut CallContext<'_>) -> Result<[u8; 32], VmError> {
        let winner = self.winning_proposal(ctx)?;
        let name = self
            .proposal_names
            .get(ctx, winner as usize)?
            .unwrap_or([0u8; 32]);
        Ok(name)
    }
}

impl Contract for Ballot {
    fn kind(&self) -> ContractKind {
        ContractKind("Ballot")
    }

    fn address(&self) -> Address {
        self.address
    }

    fn call(&self, ctx: &mut CallContext<'_>, call: &CallData) -> Result<ReturnValue, VmError> {
        match call.function.as_str() {
            "giveRightToVote" => {
                let voter = call.arg(0)?.as_address()?;
                self.give_right_to_vote(ctx, voter)
            }
            "delegate" => {
                let to = call.arg(0)?.as_address()?;
                self.delegate(ctx, to)
            }
            "vote" => {
                let proposal = call.arg(0)?.as_uint()? as u64;
                self.vote(ctx, proposal)
            }
            "winningProposal" => Ok(ReturnValue::Uint(u128::from(self.winning_proposal(ctx)?))),
            "winnerName" => Ok(ReturnValue::Bytes32(self.winner_name(ctx)?)),
            other => Err(VmError::UnknownFunction {
                function: other.to_string(),
            }),
        }
    }

    fn snapshot(&self) -> ContractSnapshot {
        ContractSnapshot::new(
            "Ballot",
            self.address,
            vec![
                self.chairperson.snapshot_field(),
                self.voters.snapshot_field(),
                self.proposal_names.snapshot_field(),
                self.vote_counts.snapshot_field(),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vm::{ExecutionStatus, Msg, World};
    use std::sync::Arc;

    fn setup(voters: usize) -> (World, Arc<Ballot>, Vec<Address>) {
        let world = World::new();
        let chair = Address::from_index(0);
        let ballot = Arc::new(Ballot::with_numbered_proposals(
            Address::from_name("Ballot"),
            chair,
            3,
        ));
        let accounts: Vec<Address> = (1..=voters as u64).map(Address::from_index).collect();
        for a in &accounts {
            ballot.seed_registered_voter(*a);
        }
        world.deploy(ballot.clone());
        (world, ballot, accounts)
    }

    fn call(world: &World, sender: Address, function: &str, args: Vec<ArgValue>) -> cc_vm::Receipt {
        let txn = world.stm().begin();
        let receipt = world.call(
            &txn,
            Msg::from_sender(sender),
            Address::from_name("Ballot"),
            &CallData::new(function, args),
            1_000_000,
        );
        txn.commit().unwrap();
        receipt
    }

    #[test]
    fn vote_updates_tally_and_voter_state() {
        let (world, ballot, accounts) = setup(3);
        for a in &accounts {
            let r = call(&world, *a, "vote", vec![ArgValue::Uint(1)]);
            assert!(r.succeeded());
        }
        assert_eq!(ballot.tally(1), 3);
        assert_eq!(ballot.tally(0), 0);
        assert!(ballot.voter(&accounts[0]).unwrap().voted);
    }

    #[test]
    fn double_vote_reverts_and_does_not_double_count() {
        let (world, ballot, accounts) = setup(1);
        let voter = accounts[0];
        assert!(call(&world, voter, "vote", vec![ArgValue::Uint(0)]).succeeded());
        let second = call(&world, voter, "vote", vec![ArgValue::Uint(0)]);
        assert!(matches!(second.status, ExecutionStatus::Reverted { .. }));
        assert_eq!(ballot.tally(0), 1);
    }

    #[test]
    fn out_of_range_proposal_reverts() {
        let (world, ballot, accounts) = setup(1);
        let r = call(&world, accounts[0], "vote", vec![ArgValue::Uint(99)]);
        assert!(matches!(r.status, ExecutionStatus::Reverted { .. }));
        assert!(!ballot.voter(&accounts[0]).unwrap().voted);
    }

    #[test]
    fn unregistered_voter_vote_counts_zero_weight() {
        let (world, ballot, _) = setup(0);
        let stranger = Address::from_index(77);
        let r = call(&world, stranger, "vote", vec![ArgValue::Uint(2)]);
        assert!(r.succeeded());
        assert_eq!(ballot.tally(2), 0, "weight-0 vote adds nothing");
        assert!(ballot.voter(&stranger).unwrap().voted);
    }

    #[test]
    fn give_right_to_vote_is_chairperson_only() {
        let (world, ballot, accounts) = setup(1);
        let chair = Address::from_index(0);
        let newcomer = Address::from_index(50);
        let denied = call(
            &world,
            accounts[0],
            "giveRightToVote",
            vec![ArgValue::Addr(newcomer)],
        );
        assert!(matches!(denied.status, ExecutionStatus::Reverted { .. }));
        let granted = call(
            &world,
            chair,
            "giveRightToVote",
            vec![ArgValue::Addr(newcomer)],
        );
        assert!(granted.succeeded());
        assert_eq!(ballot.voter(&newcomer).unwrap().weight, 1);
    }

    #[test]
    fn delegation_moves_weight_before_vote() {
        let (world, ballot, accounts) = setup(2);
        let (a, b) = (accounts[0], accounts[1]);
        assert!(call(&world, a, "delegate", vec![ArgValue::Addr(b)]).succeeded());
        assert_eq!(ballot.voter(&b).unwrap().weight, 2);
        assert!(call(&world, b, "vote", vec![ArgValue::Uint(2)]).succeeded());
        assert_eq!(ballot.tally(2), 2);
    }

    #[test]
    fn delegation_to_voted_delegate_counts_immediately() {
        let (world, ballot, accounts) = setup(2);
        let (a, b) = (accounts[0], accounts[1]);
        assert!(call(&world, b, "vote", vec![ArgValue::Uint(0)]).succeeded());
        assert!(call(&world, a, "delegate", vec![ArgValue::Addr(b)]).succeeded());
        assert_eq!(ballot.tally(0), 2);
    }

    #[test]
    fn delegation_chain_is_followed_and_self_delegation_rejected() {
        let (world, ballot, accounts) = setup(3);
        let (a, b, c) = (accounts[0], accounts[1], accounts[2]);
        assert!(call(&world, b, "delegate", vec![ArgValue::Addr(c)]).succeeded());
        // a delegates to b, which already delegated to c: weight lands on c.
        assert!(call(&world, a, "delegate", vec![ArgValue::Addr(b)]).succeeded());
        assert_eq!(ballot.voter(&c).unwrap().weight, 3);
        // Delegating to yourself (with no outgoing delegation to follow) is
        // the loop the Solidity example detects and rejects.
        let r = call(&world, c, "delegate", vec![ArgValue::Addr(c)]);
        assert!(matches!(r.status, ExecutionStatus::Reverted { .. }));
    }

    #[test]
    fn winner_is_computed() {
        let (world, _ballot, accounts) = setup(5);
        for (i, a) in accounts.iter().enumerate() {
            let proposal = if i < 3 { 2 } else { 0 };
            call(&world, *a, "vote", vec![ArgValue::Uint(proposal)]);
        }
        let r = call(&world, accounts[0], "winningProposal", vec![]);
        assert_eq!(r.output, ReturnValue::Uint(2));
        let name = call(&world, accounts[0], "winnerName", vec![]);
        assert_eq!(name.output, ReturnValue::Bytes32(Ballot::proposal_name(2)));
    }

    #[test]
    fn unknown_function_is_invalid() {
        let (world, _, accounts) = setup(1);
        let r = call(&world, accounts[0], "destroy", vec![]);
        assert!(matches!(r.status, ExecutionStatus::Invalid { .. }));
    }

    #[test]
    fn snapshot_captures_votes() {
        let (world, ballot, accounts) = setup(2);
        let before = ballot.snapshot().digest();
        call(&world, accounts[0], "vote", vec![ArgValue::Uint(0)]);
        let after = ballot.snapshot().digest();
        assert_ne!(before, after);
        assert_eq!(ballot.snapshot().kind, "Ballot");
        assert_eq!(ballot.snapshot().fields.len(), 4);
    }

    #[test]
    fn proposal_name_encoding() {
        let name = Ballot::proposal_name(7);
        assert!(name.starts_with(b"proposal-7"));
        assert_eq!(
            Ballot::with_numbered_proposals(Address::from_name("B2"), Address::from_index(0), 4)
                .proposal_count(),
            4
        );
    }
}
