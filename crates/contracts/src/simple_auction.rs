//! The SimpleAuction contract from the Solidity documentation.
//!
//! One owner opens the auction; anyone can `bid` (attaching currency),
//! outbid bidders can `withdraw` their pending returns, and the owner ends
//! the auction with `auctionEnd`.
//!
//! Conflict structure, matching the paper's benchmark (§7.1):
//!
//! * `withdraw` touches only the caller's entry of `pending_returns`, so
//!   withdrawals by different bidders commute;
//! * `bid_plus_one` — the paper's conflict generator — reads the current
//!   highest bid and overbids it by one, so every such transaction touches
//!   the shared `highest_bid` cell and they all conflict with one another.

use cc_vm::{
    Address, ArgValue, CallContext, CallData, Contract, ContractKind, ContractSnapshot,
    ReturnValue, StorageCell, StorageMap, VmError, Wei,
};

/// The SimpleAuction contract.
#[derive(Debug)]
pub struct SimpleAuction {
    address: Address,
    beneficiary: StorageCell<Address>,
    ended: StorageCell<bool>,
    highest_bidder: StorageCell<Address>,
    highest_bid: StorageCell<u128>,
    pending_returns: StorageMap<Address, u128>,
}

impl SimpleAuction {
    /// Deploys an auction at `address` paying out to `beneficiary`.
    pub fn new(address: Address, beneficiary: Address) -> Self {
        let tag = address.to_hex();
        SimpleAuction {
            address,
            beneficiary: StorageCell::new(&format!("SimpleAuction.beneficiary.{tag}"), beneficiary),
            ended: StorageCell::new(&format!("SimpleAuction.ended.{tag}"), false),
            highest_bidder: StorageCell::new(
                &format!("SimpleAuction.highestBidder.{tag}"),
                Address::ZERO,
            ),
            highest_bid: StorageCell::new(&format!("SimpleAuction.highestBid.{tag}"), 0),
            pending_returns: StorageMap::new(&format!("SimpleAuction.pendingReturns.{tag}")),
        }
    }

    /// Seeds a pending return for `bidder` (benchmark initial state: "the
    /// contract state is initialized by several bidders entering a bid").
    pub fn seed_pending_return(&self, bidder: Address, amount: u128) {
        self.pending_returns.seed(bidder, amount);
    }

    /// Seeds the current highest bid (benchmark initial state).
    pub fn seed_highest_bid(&self, bidder: Address, amount: u128) {
        self.highest_bidder.seed(bidder);
        self.highest_bid.seed(amount);
    }

    /// Non-transactional view of a bidder's pending return (tests only).
    pub fn pending_return(&self, bidder: &Address) -> u128 {
        self.pending_returns.peek(bidder).unwrap_or(0)
    }

    /// Non-transactional view of the highest bid (tests only).
    pub fn current_highest_bid(&self) -> u128 {
        self.highest_bid.peek()
    }

    /// Non-transactional view of the highest bidder (tests only).
    pub fn current_highest_bidder(&self) -> Address {
        self.highest_bidder.peek()
    }

    // ---- contract functions -------------------------------------------------

    fn bid_with_amount(
        &self,
        ctx: &mut CallContext<'_>,
        amount: u128,
    ) -> Result<ReturnValue, VmError> {
        if self.ended.with(ctx, |e| *e)? {
            return ctx.throw("auction already ended");
        }
        let current = self.highest_bid.get(ctx)?;
        if amount <= current {
            return ctx.throw("there already is a higher bid");
        }
        let previous_bidder = self.highest_bidder.get(ctx)?;
        if current != 0 {
            // Let the outbid bidder withdraw their money later.
            self.pending_returns
                .update_or(ctx, previous_bidder, 0, |r| *r += current)?;
        }
        let sender = ctx.sender();
        self.highest_bidder.set(ctx, sender)?;
        self.highest_bid.set(ctx, amount)?;
        ctx.emit(
            "HighestBidIncreased",
            vec![ArgValue::Addr(sender), ArgValue::Uint(amount)],
        )?;
        Ok(ReturnValue::Unit)
    }

    fn bid(&self, ctx: &mut CallContext<'_>) -> Result<ReturnValue, VmError> {
        let amount = ctx.msg().value.amount();
        self.bid_with_amount(ctx, amount)
    }

    /// The paper's conflict generator: read the highest bid and overbid it
    /// by one.
    fn bid_plus_one(&self, ctx: &mut CallContext<'_>) -> Result<ReturnValue, VmError> {
        let current = self.highest_bid.get(ctx)?;
        self.bid_with_amount(ctx, current + 1)
    }

    fn withdraw(&self, ctx: &mut CallContext<'_>) -> Result<ReturnValue, VmError> {
        let sender = ctx.sender();
        let amount = self.pending_returns.get(ctx, &sender)?.unwrap_or(0);
        if amount > 0 {
            self.pending_returns.insert(ctx, sender, 0)?;
            ctx.emit(
                "Withdrawn",
                vec![ArgValue::Addr(sender), ArgValue::Uint(amount)],
            )?;
        }
        Ok(ReturnValue::Amount(Wei::new(amount)))
    }

    fn auction_end(&self, ctx: &mut CallContext<'_>) -> Result<ReturnValue, VmError> {
        if self.ended.with(ctx, |e| *e)? {
            return ctx.throw("auctionEnd has already been called");
        }
        self.ended.set(ctx, true)?;
        let winner = self.highest_bidder.get(ctx)?;
        let amount = self.highest_bid.get(ctx)?;
        ctx.emit(
            "AuctionEnded",
            vec![ArgValue::Addr(winner), ArgValue::Uint(amount)],
        )?;
        Ok(ReturnValue::Amount(Wei::new(amount)))
    }
}

impl Contract for SimpleAuction {
    fn kind(&self) -> ContractKind {
        ContractKind("SimpleAuction")
    }

    fn address(&self) -> Address {
        self.address
    }

    fn call(&self, ctx: &mut CallContext<'_>, call: &CallData) -> Result<ReturnValue, VmError> {
        match call.function.as_str() {
            "bid" => self.bid(ctx),
            "bidPlusOne" => self.bid_plus_one(ctx),
            "withdraw" => self.withdraw(ctx),
            "auctionEnd" => self.auction_end(ctx),
            other => Err(VmError::UnknownFunction {
                function: other.to_string(),
            }),
        }
    }

    fn snapshot(&self) -> ContractSnapshot {
        ContractSnapshot::new(
            "SimpleAuction",
            self.address,
            vec![
                self.beneficiary.snapshot_field(),
                self.ended.snapshot_field(),
                self.highest_bidder.snapshot_field(),
                self.highest_bid.snapshot_field(),
                self.pending_returns.snapshot_field(),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vm::{ExecutionStatus, Msg, Receipt, World};
    use std::sync::Arc;

    fn setup() -> (World, Arc<SimpleAuction>) {
        let world = World::new();
        let auction = Arc::new(SimpleAuction::new(
            Address::from_name("SimpleAuction"),
            Address::from_index(0),
        ));
        world.deploy(auction.clone());
        (world, auction)
    }

    fn call(world: &World, sender: Address, value: u128, function: &str) -> Receipt {
        let txn = world.stm().begin();
        let receipt = world.call(
            &txn,
            Msg::with_value(sender, Wei::new(value)),
            Address::from_name("SimpleAuction"),
            &CallData::nullary(function),
            1_000_000,
        );
        txn.commit().unwrap();
        receipt
    }

    #[test]
    fn bidding_updates_highest_and_pending_returns() {
        let (world, auction) = setup();
        let (a, b) = (Address::from_index(1), Address::from_index(2));
        assert!(call(&world, a, 100, "bid").succeeded());
        assert!(call(&world, b, 150, "bid").succeeded());
        assert_eq!(auction.current_highest_bid(), 150);
        assert_eq!(auction.current_highest_bidder(), b);
        assert_eq!(auction.pending_return(&a), 100);
    }

    #[test]
    fn low_bid_reverts() {
        let (world, auction) = setup();
        let (a, b) = (Address::from_index(1), Address::from_index(2));
        assert!(call(&world, a, 100, "bid").succeeded());
        let r = call(&world, b, 50, "bid");
        assert!(matches!(r.status, ExecutionStatus::Reverted { .. }));
        assert_eq!(auction.current_highest_bidder(), a);
    }

    #[test]
    fn bid_plus_one_always_overbids() {
        let (world, auction) = setup();
        let bidders: Vec<Address> = (1..=5).map(Address::from_index).collect();
        call(&world, bidders[0], 10, "bid");
        for b in &bidders[1..] {
            assert!(call(&world, *b, 0, "bidPlusOne").succeeded());
        }
        assert_eq!(auction.current_highest_bid(), 14);
        assert_eq!(auction.current_highest_bidder(), bidders[4]);
    }

    #[test]
    fn withdraw_returns_pending_and_zeroes_it() {
        let (world, auction) = setup();
        let a = Address::from_index(1);
        auction.seed_pending_return(a, 500);
        let r = call(&world, a, 0, "withdraw");
        assert!(r.succeeded());
        assert_eq!(r.output, ReturnValue::Amount(Wei::new(500)));
        assert_eq!(auction.pending_return(&a), 0);
        // Second withdrawal returns zero and emits nothing.
        let r2 = call(&world, a, 0, "withdraw");
        assert_eq!(r2.output, ReturnValue::Amount(Wei::ZERO));
        assert!(r2.events.is_empty());
    }

    #[test]
    fn auction_end_only_once_and_blocks_bids() {
        let (world, _auction) = setup();
        let owner = Address::from_index(0);
        assert!(call(&world, owner, 0, "auctionEnd").succeeded());
        let again = call(&world, owner, 0, "auctionEnd");
        assert!(matches!(again.status, ExecutionStatus::Reverted { .. }));
        let late_bid = call(&world, Address::from_index(1), 10, "bid");
        assert!(matches!(late_bid.status, ExecutionStatus::Reverted { .. }));
    }

    #[test]
    fn unknown_function() {
        let (world, _) = setup();
        let r = call(&world, Address::from_index(1), 0, "selfdestruct");
        assert!(matches!(r.status, ExecutionStatus::Invalid { .. }));
    }

    #[test]
    fn snapshot_tracks_bids() {
        let (world, auction) = setup();
        let before = auction.snapshot().digest();
        call(&world, Address::from_index(1), 10, "bid");
        assert_ne!(auction.snapshot().digest(), before);
        assert_eq!(auction.snapshot().fields.len(), 5);
    }

    #[test]
    fn seeded_state_is_visible() {
        let (_, auction) = setup();
        auction.seed_highest_bid(Address::from_index(9), 77);
        assert_eq!(auction.current_highest_bid(), 77);
        assert_eq!(auction.current_highest_bidder(), Address::from_index(9));
    }
}
