//! The example smart contracts evaluated in the paper, ported from
//! Solidity to Rust.
//!
//! The paper's prototype translated three contracts from the Solidity
//! documentation and the EtherDoc DApp into Scala and wrapped each function
//! in a speculative atomic section. This crate performs the same port onto
//! the `cc-vm` substrate:
//!
//! * [`Ballot`] — the voting contract from the Solidity documentation
//!   (paper Listing 1 / Appendix A): register voters, vote, delegate,
//!   compute the winner. Conflict in the paper's benchmark comes from
//!   double-voting attempts, which `throw`.
//! * [`SimpleAuction`] — the open-auction example: `bid`, `withdraw`,
//!   `auction_end`, plus the paper's `bid_plus_one` helper that reads the
//!   current highest bid and overbids it by one (the conflict generator of
//!   the SimpleAuction benchmark).
//! * [`EtherDoc`] — the proof-of-existence DApp: create documents, check
//!   existence, transfer ownership. The benchmark's conflicts are
//!   transfers that all credit the contract creator.
//! * [`Token`] — an ERC20-style token used by additional examples and
//!   tests (not part of the paper's benchmarks, but a natural extension
//!   exercising cross-account transfers and cross-contract calls).
//!
//! Each contract struct owns its persistent state as boosted storage and
//! implements [`cc_vm::Contract`], so the same object can be driven by the
//! serial miner, the speculative parallel miner and the deterministic
//! validator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ballot;
pub mod crowdsale;
pub mod etherdoc;
pub mod simple_auction;
pub mod token;

pub use ballot::{Ballot, Voter};
pub use crowdsale::Crowdsale;
pub use etherdoc::{Document, EtherDoc};
pub use simple_auction::SimpleAuction;
pub use token::Token;
