//! The EtherDoc proof-of-existence contract.
//!
//! EtherDoc is a small DApp that notarizes documents: creating a document
//! records its 32-byte hash and the creator as owner; anyone can check a
//! document's existence and the owner can transfer it.
//!
//! Conflict structure, matching the paper's benchmark (§7.1): existence
//! checks on distinct documents commute (per-hash locks), while the
//! benchmark's contending transactions all *transfer ownership to the
//! contract creator* — every such transfer updates the creator's document
//! tally, a single shared record, so they all conflict with one another
//! (which is why EtherDoc's miner speedup drops fastest as the conflict
//! percentage grows).

use cc_vm::snapshot::ToBytes;
use cc_vm::{
    Address, ArgValue, CallContext, CallData, Contract, ContractKind, ContractSnapshot,
    ReturnValue, StorageCell, StorageMap, VmError,
};

/// Metadata of one notarized document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Document {
    /// Current owner.
    pub owner: Address,
    /// Sequence number assigned at creation (1-based).
    pub serial: u64,
    /// Number of times ownership has been transferred.
    pub transfers: u64,
}

impl ToBytes for Document {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + 8 + 8);
        out.extend_from_slice(self.owner.as_bytes());
        out.extend_from_slice(&self.serial.to_le_bytes());
        out.extend_from_slice(&self.transfers.to_le_bytes());
        out
    }
}

/// The EtherDoc contract.
#[derive(Debug)]
pub struct EtherDoc {
    address: Address,
    creator: StorageCell<Address>,
    documents: StorageMap<[u8; 32], Document>,
    owned_count: StorageMap<Address, u64>,
    total_documents: StorageCell<u64>,
}

impl EtherDoc {
    /// Deploys EtherDoc at `address`, created by `creator`.
    pub fn new(address: Address, creator: Address) -> Self {
        let tag = address.to_hex();
        EtherDoc {
            address,
            creator: StorageCell::new(&format!("EtherDoc.creator.{tag}"), creator),
            documents: StorageMap::new(&format!("EtherDoc.documents.{tag}")),
            owned_count: StorageMap::new(&format!("EtherDoc.ownedCount.{tag}")),
            total_documents: StorageCell::new(&format!("EtherDoc.totalDocuments.{tag}"), 0),
        }
    }

    /// Deterministic 32-byte document hash for benchmark/test document `i`.
    pub fn document_hash(i: u64) -> [u8; 32] {
        let digest = cc_primitives::sha256(&{
            let mut enc = cc_primitives::codec::Encoder::with_capacity(16);
            enc.put_str("document");
            enc.put_u64(i);
            enc.into_bytes()
        });
        digest.0
    }

    /// Seeds an existing document (benchmark initial state).
    pub fn seed_document(&self, hash: [u8; 32], owner: Address) {
        let serial = self.total_documents.peek() + 1;
        self.documents.seed(
            hash,
            Document {
                owner,
                serial,
                transfers: 0,
            },
        );
        let current = self.owned_count.peek(&owner).unwrap_or(0);
        self.owned_count.seed(owner, current + 1);
        self.total_documents.seed(serial);
    }

    /// Non-transactional view of a document (tests only).
    pub fn document(&self, hash: &[u8; 32]) -> Option<Document> {
        self.documents.peek(hash)
    }

    /// Non-transactional view of an owner's document tally (tests only).
    pub fn owned_by(&self, owner: &Address) -> u64 {
        self.owned_count.peek(owner).unwrap_or(0)
    }

    /// Non-transactional total number of documents (tests only).
    pub fn total(&self) -> u64 {
        self.total_documents.peek()
    }

    /// The address the contract was created by.
    pub fn creator_address(&self) -> Address {
        self.creator.peek()
    }

    // ---- contract functions -------------------------------------------------

    fn new_document(
        &self,
        ctx: &mut CallContext<'_>,
        hash: [u8; 32],
    ) -> Result<ReturnValue, VmError> {
        if self.documents.contains_key(ctx, &hash)? {
            return ctx.throw("document already exists");
        }
        let serial = self.total_documents.modify(ctx, |n| *n += 1)?;
        let sender = ctx.sender();
        self.documents.insert(
            ctx,
            hash,
            Document {
                owner: sender,
                serial,
                transfers: 0,
            },
        )?;
        self.owned_count.update_or(ctx, sender, 0, |c| *c += 1)?;
        ctx.emit(
            "DocumentCreated",
            vec![ArgValue::Bytes32(hash), ArgValue::Addr(sender)],
        )?;
        Ok(ReturnValue::Uint(u128::from(serial)))
    }

    fn has_document(
        &self,
        ctx: &mut CallContext<'_>,
        hash: [u8; 32],
    ) -> Result<ReturnValue, VmError> {
        Ok(ReturnValue::Bool(self.documents.contains_key(ctx, &hash)?))
    }

    fn get_owner(&self, ctx: &mut CallContext<'_>, hash: [u8; 32]) -> Result<ReturnValue, VmError> {
        match self
            .documents
            .get_with(ctx, &hash, |doc| doc.map(|doc| doc.owner))?
        {
            Some(owner) => Ok(ReturnValue::Addr(owner)),
            None => ctx.throw("no such document"),
        }
    }

    fn transfer_document(
        &self,
        ctx: &mut CallContext<'_>,
        hash: [u8; 32],
        new_owner: Address,
    ) -> Result<ReturnValue, VmError> {
        let Some(doc) = self.documents.get(ctx, &hash)? else {
            return ctx.throw("no such document");
        };
        let sender = ctx.sender();
        if doc.owner != sender {
            return ctx.throw("only the owner can transfer a document");
        }
        let previous_owner = doc.owner;
        self.documents.insert(
            ctx,
            hash,
            Document {
                owner: new_owner,
                transfers: doc.transfers + 1,
                ..doc
            },
        )?;
        // Maintaining the per-owner tallies is what makes "everyone
        // transfers to the creator" transactions contend: they all
        // read-modify-write the creator's entry.
        self.owned_count
            .update_or(ctx, previous_owner, 0, |c| *c = c.saturating_sub(1))?;
        self.owned_count.update_or(ctx, new_owner, 0, |c| *c += 1)?;
        ctx.emit(
            "DocumentTransferred",
            vec![
                ArgValue::Bytes32(hash),
                ArgValue::Addr(previous_owner),
                ArgValue::Addr(new_owner),
            ],
        )?;
        Ok(ReturnValue::Unit)
    }
}

impl Contract for EtherDoc {
    fn kind(&self) -> ContractKind {
        ContractKind("EtherDoc")
    }

    fn address(&self) -> Address {
        self.address
    }

    fn call(&self, ctx: &mut CallContext<'_>, call: &CallData) -> Result<ReturnValue, VmError> {
        match call.function.as_str() {
            "newDocument" => {
                let hash = call.arg(0)?.as_bytes32()?;
                self.new_document(ctx, hash)
            }
            "hasDocument" => {
                let hash = call.arg(0)?.as_bytes32()?;
                self.has_document(ctx, hash)
            }
            "getOwner" => {
                let hash = call.arg(0)?.as_bytes32()?;
                self.get_owner(ctx, hash)
            }
            "transferDocument" => {
                let hash = call.arg(0)?.as_bytes32()?;
                let new_owner = call.arg(1)?.as_address()?;
                self.transfer_document(ctx, hash, new_owner)
            }
            other => Err(VmError::UnknownFunction {
                function: other.to_string(),
            }),
        }
    }

    fn snapshot(&self) -> ContractSnapshot {
        ContractSnapshot::new(
            "EtherDoc",
            self.address,
            vec![
                self.creator.snapshot_field(),
                self.documents.snapshot_field(),
                self.owned_count.snapshot_field(),
                self.total_documents.snapshot_field(),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vm::{ExecutionStatus, Msg, Receipt, World};
    use std::sync::Arc;

    fn setup() -> (World, Arc<EtherDoc>) {
        let world = World::new();
        let etherdoc = Arc::new(EtherDoc::new(
            Address::from_name("EtherDoc"),
            Address::from_index(0),
        ));
        world.deploy(etherdoc.clone());
        (world, etherdoc)
    }

    fn call(world: &World, sender: Address, function: &str, args: Vec<ArgValue>) -> Receipt {
        let txn = world.stm().begin();
        let receipt = world.call(
            &txn,
            Msg::from_sender(sender),
            Address::from_name("EtherDoc"),
            &CallData::new(function, args),
            1_000_000,
        );
        txn.commit().unwrap();
        receipt
    }

    #[test]
    fn create_check_and_owner() {
        let (world, etherdoc) = setup();
        let creator = Address::from_index(5);
        let hash = EtherDoc::document_hash(1);
        let r = call(
            &world,
            creator,
            "newDocument",
            vec![ArgValue::Bytes32(hash)],
        );
        assert!(r.succeeded());
        assert_eq!(r.output, ReturnValue::Uint(1));
        assert_eq!(etherdoc.total(), 1);
        assert_eq!(etherdoc.owned_by(&creator), 1);

        let has = call(
            &world,
            creator,
            "hasDocument",
            vec![ArgValue::Bytes32(hash)],
        );
        assert_eq!(has.output, ReturnValue::Bool(true));
        let missing = call(
            &world,
            creator,
            "hasDocument",
            vec![ArgValue::Bytes32(EtherDoc::document_hash(9))],
        );
        assert_eq!(missing.output, ReturnValue::Bool(false));

        let owner = call(&world, creator, "getOwner", vec![ArgValue::Bytes32(hash)]);
        assert_eq!(owner.output, ReturnValue::Addr(creator));
    }

    #[test]
    fn duplicate_creation_reverts() {
        let (world, etherdoc) = setup();
        let hash = EtherDoc::document_hash(1);
        call(
            &world,
            Address::from_index(1),
            "newDocument",
            vec![ArgValue::Bytes32(hash)],
        );
        let dup = call(
            &world,
            Address::from_index(2),
            "newDocument",
            vec![ArgValue::Bytes32(hash)],
        );
        assert!(matches!(dup.status, ExecutionStatus::Reverted { .. }));
        assert_eq!(etherdoc.total(), 1);
    }

    #[test]
    fn transfer_moves_ownership_and_tallies() {
        let (world, etherdoc) = setup();
        let (a, b) = (Address::from_index(1), Address::from_index(2));
        let hash = EtherDoc::document_hash(3);
        etherdoc.seed_document(hash, a);
        let r = call(
            &world,
            a,
            "transferDocument",
            vec![ArgValue::Bytes32(hash), ArgValue::Addr(b)],
        );
        assert!(r.succeeded());
        let doc = etherdoc.document(&hash).unwrap();
        assert_eq!(doc.owner, b);
        assert_eq!(doc.transfers, 1);
        assert_eq!(etherdoc.owned_by(&a), 0);
        assert_eq!(etherdoc.owned_by(&b), 1);
    }

    #[test]
    fn only_owner_may_transfer_and_missing_doc_reverts() {
        let (world, etherdoc) = setup();
        let (a, b) = (Address::from_index(1), Address::from_index(2));
        let hash = EtherDoc::document_hash(4);
        etherdoc.seed_document(hash, a);
        let stolen = call(
            &world,
            b,
            "transferDocument",
            vec![ArgValue::Bytes32(hash), ArgValue::Addr(b)],
        );
        assert!(matches!(stolen.status, ExecutionStatus::Reverted { .. }));
        let missing = call(
            &world,
            a,
            "transferDocument",
            vec![
                ArgValue::Bytes32(EtherDoc::document_hash(99)),
                ArgValue::Addr(b),
            ],
        );
        assert!(matches!(missing.status, ExecutionStatus::Reverted { .. }));
        assert_eq!(etherdoc.document(&hash).unwrap().owner, a);
    }

    #[test]
    fn get_owner_of_missing_document_reverts() {
        let (world, _) = setup();
        let r = call(
            &world,
            Address::from_index(1),
            "getOwner",
            vec![ArgValue::Bytes32(EtherDoc::document_hash(42))],
        );
        assert!(matches!(r.status, ExecutionStatus::Reverted { .. }));
    }

    #[test]
    fn seeded_documents_count() {
        let (_, etherdoc) = setup();
        for i in 0..5 {
            etherdoc.seed_document(EtherDoc::document_hash(i), Address::from_index(i));
        }
        assert_eq!(etherdoc.total(), 5);
        assert_eq!(etherdoc.creator_address(), Address::from_index(0));
    }

    #[test]
    fn unknown_function_and_bad_args() {
        let (world, _) = setup();
        let unknown = call(&world, Address::from_index(1), "shredDocument", vec![]);
        assert!(matches!(unknown.status, ExecutionStatus::Invalid { .. }));
        let bad = call(
            &world,
            Address::from_index(1),
            "hasDocument",
            vec![ArgValue::Uint(1)],
        );
        assert!(matches!(bad.status, ExecutionStatus::Invalid { .. }));
    }

    #[test]
    fn snapshot_has_all_fields() {
        let (_, etherdoc) = setup();
        assert_eq!(etherdoc.snapshot().fields.len(), 4);
        assert_eq!(etherdoc.snapshot().kind, "EtherDoc");
    }

    #[test]
    fn document_hashes_are_distinct() {
        assert_ne!(EtherDoc::document_hash(1), EtherDoc::document_hash(2));
        assert_eq!(EtherDoc::document_hash(1), EtherDoc::document_hash(1));
    }
}
