//! A Crowdsale contract that sells [`crate::Token`] units for attached
//! currency via a **cross-contract call**.
//!
//! Not one of the paper's benchmarks, but the natural exercise of the
//! nested-speculative-action machinery (paper §3): every purchase calls
//! into the token contract, and a failed mint (e.g. the per-buyer cap is
//! exceeded) rolls back only the nested action while the crowdsale's own
//! bookkeeping of the attempt survives.

use cc_vm::{
    Address, ArgValue, CallContext, CallData, Contract, ContractKind, ContractSnapshot,
    ReturnValue, StorageCell, StorageMap, VmError, Wei,
};

/// The Crowdsale contract.
#[derive(Debug)]
pub struct Crowdsale {
    address: Address,
    /// The token being sold. The crowdsale must be the token's minter.
    token: Address,
    owner: StorageCell<Address>,
    /// Price in wei per token unit.
    price: StorageCell<u128>,
    /// Maximum units any single buyer may purchase in total.
    per_buyer_cap: StorageCell<u128>,
    /// Units bought so far per buyer.
    purchased: StorageMap<Address, u128>,
    /// Total wei raised by successful purchases.
    raised: StorageCell<u128>,
    /// Number of purchase attempts (successful or not) — deliberately
    /// updated *before* the nested token call so tests can observe that a
    /// failed nested call does not roll back the parent's bookkeeping.
    attempts: StorageCell<u64>,
    open: StorageCell<bool>,
}

impl Crowdsale {
    /// Deploys a crowdsale at `address` selling `token` at `price` wei per
    /// unit with a per-buyer cap.
    pub fn new(
        address: Address,
        token: Address,
        owner: Address,
        price: u128,
        per_buyer_cap: u128,
    ) -> Self {
        let tag = address.to_hex();
        Crowdsale {
            address,
            token,
            owner: StorageCell::new(&format!("Crowdsale.owner.{tag}"), owner),
            price: StorageCell::new(&format!("Crowdsale.price.{tag}"), price),
            per_buyer_cap: StorageCell::new(&format!("Crowdsale.cap.{tag}"), per_buyer_cap),
            purchased: StorageMap::new(&format!("Crowdsale.purchased.{tag}")),
            raised: StorageCell::new(&format!("Crowdsale.raised.{tag}"), 0),
            attempts: StorageCell::new(&format!("Crowdsale.attempts.{tag}"), 0),
            open: StorageCell::new(&format!("Crowdsale.open.{tag}"), true),
        }
    }

    /// Non-transactional view of the total raised (tests only).
    pub fn total_raised(&self) -> u128 {
        self.raised.peek()
    }

    /// Non-transactional view of the attempt counter (tests only).
    pub fn attempt_count(&self) -> u64 {
        self.attempts.peek()
    }

    /// Non-transactional view of a buyer's purchased units (tests only).
    pub fn purchased_by(&self, buyer: &Address) -> u128 {
        self.purchased.peek(buyer).unwrap_or(0)
    }

    fn buy(&self, ctx: &mut CallContext<'_>) -> Result<ReturnValue, VmError> {
        if !self.open.with(ctx, |o| *o)? {
            return ctx.throw("crowdsale is closed");
        }
        let value = ctx.msg().value.amount();
        let price = self.price.get(ctx)?;
        if price == 0 || value < price {
            return ctx.throw("payment does not cover one token");
        }
        let units = value / price;
        let buyer = ctx.sender();

        // Record the attempt unconditionally (survives a failed mint).
        self.attempts.modify(ctx, |a| *a += 1)?;

        let already = self.purchased.get(ctx, &buyer)?.unwrap_or(0);
        if already + units > self.per_buyer_cap.get(ctx)? {
            return ctx.throw("per-buyer cap exceeded");
        }

        // Nested speculative action: mint the tokens on the token contract.
        // If the token contract rejects the mint, only its effects unwind.
        let mint = CallData::new("mint", vec![ArgValue::Addr(buyer), ArgValue::Uint(units)]);
        ctx.call_contract(self.token, &mint, Wei::ZERO)?;

        self.purchased.insert(ctx, buyer, already + units)?;
        self.raised.modify(ctx, |r| *r += units * price)?;
        ctx.emit(
            "TokensPurchased",
            vec![ArgValue::Addr(buyer), ArgValue::Uint(units)],
        )?;
        Ok(ReturnValue::Uint(units))
    }

    fn close(&self, ctx: &mut CallContext<'_>) -> Result<ReturnValue, VmError> {
        let sender = ctx.sender();
        if self.owner.with(ctx, |owner| *owner != sender)? {
            return ctx.throw("only the owner can close the sale");
        }
        self.open.set(ctx, false)?;
        let raised = self.raised.get(ctx)?;
        ctx.emit("SaleClosed", vec![ArgValue::Uint(raised)])?;
        Ok(ReturnValue::Unit)
    }
}

impl Contract for Crowdsale {
    fn kind(&self) -> ContractKind {
        ContractKind("Crowdsale")
    }

    fn address(&self) -> Address {
        self.address
    }

    fn call(&self, ctx: &mut CallContext<'_>, call: &CallData) -> Result<ReturnValue, VmError> {
        match call.function.as_str() {
            "buy" => self.buy(ctx),
            "close" => self.close(ctx),
            "raised" => Ok(ReturnValue::Uint(self.raised.get(ctx)?)),
            other => Err(VmError::UnknownFunction {
                function: other.to_string(),
            }),
        }
    }

    fn snapshot(&self) -> ContractSnapshot {
        ContractSnapshot::new(
            "Crowdsale",
            self.address,
            vec![
                self.owner.snapshot_field(),
                self.price.snapshot_field(),
                self.per_buyer_cap.snapshot_field(),
                self.purchased.snapshot_field(),
                self.raised.snapshot_field(),
                self.attempts.snapshot_field(),
                self.open.snapshot_field(),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Token;
    use cc_vm::{ExecutionStatus, Msg, Receipt, World};
    use std::sync::Arc;

    fn setup(cap: u128) -> (World, Arc<Crowdsale>, Arc<Token>) {
        let world = World::new();
        let sale_addr = Address::from_name("Crowdsale");
        let token_addr = Address::from_name("Crowdsale.Token");
        // The crowdsale contract itself is the token's minter.
        let token = Arc::new(Token::new(token_addr, sale_addr));
        let sale = Arc::new(Crowdsale::new(
            sale_addr,
            token_addr,
            Address::from_index(0),
            10,
            cap,
        ));
        world.deploy(token.clone());
        world.deploy(sale.clone());
        (world, sale, token)
    }

    fn buy(world: &World, sender: Address, wei: u128) -> Receipt {
        let txn = world.stm().begin();
        let receipt = world.call(
            &txn,
            Msg::with_value(sender, Wei::new(wei)),
            Address::from_name("Crowdsale"),
            &CallData::nullary("buy"),
            2_000_000,
        );
        txn.commit().unwrap();
        receipt
    }

    #[test]
    fn purchases_mint_tokens_through_the_nested_call() {
        let (world, sale, token) = setup(1_000);
        let alice = Address::from_index(1);
        let receipt = buy(&world, alice, 150);
        assert!(receipt.succeeded());
        assert_eq!(receipt.output, ReturnValue::Uint(15));
        assert_eq!(token.balance(&alice), 15);
        assert_eq!(sale.total_raised(), 150);
        assert_eq!(sale.purchased_by(&alice), 15);
        assert_eq!(sale.attempt_count(), 1);
    }

    #[test]
    fn underpayment_and_cap_violations_revert_but_count_attempts() {
        let (world, sale, token) = setup(5);
        let bob = Address::from_index(2);
        // Underpayment reverts before the attempt counter (price check first).
        let broke = buy(&world, bob, 3);
        assert!(matches!(broke.status, ExecutionStatus::Reverted { .. }));

        // Within cap: ok.
        assert!(buy(&world, bob, 50).succeeded());
        assert_eq!(token.balance(&bob), 5);

        // Over the cap: the whole call reverts (cap checked before the
        // nested mint), token balance unchanged, attempts counter rolled
        // back with the rest of the call.
        let greedy = buy(&world, bob, 100);
        assert!(matches!(greedy.status, ExecutionStatus::Reverted { .. }));
        assert_eq!(token.balance(&bob), 5);
        assert_eq!(sale.total_raised(), 50);
        assert_eq!(sale.attempt_count(), 1);
    }

    #[test]
    fn closed_sale_rejects_purchases() {
        let (world, _sale, _token) = setup(100);
        let owner = Address::from_index(0);
        let txn = world.stm().begin();
        let closed = world.call(
            &txn,
            Msg::from_sender(owner),
            Address::from_name("Crowdsale"),
            &CallData::nullary("close"),
            2_000_000,
        );
        txn.commit().unwrap();
        assert!(closed.succeeded());
        let late = buy(&world, Address::from_index(3), 20);
        assert!(matches!(late.status, ExecutionStatus::Reverted { .. }));
    }

    #[test]
    fn only_owner_can_close() {
        let (world, _, _) = setup(100);
        let txn = world.stm().begin();
        let denied = world.call(
            &txn,
            Msg::from_sender(Address::from_index(9)),
            Address::from_name("Crowdsale"),
            &CallData::nullary("close"),
            2_000_000,
        );
        txn.commit().unwrap();
        assert!(matches!(denied.status, ExecutionStatus::Reverted { .. }));
    }

    #[test]
    fn successive_purchases_by_distinct_buyers_accumulate() {
        // Purchases share the crowdsale's scalar state (price, raised,
        // attempts) and the token's total supply, so concurrent purchases
        // serialize through those abstract locks; here we simply check
        // that back-to-back purchases by different buyers accumulate
        // correctly across the nested token calls.
        let (world, sale, token) = setup(1_000);
        let a = Address::from_index(5);
        let b = Address::from_index(6);
        assert!(buy(&world, a, 100).succeeded());
        assert!(buy(&world, b, 200).succeeded());
        assert_eq!(token.balance(&a), 10);
        assert_eq!(token.balance(&b), 20);
        assert_eq!(token.supply(), 30);
        assert_eq!(sale.total_raised(), 300);
        assert_eq!(sale.attempt_count(), 2);
    }

    #[test]
    fn snapshot_has_all_fields() {
        let (_, sale, _) = setup(10);
        assert_eq!(sale.snapshot().fields.len(), 7);
        assert_eq!(sale.snapshot().kind, "Crowdsale");
    }
}
