//! An ERC20-style token contract.
//!
//! Not part of the paper's benchmark suite, but a natural extension: token
//! transfers between disjoint account pairs commute (per-account balance
//! locks), while transfers touching a common account conflict — the same
//! structure the paper's workloads exhibit, on the contract most real
//! blocks are dominated by. It is used by the extra examples and by the
//! cross-contract integration tests (a `Crowdsale`-style purchase calls
//! into the token).

use cc_vm::snapshot::ToBytes;
use cc_vm::{
    Address, ArgValue, CallContext, CallData, Contract, ContractKind, ContractSnapshot,
    ReturnValue, StorageCell, StorageMap, VmError,
};

/// Key of the allowance mapping: `(owner, spender)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllowanceKey {
    /// The account granting the allowance.
    pub owner: Address,
    /// The account allowed to spend.
    pub spender: Address,
}

impl ToBytes for AllowanceKey {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        out.extend_from_slice(self.owner.as_bytes());
        out.extend_from_slice(self.spender.as_bytes());
        out
    }
}

/// The Token contract.
#[derive(Debug)]
pub struct Token {
    address: Address,
    minter: StorageCell<Address>,
    total_supply: StorageCell<u128>,
    balances: StorageMap<Address, u128>,
    allowances: StorageMap<AllowanceKey, u128>,
}

impl Token {
    /// Deploys a token at `address` whose `minter` may create new supply.
    pub fn new(address: Address, minter: Address) -> Self {
        let tag = address.to_hex();
        Token {
            address,
            minter: StorageCell::new(&format!("Token.minter.{tag}"), minter),
            total_supply: StorageCell::new(&format!("Token.totalSupply.{tag}"), 0),
            balances: StorageMap::new(&format!("Token.balances.{tag}")),
            allowances: StorageMap::new(&format!("Token.allowances.{tag}")),
        }
    }

    /// Seeds an account balance (initial state for tests and examples).
    pub fn seed_balance(&self, account: Address, amount: u128) {
        let previous = self.balances.peek(&account).unwrap_or(0);
        self.balances.seed(account, amount);
        self.total_supply
            .seed(self.total_supply.peek() - previous + amount);
    }

    /// Non-transactional balance view (tests only).
    pub fn balance(&self, account: &Address) -> u128 {
        self.balances.peek(account).unwrap_or(0)
    }

    /// Non-transactional total supply view (tests only).
    pub fn supply(&self) -> u128 {
        self.total_supply.peek()
    }

    // ---- contract functions -------------------------------------------------

    fn mint(
        &self,
        ctx: &mut CallContext<'_>,
        to: Address,
        amount: u128,
    ) -> Result<ReturnValue, VmError> {
        let sender = ctx.sender();
        if self.minter.with(ctx, |minter| *minter != sender)? {
            return ctx.throw("only the minter can mint");
        }
        self.balances.update_or(ctx, to, 0, |b| *b += amount)?;
        self.total_supply.modify(ctx, |s| *s += amount)?;
        ctx.emit("Minted", vec![ArgValue::Addr(to), ArgValue::Uint(amount)])?;
        Ok(ReturnValue::Unit)
    }

    fn transfer(
        &self,
        ctx: &mut CallContext<'_>,
        from: Address,
        to: Address,
        amount: u128,
    ) -> Result<ReturnValue, VmError> {
        let from_balance = self.balances.get(ctx, &from)?.unwrap_or(0);
        if from_balance < amount {
            return ctx.throw("insufficient balance");
        }
        self.balances.insert(ctx, from, from_balance - amount)?;
        self.balances.update_or(ctx, to, 0, |b| *b += amount)?;
        ctx.emit(
            "Transfer",
            vec![
                ArgValue::Addr(from),
                ArgValue::Addr(to),
                ArgValue::Uint(amount),
            ],
        )?;
        Ok(ReturnValue::Bool(true))
    }

    fn approve(
        &self,
        ctx: &mut CallContext<'_>,
        spender: Address,
        amount: u128,
    ) -> Result<ReturnValue, VmError> {
        let owner = ctx.sender();
        self.allowances
            .insert(ctx, AllowanceKey { owner, spender }, amount)?;
        ctx.emit(
            "Approval",
            vec![
                ArgValue::Addr(owner),
                ArgValue::Addr(spender),
                ArgValue::Uint(amount),
            ],
        )?;
        Ok(ReturnValue::Bool(true))
    }

    fn transfer_from(
        &self,
        ctx: &mut CallContext<'_>,
        from: Address,
        to: Address,
        amount: u128,
    ) -> Result<ReturnValue, VmError> {
        let spender = ctx.sender();
        let key = AllowanceKey {
            owner: from,
            spender,
        };
        let allowance = self.allowances.get(ctx, &key)?.unwrap_or(0);
        if allowance < amount {
            return ctx.throw("allowance exceeded");
        }
        self.allowances.insert(ctx, key, allowance - amount)?;
        self.transfer(ctx, from, to, amount)
    }
}

impl Contract for Token {
    fn kind(&self) -> ContractKind {
        ContractKind("Token")
    }

    fn address(&self) -> Address {
        self.address
    }

    fn call(&self, ctx: &mut CallContext<'_>, call: &CallData) -> Result<ReturnValue, VmError> {
        match call.function.as_str() {
            "mint" => {
                let to = call.arg(0)?.as_address()?;
                let amount = call.arg(1)?.as_uint()?;
                self.mint(ctx, to, amount)
            }
            "transfer" => {
                let to = call.arg(0)?.as_address()?;
                let amount = call.arg(1)?.as_uint()?;
                let from = ctx.sender();
                self.transfer(ctx, from, to, amount)
            }
            "approve" => {
                let spender = call.arg(0)?.as_address()?;
                let amount = call.arg(1)?.as_uint()?;
                self.approve(ctx, spender, amount)
            }
            "transferFrom" => {
                let from = call.arg(0)?.as_address()?;
                let to = call.arg(1)?.as_address()?;
                let amount = call.arg(2)?.as_uint()?;
                self.transfer_from(ctx, from, to, amount)
            }
            "balanceOf" => {
                let who = call.arg(0)?.as_address()?;
                let balance = self.balances.get(ctx, &who)?.unwrap_or(0);
                Ok(ReturnValue::Uint(balance))
            }
            "totalSupply" => Ok(ReturnValue::Uint(self.total_supply.get(ctx)?)),
            other => Err(VmError::UnknownFunction {
                function: other.to_string(),
            }),
        }
    }

    fn snapshot(&self) -> ContractSnapshot {
        ContractSnapshot::new(
            "Token",
            self.address,
            vec![
                self.minter.snapshot_field(),
                self.total_supply.snapshot_field(),
                self.balances.snapshot_field(),
                self.allowances.snapshot_field(),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vm::{ExecutionStatus, Msg, Receipt, World};
    use std::sync::Arc;

    fn setup() -> (World, Arc<Token>) {
        let world = World::new();
        let token = Arc::new(Token::new(
            Address::from_name("Token"),
            Address::from_index(0),
        ));
        world.deploy(token.clone());
        (world, token)
    }

    fn call(world: &World, sender: Address, function: &str, args: Vec<ArgValue>) -> Receipt {
        let txn = world.stm().begin();
        let receipt = world.call(
            &txn,
            Msg::from_sender(sender),
            Address::from_name("Token"),
            &CallData::new(function, args),
            1_000_000,
        );
        txn.commit().unwrap();
        receipt
    }

    #[test]
    fn mint_and_transfer() {
        let (world, token) = setup();
        let minter = Address::from_index(0);
        let (a, b) = (Address::from_index(1), Address::from_index(2));
        assert!(call(
            &world,
            minter,
            "mint",
            vec![ArgValue::Addr(a), ArgValue::Uint(100)]
        )
        .succeeded());
        assert_eq!(token.supply(), 100);
        assert!(call(
            &world,
            a,
            "transfer",
            vec![ArgValue::Addr(b), ArgValue::Uint(30)]
        )
        .succeeded());
        assert_eq!(token.balance(&a), 70);
        assert_eq!(token.balance(&b), 30);
    }

    #[test]
    fn mint_requires_minter_and_transfer_requires_funds() {
        let (world, token) = setup();
        let a = Address::from_index(1);
        let denied = call(
            &world,
            a,
            "mint",
            vec![ArgValue::Addr(a), ArgValue::Uint(5)],
        );
        assert!(matches!(denied.status, ExecutionStatus::Reverted { .. }));
        let broke = call(
            &world,
            a,
            "transfer",
            vec![ArgValue::Addr(a), ArgValue::Uint(5)],
        );
        assert!(matches!(broke.status, ExecutionStatus::Reverted { .. }));
        assert_eq!(token.supply(), 0);
    }

    #[test]
    fn approve_and_transfer_from() {
        let (world, token) = setup();
        let (owner, spender, dest) = (
            Address::from_index(1),
            Address::from_index(2),
            Address::from_index(3),
        );
        token.seed_balance(owner, 50);
        assert!(call(
            &world,
            owner,
            "approve",
            vec![ArgValue::Addr(spender), ArgValue::Uint(20)]
        )
        .succeeded());
        assert!(call(
            &world,
            spender,
            "transferFrom",
            vec![
                ArgValue::Addr(owner),
                ArgValue::Addr(dest),
                ArgValue::Uint(15)
            ]
        )
        .succeeded());
        assert_eq!(token.balance(&dest), 15);
        let too_much = call(
            &world,
            spender,
            "transferFrom",
            vec![
                ArgValue::Addr(owner),
                ArgValue::Addr(dest),
                ArgValue::Uint(15),
            ],
        );
        assert!(matches!(too_much.status, ExecutionStatus::Reverted { .. }));
    }

    #[test]
    fn views_and_snapshot() {
        let (world, token) = setup();
        let a = Address::from_index(1);
        token.seed_balance(a, 42);
        let balance = call(&world, a, "balanceOf", vec![ArgValue::Addr(a)]);
        assert_eq!(balance.output, ReturnValue::Uint(42));
        let supply = call(&world, a, "totalSupply", vec![]);
        assert_eq!(supply.output, ReturnValue::Uint(42));
        assert_eq!(token.snapshot().fields.len(), 4);
    }

    #[test]
    fn unknown_function() {
        let (world, _) = setup();
        let r = call(&world, Address::from_index(1), "burnItAll", vec![]);
        assert!(matches!(r.status, ExecutionStatus::Invalid { .. }));
    }
}
