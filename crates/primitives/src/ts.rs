//! Commit timestamps for multi-version concurrency control.
//!
//! A [`Timestamp`] is a monotonically increasing logical instant assigned
//! by a timestamp oracle. Timestamp `0` ([`Timestamp::BASE`]) denotes the
//! pre-block base state: every version installed during a block carries a
//! strictly positive timestamp, so a reader whose snapshot is `BASE` sees
//! only the backing store.

use std::fmt;

/// A logical commit instant. Ordered, copyable and cheap to compare; the
/// wrapped `u64` never wraps in practice (one increment per committed
/// update transaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The pre-block base state: older than every installed version.
    pub const BASE: Timestamp = Timestamp(0);

    /// Wraps a raw counter value.
    pub const fn from_raw(raw: u64) -> Self {
        Timestamp(raw)
    }

    /// The raw counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The immediately following timestamp.
    #[must_use]
    pub const fn next(self) -> Self {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(raw: u64) -> Self {
        Timestamp(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_base() {
        assert_eq!(Timestamp::BASE.raw(), 0);
        assert!(Timestamp::BASE < Timestamp::from_raw(1));
        assert_eq!(Timestamp::from_raw(6).next(), Timestamp::from_raw(7));
        assert_eq!(Timestamp::from_raw(3).to_string(), "t3");
        assert_eq!(Timestamp::from(9u64), Timestamp::from_raw(9));
    }
}
