//! FNV-1a 64-bit hashing, used to derive abstract-lock keys.
//!
//! The transactional-boosting runtime maps every storage operation to an
//! *abstract lock* identified by `(lock space, key hash)`. The key hash only
//! needs to be deterministic and well distributed: a collision between two
//! distinct keys is harmless — the two operations are conservatively treated
//! as conflicting, which costs parallelism but never correctness.

use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A [`Hasher`] implementing 64-bit FNV-1a.
///
/// # Example
///
/// ```
/// use cc_primitives::fnv::FnvHasher;
/// use std::hash::{Hash, Hasher};
/// let mut h = FnvHasher::new();
/// 42u64.hash(&mut h);
/// let a = h.finish();
/// let mut h = FnvHasher::new();
/// 42u64.hash(&mut h);
/// assert_eq!(a, h.finish());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl FnvHasher {
    /// Creates a hasher seeded with the standard FNV offset basis.
    pub fn new() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Default for FnvHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut state = self.0;
        for &b in bytes {
            state ^= u64::from(b);
            state = state.wrapping_mul(FNV_PRIME);
        }
        self.0 = state;
    }
}

/// Hashes a byte slice with FNV-1a in one call.
///
/// # Example
///
/// ```
/// use cc_primitives::fnv::fnv1a;
/// assert_ne!(fnv1a(b"alice"), fnv1a(b"bob"));
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FnvHasher::new();
    h.write(bytes);
    h.finish()
}

/// Hashes any `Hash` value with FNV-1a, producing a deterministic `u64`.
///
/// Deterministic across runs and processes (unlike `RandomState`), which the
/// validator relies on when comparing its lock traces with the miner's
/// published lock profiles.
pub fn fnv1a_of<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    #[cfg(debug_assertions)]
    KEY_HASH_COUNT.with(|c| c.set(c.get() + 1));
    let mut h = FnvHasher::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(debug_assertions)]
thread_local! {
    /// Debug-only tally of [`fnv1a_of`] calls on this thread — the
    /// hash-count hook the STM crate's hot-path tests assert against
    /// ("each boosted storage operation hashes its key exactly once").
    static KEY_HASH_COUNT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Debug-only: number of [`fnv1a_of`] key-hash computations performed on
/// the current thread since it started. Tests snapshot this before and
/// after an operation to assert how many times the operation hashed a
/// key. Compiled out of release builds (release code must not pay for the
/// counter, and perf numbers must not include it).
#[cfg(debug_assertions)]
pub fn key_hash_count() -> u64 {
    KEY_HASH_COUNT.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn deterministic_for_hashables() {
        assert_eq!(fnv1a_of(&(1u64, "voter")), fnv1a_of(&(1u64, "voter")));
        assert_ne!(fnv1a_of(&(1u64, "voter")), fnv1a_of(&(2u64, "voter")));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Not a rigorous distribution test; just confirm sequential keys do
        // not collapse onto a handful of values.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(fnv1a_of(&i));
        }
        assert_eq!(seen.len(), 10_000);
    }
}
