//! Deterministic byte-oriented encoding.
//!
//! Blocks, schedules and contract-state snapshots are committed to by hash,
//! so their byte encoding must be canonical: the same logical value always
//! produces the same bytes. This module provides a small length-prefixed
//! binary format (little-endian fixed-width integers, `u64` length prefixes
//! for variable-size data) plus a matching decoder used by round-trip tests
//! and by the example binaries when persisting blocks.

use std::fmt;

/// Canonical encoder.
///
/// # Example
///
/// ```
/// use cc_primitives::codec::{Encoder, Decoder};
/// let mut e = Encoder::new();
/// e.put_u32(7);
/// e.put_str("vote");
/// let mut d = Decoder::new(e.as_slice());
/// assert_eq!(d.get_u32().unwrap(), 7);
/// assert_eq!(d.get_string().unwrap(), "vote");
/// assert!(d.is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Creates an encoder with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32` in little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128` in little-endian.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends raw bytes with no length prefix (fixed-size fields).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a UTF-8 string with a `u64` length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Returns the encoded bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Error produced by [`Decoder`] when the input is truncated or malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Human-readable description of what failed to decode.
    pub context: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.context)
    }
}

impl std::error::Error for DecodeError {}

/// Canonical decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder reading from `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.data.len() {
            return Err(DecodeError { context });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Fails if the input is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a bool (one byte; anything nonzero is `true`).
    ///
    /// # Errors
    ///
    /// Fails if the input is exhausted.
    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Fails if fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Fails if fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8, "u64")?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// Fails if fewer than 16 bytes remain.
    pub fn get_u128(&mut self) -> Result<u128, DecodeError> {
        let b = self.take(16, "u128")?;
        let mut arr = [0u8; 16];
        arr.copy_from_slice(b);
        Ok(u128::from_le_bytes(arr))
    }

    /// Reads a `u64`-length-prefixed byte vector.
    ///
    /// # Errors
    ///
    /// Fails if the prefix or payload is truncated.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.get_u64()? as usize;
        Ok(self.take(len, "bytes payload")?.to_vec())
    }

    /// Reads exactly `n` raw bytes (no length prefix).
    ///
    /// # Errors
    ///
    /// Fails if fewer than `n` bytes remain.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n, "raw bytes")
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Fails on truncation or invalid UTF-8.
    pub fn get_string(&mut self) -> Result<String, DecodeError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes).map_err(|_| DecodeError { context: "utf-8" })
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_all_field_kinds() {
        let mut e = Encoder::new();
        e.put_u8(9);
        e.put_bool(true);
        e.put_u32(77);
        e.put_u64(u64::MAX);
        e.put_u128(u128::MAX - 5);
        e.put_bytes(b"payload");
        e.put_str("Ballot.vote");
        e.put_raw(&[1, 2, 3]);

        let mut d = Decoder::new(e.as_slice());
        assert_eq!(d.get_u8().unwrap(), 9);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_u32().unwrap(), 77);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_u128().unwrap(), u128::MAX - 5);
        assert_eq!(d.get_bytes().unwrap(), b"payload");
        assert_eq!(d.get_string().unwrap(), "Ballot.vote");
        assert_eq!(d.get_raw(3).unwrap(), &[1, 2, 3]);
        assert!(d.is_empty());
    }

    #[test]
    fn truncation_is_detected() {
        let mut e = Encoder::new();
        e.put_u64(1234);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..4]);
        assert!(d.get_u64().is_err());
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xff, 0xfe]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(d.get_string().is_err());
    }

    #[test]
    fn remaining_tracks_position() {
        let mut e = Encoder::new();
        e.put_u32(1);
        e.put_u32(2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.remaining(), 8);
        d.get_u32().unwrap();
        assert_eq!(d.remaining(), 4);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_sequences(values in proptest::collection::vec(any::<u64>(), 0..64),
                                    blobs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..16)) {
            let mut e = Encoder::new();
            e.put_u64(values.len() as u64);
            for v in &values {
                e.put_u64(*v);
            }
            e.put_u64(blobs.len() as u64);
            for b in &blobs {
                e.put_bytes(b);
            }
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            let n = d.get_u64().unwrap() as usize;
            let decoded: Vec<u64> = (0..n).map(|_| d.get_u64().unwrap()).collect();
            prop_assert_eq!(decoded, values);
            let m = d.get_u64().unwrap() as usize;
            let decoded_blobs: Vec<Vec<u8>> = (0..m).map(|_| d.get_bytes().unwrap()).collect();
            prop_assert_eq!(decoded_blobs, blobs);
            prop_assert!(d.is_empty());
        }
    }
}
