//! SHA-256 and the [`Hash256`] digest type.
//!
//! The paper's blockchain substrate needs a tamper-evident commitment to
//! block contents and contract state. Rather than pulling in an external
//! crypto crate, SHA-256 (FIPS 180-4) is implemented here directly; it is
//! validated against the standard test vectors in the unit tests below.

use crate::hex;
use std::fmt;

/// A 256-bit digest, produced by [`sha256`] or [`Sha256`].
///
/// Used for block hashes, state roots and schedule commitments throughout
/// the workspace.
///
/// # Example
///
/// ```
/// use cc_primitives::hash::sha256;
/// let d = sha256(b"hello");
/// assert_ne!(d, sha256(b"world"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero digest, used as the parent hash of a genesis block.
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Renders the digest as a lowercase hex string (64 characters).
    pub fn to_hex(&self) -> String {
        hex::encode(&self.0)
    }

    /// Parses a 64-character hex string into a digest.
    ///
    /// # Errors
    ///
    /// Returns `None` if the string is not exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Option<Hash256> {
        let bytes = hex::decode(s)?;
        if bytes.len() != 32 {
            return None;
        }
        let mut out = [0u8; 32];
        out.copy_from_slice(&bytes);
        Some(Hash256(out))
    }

    /// Returns true if this is the all-zero digest.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash256({})", &self.to_hex()[..16])
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<[u8; 32]> for Hash256 {
    fn from(value: [u8; 32]) -> Self {
        Hash256(value)
    }
}

impl AsRef<[u8]> for Hash256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Convenience wrapper: hash a byte slice in one call.
///
/// # Example
///
/// ```
/// use cc_primitives::hash::sha256;
/// // FIPS 180-4 test vector for "abc".
/// assert_eq!(
///     sha256(b"abc").to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
pub fn sha256(data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use cc_primitives::hash::{sha256, Sha256};
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), sha256(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a new hasher in its initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(rest.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&rest[..take]);
            self.buffer_len += take;
            rest = &rest[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while rest.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&rest[..64]);
            self.compress(&block);
            rest = &rest[64..];
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffer_len = rest.len();
        }
    }

    /// Appends `u64` in big-endian to the hash state; convenience for digests
    /// built from structured data.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_be_bytes());
    }

    /// Finishes the computation and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Hash256 {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0x00]);
        }
        // Manual write of length so total_len bookkeeping does not matter any more.
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash256(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);

            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_input_vector() {
        // One million 'a' characters (FIPS 180-4 long message test).
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut h = Sha256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Hash256::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Hash256::from_hex("zz"), None);
        assert_eq!(Hash256::from_hex("ab"), None);
    }

    #[test]
    fn zero_digest() {
        assert!(Hash256::ZERO.is_zero());
        assert!(!sha256(b"x").is_zero());
    }

    #[test]
    fn debug_and_display_nonempty() {
        let d = sha256(b"dbg");
        assert!(!format!("{d:?}").is_empty());
        assert_eq!(format!("{d}").len(), 64);
    }

    #[test]
    fn padding_boundaries() {
        // Lengths around the 55/56/64-byte padding boundaries exercise all
        // padding paths.
        let known = [
            (
                55usize,
                "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318",
            ),
            (
                56usize,
                "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a",
            ),
            (
                57usize,
                "f13b2d724659eb3bf47f2dd6af1accc87b81f09f59f2b75e5c0bed6589dfe8c6",
            ),
            (
                64usize,
                "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb",
            ),
        ];
        for (len, expect) in known {
            let data = vec![b'a'; len];
            assert_eq!(sha256(&data).to_hex(), expect, "length {len}");
        }
    }
}
