//! FxHash — the fast, non-cryptographic hasher used for lock-keyed tables.
//!
//! Abstract-lock identifiers are already the output of FNV-1a (see
//! [`crate::fnv`]): both halves of a `LockId` are well-mixed 64-bit values.
//! Re-hashing them through SipHash (the `std` default) costs more than the
//! table lookup it guards. `FxHasher` — the multiply-xor hash used by the
//! Rust compiler itself — folds each written word into the state with one
//! xor, one rotate and one multiply, which is all a pre-hashed key needs.
//!
//! Like FNV, Fx is **not** DoS-resistant. That is fine for every table it
//! is used for in this workspace: the keys are themselves hashes of
//! attacker-visible data, so an attacker who could engineer collisions in
//! the table could only create extra (conservative) lock conflicts, never
//! an incorrect result.
//!
//! # Example
//!
//! ```
//! use cc_primitives::fx::FxHashMap;
//! let mut shards: FxHashMap<u64, &str> = FxHashMap::default();
//! shards.insert(42, "stripe");
//! assert_eq!(shards[&42], "stripe");
//! ```

use std::cell::UnsafeCell;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};

/// 64-bit Fx seed: `2^64 / phi`, the same odd constant rustc uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A [`Hasher`] implementing the FxHash algorithm (word-at-a-time
/// multiply-xor, as used by the Rust compiler's interner tables).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

impl FxHasher {
    /// Creates a hasher with the zero initial state.
    pub fn new() -> Self {
        FxHasher(0)
    }

    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("exact 8-byte chunk"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`]. Use for tables whose keys are
/// already hashes (lock ids, transaction ids, shard indices).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes any `Hash` value with FxHash in one call, deterministically
/// across runs and processes (no random state).
pub fn fx_hash_of<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::new();
    value.hash(&mut h);
    h.finish()
}

// ---- RawFxMap: a map keyed by caller-supplied hashes ---------------------

/// One slot of a [`RawFxMap`].
#[derive(Debug, Clone)]
enum Slot<K, V> {
    /// Never occupied; terminates probe sequences.
    Empty,
    /// Previously occupied; probe sequences continue past it.
    Tombstone,
    /// A live entry, remembering the caller-supplied hash so rehashing
    /// never re-hashes a key.
    Full { hash: u64, key: K, value: V },
}

/// Fibonacci multiplier used to derive a probe start from a stored hash
/// (`2^64 / phi`, the usual constant). The caller's hash is used *as
/// given* for equality; only the probe start is re-mixed, so tables stay
/// well distributed even if the supplied hashes cluster in their low bits.
const PROBE_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// A hash map whose **every** operation takes a caller-supplied 64-bit
/// hash — the raw-entry-style companion to [`FxHashMap`].
///
/// The boosted-storage hot path computes one FNV-64 fingerprint per
/// logical key and then needs that key in several tables (the abstract
/// lock's backing store above all). A `HashMap` re-hashes the key on
/// every lookup; `RawFxMap` instead trusts the caller's hash, stores it
/// alongside the entry, and compares keys only on hash equality. Supplying
/// inconsistent hashes for equal keys makes entries unfindable (a logic
/// error, like an inconsistent `Hash` impl — never memory unsafety).
///
/// Collisions are resolved by linear probing over a power-of-two table
/// with tombstone deletion; at most ⅞ of the table is ever occupied, so
/// probe chains stay short and every probe terminates.
///
/// # Example
///
/// ```
/// use cc_primitives::fx::{fx_hash_of, RawFxMap};
/// let mut map: RawFxMap<String, u32> = RawFxMap::new();
/// let h = fx_hash_of("alice");
/// map.insert_hashed(h, "alice".to_string(), 7);
/// assert_eq!(map.get_hashed(h, "alice"), Some(&7));
/// assert_eq!(map.remove_hashed(h, "alice"), Some(7));
/// assert!(map.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RawFxMap<K, V> {
    /// Power-of-two slot table (empty until the first insert).
    slots: Vec<Slot<K, V>>,
    /// Number of `Full` slots.
    items: usize,
    /// Number of `Full` + `Tombstone` slots (bounds probe-chain length).
    used: usize,
}

impl<K, V> Default for RawFxMap<K, V> {
    fn default() -> Self {
        RawFxMap::new()
    }
}

impl<K, V> RawFxMap<K, V> {
    /// Creates an empty map (no allocation until the first insert).
    pub fn new() -> Self {
        RawFxMap {
            slots: Vec::new(),
            items: 0,
            used: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Removes every entry, keeping the allocated table.
    pub fn clear(&mut self) {
        for slot in self.slots.iter_mut() {
            *slot = Slot::Empty;
        }
        self.items = 0;
        self.used = 0;
    }

    /// Iterates over `(&key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots.iter().filter_map(|slot| match slot {
            Slot::Full { key, value, .. } => Some((key, value)),
            _ => None,
        })
    }

    /// Probe start index for `hash` in the current table.
    fn probe_start(&self, hash: u64) -> usize {
        // High multiply bits, folded down to the table size.
        (hash.wrapping_mul(PROBE_MIX) >> (64 - self.slots.len().trailing_zeros())) as usize
    }

    /// Index of the live entry for `(hash, key)`, if present.
    fn find<Q>(&self, hash: u64, key: &Q) -> Option<usize>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + ?Sized,
    {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.probe_start(hash);
        loop {
            match &self.slots[i] {
                Slot::Empty => return None,
                Slot::Full {
                    hash: h, key: k, ..
                } if *h == hash && k.borrow() == key => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Grows (or compacts tombstones out of) the table so at least one
    /// more entry fits under the ⅞ load ceiling.
    fn reserve_one(&mut self) {
        let cap = self.slots.len();
        if cap == 0 {
            self.rehash(8);
        } else if (self.used + 1) * 8 > cap * 7 {
            // Grow when genuinely full; rehash in place when the load is
            // mostly tombstones.
            let target = if (self.items + 1) * 2 > cap {
                cap * 2
            } else {
                cap
            };
            self.rehash(target);
        }
    }

    fn rehash(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two());
        let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| Slot::Empty).collect());
        self.used = self.items;
        let mask = new_cap - 1;
        for slot in old {
            if let Slot::Full { hash, key, value } = slot {
                // Keys are unique and the new table has no tombstones:
                // place at the first empty slot of the probe sequence.
                let mut i = self.probe_start(hash);
                while matches!(self.slots[i], Slot::Full { .. }) {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Slot::Full { hash, key, value };
            }
        }
    }
}

impl<K: Eq, V> RawFxMap<K, V> {
    /// Returns a reference to the value for `key`, using the caller's
    /// `hash` (which must match the hash the entry was inserted under).
    pub fn get_hashed<Q>(&self, hash: u64, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + ?Sized,
    {
        self.find(hash, key).map(|i| match &self.slots[i] {
            Slot::Full { value, .. } => value,
            _ => unreachable!("find returns full slots"),
        })
    }

    /// Mutable-reference variant of [`RawFxMap::get_hashed`].
    pub fn get_hashed_mut<Q>(&mut self, hash: u64, key: &Q) -> Option<&mut V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + ?Sized,
    {
        let i = self.find(hash, key)?;
        match &mut self.slots[i] {
            Slot::Full { value, .. } => Some(value),
            _ => unreachable!("find returns full slots"),
        }
    }

    /// Whether an entry for `(hash, key)` exists.
    pub fn contains_hashed<Q>(&self, hash: u64, key: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + ?Sized,
    {
        self.find(hash, key).is_some()
    }

    /// Inserts `key → value` under `hash`, returning the previous value if
    /// the key was already bound.
    pub fn insert_hashed(&mut self, hash: u64, key: K, value: V) -> Option<V> {
        self.reserve_one();
        let mask = self.slots.len() - 1;
        let mut i = self.probe_start(hash);
        let mut first_tombstone: Option<usize> = None;
        loop {
            match &mut self.slots[i] {
                Slot::Empty => {
                    let target = first_tombstone.unwrap_or(i);
                    if first_tombstone.is_none() {
                        self.used += 1;
                    }
                    self.items += 1;
                    self.slots[target] = Slot::Full { hash, key, value };
                    return None;
                }
                Slot::Tombstone => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(i);
                    }
                    i = (i + 1) & mask;
                }
                Slot::Full {
                    hash: h,
                    key: k,
                    value: v,
                } => {
                    if *h == hash && *k == key {
                        return Some(std::mem::replace(v, value));
                    }
                    i = (i + 1) & mask;
                }
            }
        }
    }

    /// Removes the entry for `(hash, key)`, returning its value.
    pub fn remove_hashed<Q>(&mut self, hash: u64, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + ?Sized,
    {
        let i = self.find(hash, key)?;
        self.items -= 1;
        match std::mem::replace(&mut self.slots[i], Slot::Tombstone) {
            Slot::Full { value, .. } => Some(value),
            _ => unreachable!("find returns full slots"),
        }
    }

    /// Raw-entry API: in-place access to the slot for `(hash, key)`,
    /// occupied or vacant. The key is consumed; on the occupied path the
    /// map keeps its existing key and the supplied one is dropped (like
    /// `std`'s entry API).
    pub fn entry_hashed(&mut self, hash: u64, key: K) -> RawEntry<'_, K, V> {
        self.reserve_one();
        match self.find(hash, &key) {
            Some(idx) => RawEntry::Occupied(RawOccupiedEntry { map: self, idx }),
            None => RawEntry::Vacant(RawVacantEntry {
                map: self,
                hash,
                key,
            }),
        }
    }
}

/// A view into one slot of a [`RawFxMap`], from [`RawFxMap::entry_hashed`].
pub enum RawEntry<'a, K, V> {
    /// The key is bound.
    Occupied(RawOccupiedEntry<'a, K, V>),
    /// The key is not bound.
    Vacant(RawVacantEntry<'a, K, V>),
}

impl<'a, K: Eq, V> RawEntry<'a, K, V> {
    /// Returns a mutable reference to the bound value, inserting `default`
    /// first if vacant.
    pub fn or_insert(self, default: V) -> &'a mut V {
        self.or_insert_with(|| default)
    }

    /// Returns a mutable reference to the bound value, inserting the
    /// result of `default()` first if vacant.
    pub fn or_insert_with(self, default: impl FnOnce() -> V) -> &'a mut V {
        match self {
            RawEntry::Occupied(entry) => entry.into_mut(),
            RawEntry::Vacant(entry) => entry.insert(default()),
        }
    }
}

/// An occupied slot of a [`RawFxMap`].
pub struct RawOccupiedEntry<'a, K, V> {
    map: &'a mut RawFxMap<K, V>,
    idx: usize,
}

impl<'a, K, V> RawOccupiedEntry<'a, K, V> {
    /// The bound value.
    pub fn get(&self) -> &V {
        match &self.map.slots[self.idx] {
            Slot::Full { value, .. } => value,
            _ => unreachable!("occupied entries point at full slots"),
        }
    }

    /// The bound value, mutably.
    pub fn get_mut(&mut self) -> &mut V {
        match &mut self.map.slots[self.idx] {
            Slot::Full { value, .. } => value,
            _ => unreachable!("occupied entries point at full slots"),
        }
    }

    /// Consumes the entry, returning a reference tied to the map.
    pub fn into_mut(self) -> &'a mut V {
        match &mut self.map.slots[self.idx] {
            Slot::Full { value, .. } => value,
            _ => unreachable!("occupied entries point at full slots"),
        }
    }

    /// Removes the entry, returning its value.
    pub fn remove(self) -> V {
        self.map.items -= 1;
        match std::mem::replace(&mut self.map.slots[self.idx], Slot::Tombstone) {
            Slot::Full { value, .. } => value,
            _ => unreachable!("occupied entries point at full slots"),
        }
    }
}

/// A vacant slot of a [`RawFxMap`].
pub struct RawVacantEntry<'a, K, V> {
    map: &'a mut RawFxMap<K, V>,
    hash: u64,
    key: K,
}

impl<'a, K: Eq, V> RawVacantEntry<'a, K, V> {
    /// Inserts `value`, returning a reference tied to the map.
    pub fn insert(self, value: V) -> &'a mut V {
        // `entry_hashed` already reserved headroom and proved the key
        // absent; claim the first tombstone or empty slot of the probe
        // sequence.
        let mask = self.map.slots.len() - 1;
        let mut i = self.map.probe_start(self.hash);
        loop {
            match &self.map.slots[i] {
                Slot::Empty | Slot::Tombstone => break,
                _ => i = (i + 1) & mask,
            }
        }
        if matches!(self.map.slots[i], Slot::Empty) {
            self.map.used += 1;
        }
        self.map.items += 1;
        self.map.slots[i] = Slot::Full {
            hash: self.hash,
            key: self.key,
            value,
        };
        match &mut self.map.slots[i] {
            Slot::Full { value, .. } => value,
            _ => unreachable!("slot was just filled"),
        }
    }
}

// ---------------------------------------------------------------------------
// Raw shared stores under external (abstract) locking.
// ---------------------------------------------------------------------------

/// Number of shards in a [`ShardedRawTable`]. A power of two so shard
/// selection is a mask of the fingerprint's low bits. Low bits are
/// deliberate: [`RawFxMap`] derives its probe start from the *high* bits
/// of `hash * PROBE_MIX`, so low-bit sharding keeps every shard's probe
/// distribution uniform instead of clustering it into `1/SHARDS` of the
/// table.
pub const RAW_TABLE_SHARDS: usize = 16;

/// A word-sized spin latch protecting the *structure* of a raw store.
///
/// This is not a reader-writer lock and it is not the concurrency-control
/// mechanism: transactional exclusion comes from the STM's abstract locks.
/// The latch exists only because distinct keys may share one
/// open-addressing table (or one `Vec` allocation), so two transactions
/// holding *different* abstract locks can still race on table structure —
/// rehashes, probe walks, length counters, reallocation. One
/// `compare_exchange` on entry and one store on exit is the entire cost;
/// there is no poisoning, no waiter bookkeeping and no syscall path.
#[derive(Debug, Default)]
struct Latch(AtomicBool);

/// Releases the latch on drop, so a panic inside a criticial section
/// (e.g. a user closure in `get_with`) cannot wedge the shard.
struct LatchGuard<'a>(&'a Latch);

impl Latch {
    #[inline]
    fn lock(&self) -> LatchGuard<'_> {
        // Uncontended path: one acquire CAS. Contended path (two txns
        // whose distinct keys share a shard): spin on a relaxed load so
        // the owning core keeps the line in shared state until release.
        while self
            .0
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            while self.0.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        }
        LatchGuard(self)
    }
}

impl Drop for LatchGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.0 .0.store(false, Ordering::Release);
    }
}

/// One shard: a latch plus an unsynchronized [`RawFxMap`]. Padded to a
/// cache line so contention on one shard's latch does not false-share
/// with its neighbours.
#[repr(align(64))]
#[derive(Debug, Default)]
struct RawShard<K, V> {
    latch: Latch,
    table: UnsafeCell<RawFxMap<K, V>>,
}

/// A fingerprint-sharded hash table whose *semantic* safety argument is
/// an externally held abstract lock.
///
/// The caller supplies the key's 64-bit fingerprint (the same single hash
/// that already selected the abstract lock — PR 5's one-hash-per-op
/// discipline); the low bits select one of [`RAW_TABLE_SHARDS`] shards and
/// the full fingerprint drives the shard's [`RawFxMap`] probe sequence.
///
/// # Safety argument
///
/// Two layers, doing two different jobs:
///
/// * **Logical entries** are protected by the abstract locks: the STM
///   acquires a per-key lock before any operation, and two-phase locking
///   serializes conflicting transactions. The boosted collections assert
///   this in debug builds (`Transaction::debug_assert_held`) before every
///   raw access.
/// * **Physical structure** (probe chains, rehashes, item counters) is
///   shared between *distinct* keys that land in the same shard, which
///   abstract locks do not serialize. The per-shard [`Latch`] covers
///   exactly that window: every access runs its closure under the shard
///   latch. Disjoint-key transactions touching different shards never
///   interact at all.
///
/// `with` hands the closure `&mut RawFxMap` from an `UnsafeCell`; the
/// latch guarantees the reference is exclusive for the closure's
/// lifetime. Closures must not re-enter the same table (the latch is not
/// reentrant) — the boosted collections only perform straight-line map
/// operations inside them.
#[derive(Default)]
pub struct ShardedRawTable<K, V> {
    shards: [RawShard<K, V>; RAW_TABLE_SHARDS],
}

// SAFETY: all access to the `UnsafeCell` interior goes through `with` /
// `fold`, which hold the shard latch for the duration of the reference.
#[allow(unsafe_code)]
unsafe impl<K: Send, V: Send> Sync for ShardedRawTable<K, V> {}

impl<K, V> ShardedRawTable<K, V> {
    /// Creates an empty table (no allocation until the first insert).
    pub fn new() -> Self {
        ShardedRawTable {
            shards: std::array::from_fn(|_| RawShard {
                latch: Latch::default(),
                table: UnsafeCell::new(RawFxMap::new()),
            }),
        }
    }

    #[inline]
    fn shard(&self, hash: u64) -> &RawShard<K, V> {
        &self.shards[hash as usize & (RAW_TABLE_SHARDS - 1)]
    }

    /// Runs `f` with exclusive access to the shard owning `hash`.
    ///
    /// The caller must hold the abstract lock for the key being operated
    /// on; the shard latch taken here only protects table structure
    /// shared with other keys.
    #[inline]
    #[allow(unsafe_code)]
    pub fn with<R>(&self, hash: u64, f: impl FnOnce(&mut RawFxMap<K, V>) -> R) -> R {
        let shard = self.shard(hash);
        let _guard = shard.latch.lock();
        // SAFETY: the shard latch is held (and released on drop, even on
        // panic), so this is the only live reference into the cell.
        f(unsafe { &mut *shard.table.get() })
    }

    /// Folds `f` over every shard's table in shard order, latching each
    /// shard in turn. Used for whole-table operations (snapshots, length)
    /// — not a consistent point-in-time cut unless the caller quiesces
    /// writers, which is exactly the contract the non-transactional
    /// `snapshot`/`restore` collection APIs already carry.
    #[allow(unsafe_code)]
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &mut RawFxMap<K, V>) -> A) -> A {
        let mut acc = init;
        for shard in &self.shards {
            let _guard = shard.latch.lock();
            // SAFETY: as in `with` — the latch serializes this reference.
            acc = f(acc, unsafe { &mut *shard.table.get() });
        }
        acc
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.fold(0usize, |acc, table| acc + table.len())
    }

    /// True if no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every entry from every shard.
    pub fn clear(&self) {
        self.fold((), |(), table| table.clear());
    }
}

impl<K, V> std::fmt::Debug for ShardedRawTable<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRawTable")
            .field("shards", &RAW_TABLE_SHARDS)
            .field("len", &self.len())
            .finish()
    }
}

/// The single-slot analogue of [`ShardedRawTable`]: one latch over one
/// unsynchronized value.
///
/// Backs `BoostedCell<T>` (as `RawSlot<T>`) and `BoostedVec<T>` (as
/// `RawSlot<Vec<T>>`). A cell is guarded by one whole-value abstract lock,
/// and a vector by per-element locks *plus* a length lock — but vector
/// element reads and a concurrent `push` under disjoint abstract locks
/// still share the `Vec`'s allocation (a reallocation would invalidate
/// the read), so the structural latch is required for the same reason as
/// the table shards.
#[derive(Default)]
pub struct RawSlot<T> {
    latch: Latch,
    value: UnsafeCell<T>,
}

// SAFETY: all access goes through `with`, which holds the latch for the
// duration of the reference.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for RawSlot<T> {}

impl<T> RawSlot<T> {
    /// Wraps `value` in a latched raw slot.
    pub fn new(value: T) -> Self {
        RawSlot {
            latch: Latch::default(),
            value: UnsafeCell::new(value),
        }
    }

    /// Runs `f` with exclusive access to the value.
    #[inline]
    #[allow(unsafe_code)]
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let _guard = self.latch.lock();
        // SAFETY: the latch is held (released on drop, even on panic), so
        // this is the only live reference into the cell.
        f(unsafe { &mut *self.value.get() })
    }
}

impl<T> std::fmt::Debug for RawSlot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RawSlot { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        assert_eq!(fx_hash_of(&42u64), fx_hash_of(&42u64));
        assert_ne!(fx_hash_of(&42u64), fx_hash_of(&43u64));
        assert_ne!(fx_hash_of("alice"), fx_hash_of("bob"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<(u64, u64), u32> = FxHashMap::default();
        for i in 0..100 {
            map.insert((i, i * 2), i as u32);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map[&(7, 14)], 7);

        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(1);
        assert!(set.contains(&1));
        assert!(!set.contains(&2));
    }

    #[test]
    fn spreads_sequential_words() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(fx_hash_of(&i));
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn raw_map_insert_get_remove_roundtrip() {
        let mut map: RawFxMap<u64, String> = RawFxMap::new();
        assert!(map.is_empty());
        assert_eq!(map.get_hashed(fx_hash_of(&1u64), &1), None);
        for i in 0..100u64 {
            assert_eq!(map.insert_hashed(fx_hash_of(&i), i, format!("v{i}")), None);
        }
        assert_eq!(map.len(), 100);
        for i in 0..100u64 {
            assert_eq!(
                map.get_hashed(fx_hash_of(&i), &i).map(String::as_str),
                Some(format!("v{i}")).as_deref()
            );
        }
        // Overwrite returns the prior value.
        assert_eq!(
            map.insert_hashed(fx_hash_of(&7u64), 7, "new".into()),
            Some("v7".into())
        );
        assert_eq!(map.len(), 100);
        // Removals tombstone; survivors stay findable.
        for i in (0..100u64).step_by(2) {
            assert_eq!(map.remove_hashed(fx_hash_of(&i), &i), Some(format!("v{i}")));
            assert_eq!(map.remove_hashed(fx_hash_of(&i), &i), None);
        }
        assert_eq!(map.len(), 50);
        assert!(map.contains_hashed(fx_hash_of(&1u64), &1));
        assert!(!map.contains_hashed(fx_hash_of(&2u64), &2));
        assert_eq!(map.iter().count(), 50);
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.iter().count(), 0);
    }

    #[test]
    fn raw_map_entry_api() {
        let mut map: RawFxMap<&'static str, u32> = RawFxMap::new();
        let h = fx_hash_of("x");
        *map.entry_hashed(h, "x").or_insert(0) += 3;
        *map.entry_hashed(h, "x").or_insert(0) += 4;
        assert_eq!(map.get_hashed(h, "x"), Some(&7));
        match map.entry_hashed(h, "x") {
            RawEntry::Occupied(mut e) => {
                assert_eq!(*e.get(), 7);
                *e.get_mut() = 9;
                assert_eq!(e.remove(), 9);
            }
            RawEntry::Vacant(_) => panic!("entry must be occupied"),
        }
        assert!(map.is_empty());
        match map.entry_hashed(h, "x") {
            RawEntry::Vacant(e) => {
                *e.insert(1) += 1;
            }
            RawEntry::Occupied(_) => panic!("entry must be vacant after remove"),
        }
        assert_eq!(map.get_hashed(h, "x"), Some(&2));
        assert_eq!(
            *map.entry_hashed(fx_hash_of("y"), "y").or_insert_with(|| 5),
            5
        );
    }

    #[test]
    fn raw_map_survives_tombstone_heavy_churn() {
        // Insert/remove cycles that would wedge a probe loop if tombstones
        // were never compacted: the load ceiling must count tombstones and
        // rehashing must drop them.
        let mut map: RawFxMap<u64, u64> = RawFxMap::new();
        for round in 0..50u64 {
            for i in 0..64u64 {
                map.insert_hashed(fx_hash_of(&i), i, round);
            }
            for i in 0..64u64 {
                assert_eq!(map.remove_hashed(fx_hash_of(&i), &i), Some(round));
            }
        }
        assert!(map.is_empty());
        map.insert_hashed(fx_hash_of(&1u64), 1, 1);
        assert_eq!(map.get_hashed(fx_hash_of(&1u64), &1), Some(&1));
    }

    proptest::proptest! {
        /// Every `*_hashed` API agrees with a plain `HashMap` driven by the
        /// same operation sequence — same lookups, same prior values, same
        /// final contents — across random key sets including deletions.
        #[test]
        fn prop_raw_map_agrees_with_std_map(
            ops in proptest::collection::vec((0u8..4, 0u8..24, 0u32..1000), 0..200),
        ) {
            let mut raw: RawFxMap<u8, u32> = RawFxMap::new();
            let mut reference: HashMap<u8, u32> = HashMap::new();
            for &(op, key, value) in &ops {
                let h = fx_hash_of(&key);
                match op % 4 {
                    0 => {
                        proptest::prop_assert_eq!(
                            raw.insert_hashed(h, key, value),
                            reference.insert(key, value)
                        );
                    }
                    1 => {
                        proptest::prop_assert_eq!(
                            raw.remove_hashed(h, &key),
                            reference.remove(&key)
                        );
                    }
                    2 => {
                        proptest::prop_assert_eq!(
                            raw.get_hashed(h, &key).copied(),
                            reference.get(&key).copied()
                        );
                        proptest::prop_assert_eq!(
                            raw.contains_hashed(h, &key),
                            reference.contains_key(&key)
                        );
                    }
                    _ => {
                        *raw.entry_hashed(h, key).or_insert(0) += u32::from(key);
                        *reference.entry(key).or_insert(0) += u32::from(key);
                    }
                }
                proptest::prop_assert_eq!(raw.len(), reference.len());
            }
            let mut raw_entries: Vec<(u8, u32)> = raw.iter().map(|(k, v)| (*k, *v)).collect();
            let mut ref_entries: Vec<(u8, u32)> = reference.into_iter().collect();
            raw_entries.sort_unstable();
            ref_entries.sort_unstable();
            proptest::prop_assert_eq!(raw_entries, ref_entries);
        }
    }

    #[test]
    fn byte_stream_matches_word_writes_only_for_same_input() {
        // write() over a 16-byte slice folds two words; different slices
        // must (overwhelmingly) produce different states.
        let mut a = FxHasher::new();
        a.write(&[1u8; 16]);
        let mut b = FxHasher::new();
        b.write(&[2u8; 16]);
        assert_ne!(a.finish(), b.finish());

        // Trailing partial chunks are folded too.
        let mut c = FxHasher::new();
        c.write(&[1u8; 9]);
        let mut d = FxHasher::new();
        d.write(&[1u8; 10]);
        assert_ne!(c.finish(), d.finish());
    }
}
