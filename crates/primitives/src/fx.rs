//! FxHash — the fast, non-cryptographic hasher used for lock-keyed tables.
//!
//! Abstract-lock identifiers are already the output of FNV-1a (see
//! [`crate::fnv`]): both halves of a `LockId` are well-mixed 64-bit values.
//! Re-hashing them through SipHash (the `std` default) costs more than the
//! table lookup it guards. `FxHasher` — the multiply-xor hash used by the
//! Rust compiler itself — folds each written word into the state with one
//! xor, one rotate and one multiply, which is all a pre-hashed key needs.
//!
//! Like FNV, Fx is **not** DoS-resistant. That is fine for every table it
//! is used for in this workspace: the keys are themselves hashes of
//! attacker-visible data, so an attacker who could engineer collisions in
//! the table could only create extra (conservative) lock conflicts, never
//! an incorrect result.
//!
//! # Example
//!
//! ```
//! use cc_primitives::fx::FxHashMap;
//! let mut shards: FxHashMap<u64, &str> = FxHashMap::default();
//! shards.insert(42, "stripe");
//! assert_eq!(shards[&42], "stripe");
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx seed: `2^64 / phi`, the same odd constant rustc uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A [`Hasher`] implementing the FxHash algorithm (word-at-a-time
/// multiply-xor, as used by the Rust compiler's interner tables).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

impl FxHasher {
    /// Creates a hasher with the zero initial state.
    pub fn new() -> Self {
        FxHasher(0)
    }

    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("exact 8-byte chunk"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`]. Use for tables whose keys are
/// already hashes (lock ids, transaction ids, shard indices).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes any `Hash` value with FxHash in one call, deterministically
/// across runs and processes (no random state).
pub fn fx_hash_of<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        assert_eq!(fx_hash_of(&42u64), fx_hash_of(&42u64));
        assert_ne!(fx_hash_of(&42u64), fx_hash_of(&43u64));
        assert_ne!(fx_hash_of("alice"), fx_hash_of("bob"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<(u64, u64), u32> = FxHashMap::default();
        for i in 0..100 {
            map.insert((i, i * 2), i as u32);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map[&(7, 14)], 7);

        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(1);
        assert!(set.contains(&1));
        assert!(!set.contains(&2));
    }

    #[test]
    fn spreads_sequential_words() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(fx_hash_of(&i));
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_word_writes_only_for_same_input() {
        // write() over a 16-byte slice folds two words; different slices
        // must (overwhelmingly) produce different states.
        let mut a = FxHasher::new();
        a.write(&[1u8; 16]);
        let mut b = FxHasher::new();
        b.write(&[2u8; 16]);
        assert_ne!(a.finish(), b.finish());

        // Trailing partial chunks are folded too.
        let mut c = FxHasher::new();
        c.write(&[1u8; 9]);
        let mut d = FxHasher::new();
        d.write(&[1u8; 10]);
        assert_ne!(c.finish(), d.finish());
    }
}
