//! Minimal hex encoding/decoding helpers.

/// Encodes bytes as a lowercase hex string.
///
/// # Example
///
/// ```
/// assert_eq!(cc_primitives::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    const CHARS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(CHARS[(b >> 4) as usize] as char);
        out.push(CHARS[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decodes a hex string (case-insensitive) into bytes.
///
/// Returns `None` on odd length or non-hex characters.
///
/// # Example
///
/// ```
/// assert_eq!(cc_primitives::hex::decode("DEAD"), Some(vec![0xde, 0xad]));
/// assert_eq!(cc_primitives::hex::decode("xyz"), None);
/// ```
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = hex_val(pair[0])?;
        let lo = hex_val(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Some(out)
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)), Some(data));
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(decode("abc"), None);
        assert_eq!(decode("zz"), None);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode(""), Some(vec![]));
    }
}
