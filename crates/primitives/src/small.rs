//! A small-vector with inline storage for the first `N` elements.
//!
//! The STM hot path keeps a handful of per-transaction lists (held-lock
//! order, nested-frame marks, undo-entry order) whose typical length is a
//! few elements. Backing them with `Vec` costs one heap allocation per
//! transaction per list; [`InlineVec`] keeps the first `N` elements in the
//! structure itself and only spills to the heap beyond that.
//!
//! The implementation is deliberately `unsafe`-free (the workspace denies
//! `unsafe` outside the latched raw stores in [`crate::fx`]): inline slots
//! are `Option<T>`s, which costs a discriminant per slot but keeps the
//! type trivially correct. Only the operations the transaction runtime
//! needs are provided.
//!
//! # Example
//!
//! ```
//! use cc_primitives::small::InlineVec;
//! let mut v: InlineVec<u64, 4> = InlineVec::new();
//! for i in 0..6 {
//!     v.push(i); // the last two spill to the heap
//! }
//! assert_eq!(v.len(), 6);
//! assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
//! assert_eq!(v.split_off(4), vec![4, 5]);
//! assert_eq!(v.pop(), Some(3));
//! ```

/// A vector storing its first `N` elements inline and the rest on the
/// heap.
#[derive(Debug, Clone)]
pub struct InlineVec<T, const N: usize> {
    /// Inline slots for elements `0..N`. A slot at index `< len` is
    /// always `Some`.
    buf: [Option<T>; N],
    /// Elements `N..len`, in order.
    spill: Vec<T>,
    /// Total number of elements.
    len: usize,
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        InlineVec {
            buf: [(); N].map(|_| None),
            spill: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.buf[self.len] = Some(value);
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        if self.len >= N {
            self.spill.pop()
        } else {
            self.buf[self.len].take()
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        // Invariant: slots at indices >= len are already `None` (pop and
        // clear maintain it), so only the occupied prefix needs writes.
        // Recycled transaction arenas clear these lists on every reuse,
        // which makes this O(len) instead of O(N) per transaction.
        for slot in self.buf[..self.len.min(N)].iter_mut() {
            *slot = None;
        }
        self.spill.clear();
        self.len = 0;
    }

    /// Returns the element at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            None
        } else if index < N {
            self.buf[index].as_ref()
        } else {
            self.spill.get(index - N)
        }
    }

    /// Mutable-reference variant of [`InlineVec::get`].
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        if index >= self.len {
            None
        } else if index < N {
            self.buf[index].as_mut()
        } else {
            self.spill.get_mut(index - N)
        }
    }

    /// Iterates over the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[..self.len.min(N)]
            .iter()
            .map(|slot| slot.as_ref().expect("inline slot below len is populated"))
            .chain(self.spill.iter())
    }

    /// Splits off and returns the elements from index `at` onward,
    /// preserving their order. Returns an empty vector when `at >= len`.
    pub fn split_off(&mut self, at: usize) -> Vec<T> {
        let mut tail = Vec::with_capacity(self.len.saturating_sub(at));
        while self.len > at {
            tail.push(self.pop().expect("len > at implies a poppable element"));
        }
        tail.reverse();
        tail
    }

    /// Takes every element out, leaving the vector empty.
    pub fn take_all(&mut self) -> Vec<T> {
        self.split_off(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_within_inline_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn spills_past_inline_capacity_and_preserves_order() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert_eq!(v.len(), 5);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        // Pops come back across the spill boundary in LIFO order.
        assert_eq!(v.pop(), Some(4));
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn split_off_across_the_boundary() {
        let mut v: InlineVec<String, 2> = InlineVec::new();
        for s in ["a", "b", "c", "d"] {
            v.push(s.to_string());
        }
        let tail = v.split_off(1);
        assert_eq!(tail, vec!["b", "c", "d"]);
        assert_eq!(v.len(), 1);
        assert_eq!(v.iter().cloned().collect::<Vec<_>>(), vec!["a"]);
        assert!(v.split_off(5).is_empty());
    }

    #[test]
    fn take_all_then_reuse() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
        assert_eq!(v.take_all(), vec![1, 2, 3]);
        assert!(v.is_empty());
        v.push(9);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn clear_resets_both_regions() {
        let mut v: InlineVec<u8, 1> = InlineVec::new();
        v.push(1);
        v.push(2);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.pop(), None);
    }
}
