//! The durability seam between the execution runtimes and the ledger's
//! write-ahead log.
//!
//! The STM and MVCC commit paths live *below* `cc_ledger` in the crate
//! graph, so they cannot name the WAL directly. Instead they emit
//! transaction lifecycle events through the [`DurabilitySink`] trait
//! defined here; `cc_ledger::wal::Wal` implements it, and `cc_core::Node`
//! attaches the sink when durability is enabled.
//!
//! The API is deliberately `u64`-flavoured: transaction ids and abstract
//! lock fingerprints are already plain integers on the hot path, and
//! keeping the trait free of higher-level types avoids dependency cycles
//! and keeps the disabled path to a single atomic load plus a branch.

use std::sync::{Arc, OnceLock};

/// One entry of a transaction's lock/operation footprint, as recorded in
/// the write-ahead log: the abstract lock's space and key fingerprints
/// plus the strongest access mode used (`cc_stm::LockMode::to_byte`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FootprintRecord {
    /// Raw lock-space fingerprint (`LockSpace::raw`).
    pub space: u64,
    /// Raw key fingerprint within the space.
    pub key: u64,
    /// Access mode byte (`LockMode::to_byte`).
    pub mode: u8,
}

/// Receiver for transaction lifecycle events emitted by the execution
/// runtimes.
///
/// Implementations must be thread-safe: miners commit from worker
/// threads concurrently. The WAL implementation buffers records in
/// memory and flushes once per sealed block (group commit), so these
/// calls must stay cheap.
pub trait DurabilitySink: Send + Sync {
    /// A transaction began execution.
    fn txn_begin(&self, txn_id: u64);

    /// A transaction committed, touching the given lock footprint.
    fn txn_commit(&self, txn_id: u64, footprint: &[FootprintRecord]);

    /// A transaction aborted; none of its effects survive.
    fn txn_abort(&self, txn_id: u64);
}

/// A write-once, lock-free holder for an optional [`DurabilitySink`].
///
/// Both runtimes embed one of these. When no sink is attached the cost
/// per commit is a single `Acquire` load and an untaken branch, which is
/// what keeps `Durability::Off` inside the strict stm_micro CI gate.
#[derive(Default)]
pub struct SinkSlot {
    slot: OnceLock<Arc<dyn DurabilitySink>>,
}

impl SinkSlot {
    /// Creates an empty slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a sink. Returns `false` if a sink was already attached
    /// (the original wins; re-attachment is a caller bug, not a panic).
    pub fn attach(&self, sink: Arc<dyn DurabilitySink>) -> bool {
        self.slot.set(sink).is_ok()
    }

    /// Returns the attached sink, if any.
    #[inline]
    pub fn get(&self) -> Option<&Arc<dyn DurabilitySink>> {
        self.slot.get()
    }

    /// Whether a sink has been attached.
    #[inline]
    pub fn is_attached(&self) -> bool {
        self.slot.get().is_some()
    }
}

impl std::fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinkSlot")
            .field("attached", &self.is_attached())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct Counting {
        commits: AtomicU64,
    }

    impl DurabilitySink for Counting {
        fn txn_begin(&self, _txn_id: u64) {}
        fn txn_commit(&self, _txn_id: u64, _footprint: &[FootprintRecord]) {
            self.commits.fetch_add(1, Ordering::Relaxed);
        }
        fn txn_abort(&self, _txn_id: u64) {}
    }

    #[test]
    fn slot_attaches_once() {
        let slot = SinkSlot::new();
        assert!(!slot.is_attached());
        assert!(slot.get().is_none());

        let first = Arc::new(Counting::default());
        assert!(slot.attach(first.clone()));
        assert!(!slot.attach(Arc::new(Counting::default())));

        slot.get().unwrap().txn_commit(7, &[]);
        assert_eq!(first.commits.load(Ordering::Relaxed), 1);
    }
}
