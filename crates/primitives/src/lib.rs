//! Shared primitives for the concurrent-contracts workspace.
//!
//! This crate provides the low-level building blocks used by every other
//! crate in the reproduction of *Adding Concurrency to Smart Contracts*
//! (Dickerson, Gazzillo, Herlihy, Koskinen — PODC 2017):
//!
//! * [`hash`] — an in-repo SHA-256 implementation and the [`Hash256`] digest
//!   type used for block hashes and state roots.
//! * [`fnv`] — the FNV-1a 64-bit hash used to derive abstract-lock keys.
//!   It is deliberately *not* cryptographic: a collision merely produces a
//!   false conflict (extra serialization), never an incorrect result.
//! * [`fx`] — the FxHash multiply-xor hasher (and `FxHashMap`/`FxHashSet`
//!   aliases) for tables whose keys are already hashes, such as the lock
//!   manager's shard tables and per-transaction held-lock maps.
//! * [`codec`] — a deterministic, byte-oriented encoder/decoder used for
//!   state snapshots, schedule metadata and block serialization.
//! * [`hex`] — tiny hex formatting helpers.
//! * [`small`] — an inline small-vector ([`small::InlineVec`]) backing the
//!   short per-transaction lists of the STM hot path.
//!
//! # Example
//!
//! ```
//! use cc_primitives::hash::{sha256, Hash256};
//! use cc_primitives::codec::Encoder;
//!
//! let mut enc = Encoder::new();
//! enc.put_u64(42);
//! enc.put_bytes(b"ballot");
//! let digest: Hash256 = sha256(enc.as_slice());
//! assert_eq!(digest.to_hex().len(), 64);
//! ```

// `unsafe` is denied by default; the only exemption is the raw shared
// tables in [`fx`], whose accesses are serialized by the STM's abstract
// locks plus a word-sized per-shard latch (see `fx::ShardedRawTable`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod durability;
pub mod fnv;
pub mod fx;
pub mod hash;
pub mod hex;
pub mod small;
pub mod ts;

pub use hash::{sha256, Hash256};
