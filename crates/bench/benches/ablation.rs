//! Ablation benches for design choices called out in DESIGN.md:
//!
//! * fork-join validation vs. serial re-validation vs. re-speculating
//!   (running the parallel *miner* again, which is what a validator would
//!   have to do without the published schedule),
//! * validator thread scaling,
//! * the cost of the validator's trace/race checking.

use cc_bench::DEFAULT_THREADS;
use cc_core::miner::{Miner, ParallelMiner, SerialMiner};
use cc_core::validator::{ParallelValidator, SerialValidator, Validator};
use cc_workload::{Benchmark, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_validator_strategies(c: &mut Criterion) {
    let workload = WorkloadSpec::new(Benchmark::Mixed, 200, 0.15).generate();
    let reference = ParallelMiner::new(DEFAULT_THREADS)
        .mine(&workload.build_world(), workload.transactions())
        .unwrap();

    let mut group = c.benchmark_group("ablation/validator-strategy");
    group.sample_size(10);
    group.bench_function("fork-join", |b| {
        b.iter(|| {
            ParallelValidator::new(DEFAULT_THREADS)
                .validate(&workload.build_world(), &reference.block)
                .unwrap()
        })
    });
    group.bench_function("fork-join-no-trace-checks", |b| {
        b.iter(|| {
            ParallelValidator::new(DEFAULT_THREADS)
                .without_trace_checks()
                .validate(&workload.build_world(), &reference.block)
                .unwrap()
        })
    });
    group.bench_function("serial-revalidation", |b| {
        b.iter(|| {
            SerialValidator::new()
                .validate(&workload.build_world(), &reference.block)
                .unwrap()
        })
    });
    group.bench_function("re-speculate", |b| {
        b.iter(|| {
            // Without schedule metadata a concurrent validator would have to
            // redo the miner's speculative work (and could not check the
            // state deterministically) — this measures that cost.
            ParallelMiner::new(DEFAULT_THREADS)
                .mine(&workload.build_world(), workload.transactions())
                .unwrap()
        })
    });
    group.finish();
}

fn bench_validator_thread_scaling(c: &mut Criterion) {
    let workload = WorkloadSpec::new(Benchmark::Ballot, 200, 0.15).generate();
    let reference = ParallelMiner::new(DEFAULT_THREADS)
        .mine(&workload.build_world(), workload.transactions())
        .unwrap();

    let mut group = c.benchmark_group("ablation/validator-threads");
    group.sample_size(10);
    for threads in [1usize, 2, 3, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                ParallelValidator::new(t)
                    .validate(&workload.build_world(), &reference.block)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_miner_thread_scaling(c: &mut Criterion) {
    let workload = WorkloadSpec::new(Benchmark::Ballot, 200, 0.15).generate();
    let mut group = c.benchmark_group("ablation/miner-threads");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            SerialMiner::new()
                .mine(&workload.build_world(), workload.transactions())
                .unwrap()
        })
    });
    for threads in [1usize, 2, 3, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                ParallelMiner::new(t)
                    .mine(&workload.build_world(), workload.transactions())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_validator_strategies,
    bench_validator_thread_scaling,
    bench_miner_thread_scaling
);
criterion_main!(benches);
