//! Ablation benches for design choices called out in DESIGN.md:
//!
//! * fork-join validation vs. serial re-validation vs. re-speculating
//!   (running the parallel *miner* again, which is what a validator would
//!   have to do without the published schedule),
//! * validator thread scaling,
//! * the cost of the validator's trace/race checking.

use cc_bench::{engine, DEFAULT_THREADS};
use cc_core::engine::{EngineConfig, ExecutionStrategy};
use cc_workload::{Benchmark, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_validator_strategies(c: &mut Criterion) {
    let workload = WorkloadSpec::new(Benchmark::Mixed, 200, 0.15).generate();
    let speculative = engine(ExecutionStrategy::SpeculativeStm, DEFAULT_THREADS);
    let no_trace_checks = EngineConfig::new()
        .threads(DEFAULT_THREADS)
        .check_traces(false)
        .build()
        .unwrap();
    let serial = engine(ExecutionStrategy::Serial, 1);
    let reference = speculative
        .mine(&workload.build_world(), workload.transactions())
        .unwrap();

    let mut group = c.benchmark_group("ablation/validator-strategy");
    group.sample_size(10);
    group.bench_function("fork-join", |b| {
        b.iter(|| {
            speculative
                .validate(&workload.build_world(), &reference.block)
                .unwrap()
        })
    });
    group.bench_function("fork-join-no-trace-checks", |b| {
        b.iter(|| {
            no_trace_checks
                .validate(&workload.build_world(), &reference.block)
                .unwrap()
        })
    });
    group.bench_function("serial-revalidation", |b| {
        b.iter(|| {
            serial
                .validate(&workload.build_world(), &reference.block)
                .unwrap()
        })
    });
    group.bench_function("re-speculate", |b| {
        b.iter(|| {
            // Without schedule metadata a concurrent validator would have to
            // redo the miner's speculative work (and could not check the
            // state deterministically) — this measures that cost.
            speculative
                .mine(&workload.build_world(), workload.transactions())
                .unwrap()
        })
    });
    group.finish();
}

fn bench_validator_thread_scaling(c: &mut Criterion) {
    let workload = WorkloadSpec::new(Benchmark::Ballot, 200, 0.15).generate();
    let reference = engine(ExecutionStrategy::SpeculativeStm, DEFAULT_THREADS)
        .mine(&workload.build_world(), workload.transactions())
        .unwrap();

    let mut group = c.benchmark_group("ablation/validator-threads");
    group.sample_size(10);
    for threads in [1usize, 2, 3, 4, 8] {
        let validator = engine(ExecutionStrategy::SpeculativeStm, threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                validator
                    .validate(&workload.build_world(), &reference.block)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_miner_thread_scaling(c: &mut Criterion) {
    let workload = WorkloadSpec::new(Benchmark::Ballot, 200, 0.15).generate();
    let mut group = c.benchmark_group("ablation/miner-threads");
    group.sample_size(10);
    let serial = engine(ExecutionStrategy::Serial, 1);
    group.bench_function("serial", |b| {
        b.iter(|| {
            serial
                .mine(&workload.build_world(), workload.transactions())
                .unwrap()
        })
    });
    for threads in [1usize, 2, 3, 4, 8] {
        let miner = engine(ExecutionStrategy::SpeculativeStm, threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                miner
                    .mine(&workload.build_world(), workload.transactions())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_validator_strategies,
    bench_validator_thread_scaling,
    bench_miner_thread_scaling
);
criterion_main!(benches);
