//! Criterion bench for Figure 1 (right column): serial miner, parallel
//! miner and fork-join validator as the data-conflict percentage grows at
//! a fixed block size of 200 transactions.

use cc_bench::{engine, DEFAULT_THREADS};
use cc_core::engine::ExecutionStrategy;
use cc_workload::{Benchmark, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A reduced conflict grid; the `repro` binary covers 0%–100% in 10%
/// steps like the paper.
const CONFLICTS: [f64; 3] = [0.0, 0.5, 1.0];
const BLOCK_SIZE: usize = 200;

fn bench_conflict(c: &mut Criterion) {
    let serial = engine(ExecutionStrategy::Serial, 1);
    let speculative = engine(ExecutionStrategy::SpeculativeStm, DEFAULT_THREADS);
    for benchmark in Benchmark::ALL {
        let mut group = c.benchmark_group(format!("figure1/conflict/{benchmark}"));
        group.sample_size(10);
        for conflict in CONFLICTS {
            let label = format!("{:.0}%", conflict * 100.0);
            let workload = WorkloadSpec::new(benchmark, BLOCK_SIZE, conflict).generate();

            group.bench_with_input(
                BenchmarkId::new("serial-miner", &label),
                &workload,
                |b, w| b.iter(|| serial.mine(&w.build_world(), w.transactions()).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new("parallel-miner", &label),
                &workload,
                |b, w| {
                    b.iter(|| {
                        speculative
                            .mine(&w.build_world(), w.transactions())
                            .unwrap()
                    })
                },
            );
            let reference = speculative
                .mine(&workload.build_world(), workload.transactions())
                .unwrap();
            group.bench_with_input(
                BenchmarkId::new("parallel-validator", &label),
                &workload,
                |b, w| {
                    b.iter(|| {
                        speculative
                            .validate(&w.build_world(), &reference.block)
                            .unwrap()
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_conflict);
criterion_main!(benches);
