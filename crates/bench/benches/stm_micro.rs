//! Microbenchmarks of the transactional-boosting runtime itself: the cost
//! of one boosted operation, of commit/abort, and of contended vs.
//! uncontended additive updates. These quantify the constant factors the
//! end-to-end Figure 1 numbers are built from.

use cc_stm::{BoostedCounterMap, BoostedMap, Stm};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench_boosted_map_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm/boosted-map");
    group.sample_size(20);

    group.bench_function("insert-commit", |b| {
        let stm = Stm::new();
        let map: BoostedMap<u64, u64> = BoostedMap::new("bench.map.insert");
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(1);
            stm.run(|txn| map.insert(txn, key, key)).unwrap()
        })
    });

    group.bench_function("get-commit", |b| {
        let stm = Stm::new();
        let map: BoostedMap<u64, u64> = BoostedMap::new("bench.map.get");
        for i in 0..1024u64 {
            map.seed(i, i);
        }
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 1) % 1024;
            stm.run(|txn| map.get(txn, &key)).unwrap()
        })
    });

    group.bench_function("insert-abort", |b| {
        let stm = Stm::new();
        let map: BoostedMap<u64, u64> = BoostedMap::new("bench.map.abort");
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(1);
            let txn = stm.begin();
            map.insert(&txn, key, key).unwrap();
            txn.abort().unwrap();
        })
    });

    group.bench_function("update-or-commit", |b| {
        let stm = Stm::new();
        let map: BoostedMap<u64, u64> = BoostedMap::new("bench.map.update");
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 1) % 256;
            stm.run(|txn| map.update_or(txn, key, 0, |v| *v += 1))
                .unwrap()
        })
    });
    group.finish();
}

/// Read/write-ratio cases: one transaction performing `reads` shared-mode
/// gets plus `writes` exclusive inserts. These isolate what Shared-mode
/// reads and the typed undo log buy at each ratio.
fn bench_read_write_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm/read-write-mix");
    group.sample_size(20);

    for (label, reads, writes) in [
        ("r16-w0", 16u64, 0u64),
        ("r15-w1", 15, 1),
        ("r8-w8", 8, 8),
        ("r0-w16", 0, 16),
    ] {
        group.bench_function(label, |b| {
            let stm = Stm::new();
            let map: BoostedMap<u64, u64> = BoostedMap::new("bench.map.mix");
            for i in 0..1024u64 {
                map.seed(i, i);
            }
            let mut base = 0u64;
            b.iter(|| {
                base = (base + 1) % 512;
                stm.run(|txn| {
                    for j in 0..reads {
                        map.get(txn, &((base + j * 61) % 1024))?;
                    }
                    for j in 0..writes {
                        map.insert(txn, base + j * 1024, j)?;
                    }
                    Ok(())
                })
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_additive_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm/contention");
    group.sample_size(10);

    group.bench_function("additive-8-threads-same-key", |b| {
        b.iter(|| {
            let stm = Stm::new();
            let counters: Arc<BoostedCounterMap<u8>> =
                Arc::new(BoostedCounterMap::new("bench.cnt.add"));
            crossbeam::scope(|s| {
                for _ in 0..8 {
                    let stm = stm.clone();
                    let counters = Arc::clone(&counters);
                    s.spawn(move |_| {
                        for _ in 0..64 {
                            stm.run(|txn| counters.add(txn, 0, 1)).unwrap();
                        }
                    });
                }
            })
            .unwrap();
            assert_eq!(counters.peek(&0), 8 * 64);
        })
    });

    group.bench_function("exclusive-8-threads-same-key", |b| {
        b.iter(|| {
            let stm = Stm::new();
            let map: Arc<BoostedMap<u8, u64>> = Arc::new(BoostedMap::new("bench.map.hot"));
            map.seed(0, 0);
            crossbeam::scope(|s| {
                for _ in 0..8 {
                    let stm = stm.clone();
                    let map = Arc::clone(&map);
                    s.spawn(move |_| {
                        for _ in 0..64 {
                            stm.run(|txn| map.update_or(txn, 0, 0, |v| *v += 1))
                                .unwrap();
                        }
                    });
                }
            })
            .unwrap();
            assert_eq!(map.peek(&0), Some(8 * 64));
        })
    });

    group.bench_function("shared-read-8-threads-same-key", |b| {
        b.iter(|| {
            let stm = Stm::new();
            let map: Arc<BoostedMap<u8, u64>> = Arc::new(BoostedMap::new("bench.map.shared"));
            map.seed(0, 42);
            crossbeam::scope(|s| {
                for _ in 0..8 {
                    let stm = stm.clone();
                    let map = Arc::clone(&map);
                    s.spawn(move |_| {
                        for _ in 0..64 {
                            stm.run(|txn| map.get(txn, &0)).unwrap();
                        }
                    });
                }
            })
            .unwrap();
        })
    });

    group.bench_function("disjoint-8-threads", |b| {
        b.iter(|| {
            let stm = Stm::new();
            let map: Arc<BoostedMap<u64, u64>> = Arc::new(BoostedMap::new("bench.map.disjoint"));
            crossbeam::scope(|s| {
                for t in 0..8u64 {
                    let stm = stm.clone();
                    let map = Arc::clone(&map);
                    s.spawn(move |_| {
                        for i in 0..64u64 {
                            stm.run(|txn| map.insert(txn, t * 1000 + i, i)).unwrap();
                        }
                    });
                }
            })
            .unwrap();
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_boosted_map_ops,
    bench_read_write_mix,
    bench_additive_contention
);
criterion_main!(benches);
