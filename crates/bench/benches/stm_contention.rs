//! Lock-manager contention bench: acquire/release throughput across
//! thread counts × key mixes × manager backends.
//!
//! The `global-mutex` arm is the pre-sharding manager (kept verbatim in
//! `cc_bench::contention::baseline`); `sharded-1` is the current manager
//! constrained to one stripe (hashing + targeted wakeups, no sharding);
//! `sharded` is the current default. The PR-acceptance number — sharded
//! vs. global on the 8-thread disjoint workload — falls out of the
//! `disjoint/.../8t` lines.

use cc_bench::contention::{contention_threads, measure_contention, Backend, Mix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const OPS_PER_THREAD: usize = 2_000;

fn bench_contention(c: &mut Criterion) {
    for mix in [Mix::Disjoint, Mix::Hot] {
        let mut group = c.benchmark_group(format!("stm_contention/{mix}"));
        group.sample_size(3);
        for backend in [Backend::Global, Backend::Sharded1, Backend::Sharded] {
            for &threads in &contention_threads() {
                group.bench_function(
                    BenchmarkId::new(backend.to_string(), format!("{threads}t")),
                    |b| {
                        b.iter(|| {
                            let point = measure_contention(backend, threads, OPS_PER_THREAD, mix);
                            // Surface the throughput the timing alone hides.
                            println!(
                                "    -> {}/{}/{}t: {:.0} txns/s",
                                mix, backend, threads, point.ops_per_sec
                            );
                            point.ops_per_sec
                        })
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_contention);
criterion_main!(benches);
