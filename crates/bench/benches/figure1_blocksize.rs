//! Criterion bench for Figure 1 (left column): serial miner, parallel
//! miner and fork-join validator as the block size grows at 15% data
//! conflict.
//!
//! Run with `cargo bench -p cc-bench --bench figure1_blocksize`. The
//! `repro` binary prints the same series in the paper's speedup form.

use cc_bench::DEFAULT_THREADS;
use cc_core::miner::{Miner, ParallelMiner, SerialMiner};
use cc_core::validator::{ParallelValidator, Validator};
use cc_workload::{Benchmark, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A reduced block-size grid keeps a full `cargo bench` run tractable;
/// the `repro` binary covers the paper's complete 10–400 grid.
const BLOCK_SIZES: [usize; 3] = [50, 200, 400];

fn bench_blocksize(c: &mut Criterion) {
    for benchmark in Benchmark::ALL {
        let mut group = c.benchmark_group(format!("figure1/blocksize/{benchmark}"));
        group.sample_size(10);
        for block_size in BLOCK_SIZES {
            let workload = WorkloadSpec::new(benchmark, block_size, 0.15).generate();

            group.bench_with_input(
                BenchmarkId::new("serial-miner", block_size),
                &workload,
                |b, w| {
                    b.iter(|| {
                        SerialMiner::new()
                            .mine(&w.build_world(), w.transactions())
                            .unwrap()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("parallel-miner", block_size),
                &workload,
                |b, w| {
                    b.iter(|| {
                        ParallelMiner::new(DEFAULT_THREADS)
                            .mine(&w.build_world(), w.transactions())
                            .unwrap()
                    })
                },
            );
            let reference = ParallelMiner::new(DEFAULT_THREADS)
                .mine(&workload.build_world(), workload.transactions())
                .unwrap();
            group.bench_with_input(
                BenchmarkId::new("parallel-validator", block_size),
                &workload,
                |b, w| {
                    b.iter(|| {
                        ParallelValidator::new(DEFAULT_THREADS)
                            .validate(&w.build_world(), &reference.block)
                            .unwrap()
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_blocksize);
criterion_main!(benches);
