//! Criterion bench for Figure 1 (left column): serial miner, parallel
//! miner and fork-join validator as the block size grows at 15% data
//! conflict.
//!
//! Run with `cargo bench -p cc-bench --bench figure1_blocksize`. The
//! `repro` binary prints the same series in the paper's speedup form.

use cc_bench::{engine, DEFAULT_THREADS};
use cc_core::engine::ExecutionStrategy;
use cc_workload::{Benchmark, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A reduced block-size grid keeps a full `cargo bench` run tractable;
/// the `repro` binary covers the paper's complete 10–400 grid.
const BLOCK_SIZES: [usize; 3] = [50, 200, 400];

fn bench_blocksize(c: &mut Criterion) {
    let serial = engine(ExecutionStrategy::Serial, 1);
    let speculative = engine(ExecutionStrategy::SpeculativeStm, DEFAULT_THREADS);
    for benchmark in Benchmark::ALL {
        let mut group = c.benchmark_group(format!("figure1/blocksize/{benchmark}"));
        group.sample_size(10);
        for block_size in BLOCK_SIZES {
            let workload = WorkloadSpec::new(benchmark, block_size, 0.15).generate();

            group.bench_with_input(
                BenchmarkId::new("serial-miner", block_size),
                &workload,
                |b, w| b.iter(|| serial.mine(&w.build_world(), w.transactions()).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new("parallel-miner", block_size),
                &workload,
                |b, w| {
                    b.iter(|| {
                        speculative
                            .mine(&w.build_world(), w.transactions())
                            .unwrap()
                    })
                },
            );
            let reference = speculative
                .mine(&workload.build_world(), workload.transactions())
                .unwrap();
            group.bench_with_input(
                BenchmarkId::new("parallel-validator", block_size),
                &workload,
                |b, w| {
                    b.iter(|| {
                        speculative
                            .validate(&w.build_world(), &reference.block)
                            .unwrap()
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_blocksize);
criterion_main!(benches);
