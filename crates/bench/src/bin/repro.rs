//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--threads N] [--reps R] [--quick] [--strategy NAME] [--json PATH] \
//!       [figure1-blocksize|figure1-conflict|table1|appendix-b|ablation|contention|micro|schedule|read-heavy|abort-rate|durability|pipeline|perf|all]
//! repro diff OLD.json NEW.json [--tolerance PCT] [--strict] [--section NAME]
//! ```
//!
//! * `figure1-blocksize` — Figure 1, left column: speedup vs. block size at
//!   15% conflict, for each of the four benchmarks.
//! * `figure1-conflict` — Figure 1, right column: speedup vs. conflict
//!   percentage at 200 transactions.
//! * `table1` — Table 1: per-benchmark average speedups for the two sweeps.
//! * `appendix-b` — the same sweeps reported as mean ± stddev running time
//!   (ms) for serial, miner and validator.
//! * `ablation` — design-choice ablations not in the paper: validator
//!   thread scaling, trace-check overhead, serial re-validation.
//! * `contention` — lock-manager throughput: threads × disjoint / hot /
//!   read-heavy (shared-mode) mixes, sharded manager vs. the pre-sharding
//!   global-mutex baseline.
//! * `micro` — per-operation cost of the boosted-storage hot path
//!   (insert/get/update/add and a read-heavy transaction, plus the
//!   pre-typed-undo boxed-closure baseline).
//! * `schedule` — the schedule pipeline itself: happens-before graph
//!   build time, published edge count (vs. the pre-reduction all-pairs
//!   count) and encoded metadata bytes on chain / antichain / hot-key /
//!   mixed-mode block shapes.
//! * `read-heavy` — engine-level read-heavy hot-key blocks: miner time,
//!   blocking waits and schedule shape (shared reads keep the critical
//!   path flat where exclusive reads serialized the block).
//! * `abort-rate` — pessimistic vs optimistic abort accounting across the
//!   conflict sweep: deadlock-victim retries (speculative STM) against
//!   first-committer-wins validation failures (optimistic MVCC), plus the
//!   optimistic strategy's validation-free read-only commit count.
//! * `durability` — per-block commit latency of a durable node under
//!   each WAL mode (`off` / `buffered` / `fsync`): what group commit
//!   costs, and proof the `Off` mode stays free.
//! * `pipeline` — ingestion-to-commit throughput from a prefilled
//!   mempool: durability `off/buffered/fsync` × production `seq/pipe`
//!   (sequential `mine_pending` loop vs. the pipelined producer that
//!   overlaps each block's WAL seal/fsync with mining the next). Also
//!   verifies the pipeline's persist-failure path end to end (WAL fault
//!   injection → stale + rollback → recovery) and exits non-zero if any
//!   of those invariants break, which is what the CI smoke step runs.
//! * `perf` — `micro` + `schedule` + `read-heavy` + `abort-rate` +
//!   `contention` + `durability` + `pipeline`: the sections the per-PR
//!   perf trajectory (`BENCH_PR*.json`) and the CI smoke diff track.
//! * `all` (default) — everything above.
//! * `diff OLD.json NEW.json` — compares two `--json` outputs
//!   per-benchmark and flags deltas beyond `--tolerance` (default 25%);
//!   with `--strict`, regressions make the exit status non-zero, and
//!   `--section NAME` restricts the comparison to one section (e.g.
//!   `--section stm_micro`), which is how CI gates the per-op hot-path
//!   numbers strictly while keeping the full-suite diff informational.
//!
//! `--strategy NAME` selects the concurrent strategy the Figure-1 sweeps
//! measure against the serial baseline (`speculative-stm` by default;
//! `optimistic-mvcc` benchmarks the multi-version back-end through the
//! identical harness). The `abort-rate` section always measures both
//! concurrent strategies, whatever `--strategy` says.
//!
//! `--quick` shrinks the sweeps (fewer points, 2 repetitions) so the whole
//! run finishes in a couple of minutes; the full run mirrors the paper's
//! 5 repetitions + 3 warm-ups. The `stm_micro` section is exempt from the
//! shrinking: its numbers are strictly CI-gated against the committed
//! baseline, so quick runs must not bias them (see `micro_ops`).
//!
//! `--json PATH` additionally writes the run's sweep data — the Figure-1
//! block-size/conflict sweeps, the contention suite and the micro suite,
//! whichever the command produced (ablation output is print-only) — to
//! `PATH` as a JSON document. Committing one such file per PR
//! (`BENCH_PR2.json`, …) records the repo's perf trajectory alongside the
//! code.

use cc_bench::contention::{contention_threads, measure_contention, Backend, ContentionPoint, Mix};
use cc_bench::durability::{run_durability, DurabilityPoint};
use cc_bench::json::Json;
use cc_bench::micro::{run_micro, MicroPoint};
use cc_bench::pipeline::{
    run_follower, run_pipeline, verify_failure_path, verify_follower_failure_path, PipelinePoint,
};
use cc_bench::schedule::{run_schedule, SchedulePoint};
use cc_bench::{
    average_speedups, engine, figure1_block_sizes, figure1_conflicts, measure, measure_abort_rate,
    measure_read_heavy, measure_serial_validation, measure_with, AbortRatePoint, ReadHeavyPoint,
    SweepPoint, DEFAULT_THREADS, REPETITIONS,
};
use cc_core::engine::{Engine, EngineConfig, ExecutionStrategy};
use cc_workload::{Benchmark, WorkloadSpec};

#[derive(Debug, Clone)]
struct Options {
    threads: usize,
    repetitions: usize,
    quick: bool,
    /// The concurrent strategy the Figure-1 sweeps measure against the
    /// serial baseline (`--strategy serial` is accepted but degenerate:
    /// it measures the baseline against itself).
    strategy: ExecutionStrategy,
    command: String,
    /// Positional arguments after the command (used by `diff`).
    operands: Vec<String>,
    json_path: Option<String>,
    /// `diff`: relative delta (percent) beyond which a worse result is
    /// flagged as a regression.
    tolerance: f64,
    /// `diff`: exit non-zero when regressions are flagged.
    strict: bool,
    /// `diff`: restrict the comparison to one section's metrics
    /// (label prefix, e.g. `stm_micro`).
    section: Option<String>,
}

fn parse_args() -> Options {
    let mut options = Options {
        threads: DEFAULT_THREADS,
        repetitions: REPETITIONS,
        quick: false,
        strategy: ExecutionStrategy::SpeculativeStm,
        command: "all".to_string(),
        operands: Vec::new(),
        json_path: None,
        tolerance: 25.0,
        strict: false,
        section: None,
    };
    let mut saw_command = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                options.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(DEFAULT_THREADS);
                if options.threads == 0 {
                    eprintln!("--threads must be at least 1");
                    std::process::exit(2);
                }
            }
            "--reps" => {
                options.repetitions = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(REPETITIONS);
            }
            "--quick" => options.quick = true,
            "--strict" => options.strict = true,
            "--strategy" => match args.next().map(|v| v.parse::<ExecutionStrategy>()) {
                Some(Ok(strategy)) => options.strategy = strategy,
                Some(Err(err)) => {
                    eprintln!("--strategy: {err}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!(
                        "--strategy requires a name (serial, speculative-stm or optimistic-mvcc)"
                    );
                    std::process::exit(2);
                }
            },
            "--tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(pct) => options.tolerance = pct,
                None => {
                    eprintln!("--tolerance requires a percentage");
                    std::process::exit(2);
                }
            },
            "--section" => match args.next() {
                Some(name) => options.section = Some(name),
                None => {
                    eprintln!("--section requires a section name (e.g. stm_micro)");
                    std::process::exit(2);
                }
            },
            "--json" => match args.next() {
                Some(path) => options.json_path = Some(path),
                None => {
                    eprintln!("--json requires a file path");
                    std::process::exit(2);
                }
            },
            other if !other.starts_with("--") => {
                if saw_command {
                    options.operands.push(other.to_string());
                } else {
                    options.command = other.to_string();
                    saw_command = true;
                }
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    if options.quick {
        options.repetitions = options.repetitions.min(2);
    }
    options
}

fn block_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![10, 100, 200, 400]
    } else {
        figure1_block_sizes()
    }
}

fn conflicts(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 0.3, 0.6, 1.0]
    } else {
        figure1_conflicts()
    }
}

fn sweep_blocksize_points(benchmark: Benchmark, opts: &Options) -> Vec<SweepPoint> {
    block_sizes(opts.quick)
        .into_iter()
        .map(|block_size| {
            let workload = WorkloadSpec::new(benchmark, block_size, 0.15).generate();
            SweepPoint {
                block_size,
                conflict: 0.15,
                measurement: measure_with(&workload, opts.strategy, opts.threads, opts.repetitions),
            }
        })
        .collect()
}

fn sweep_conflict_points(benchmark: Benchmark, opts: &Options) -> Vec<SweepPoint> {
    conflicts(opts.quick)
        .into_iter()
        .map(|conflict| {
            let workload = WorkloadSpec::new(benchmark, 200, conflict).generate();
            SweepPoint {
                block_size: 200,
                conflict,
                measurement: measure_with(&workload, opts.strategy, opts.threads, opts.repetitions),
            }
        })
        .collect()
}

fn print_figure1_blocksize(opts: &Options) -> Vec<(Benchmark, Vec<SweepPoint>)> {
    println!(
        "\n== Figure 1 (left column): speedup vs. block size, 15% conflict, {} threads, {} ==",
        opts.threads, opts.strategy
    );
    let mut all = Vec::new();
    for benchmark in Benchmark::ALL {
        println!("\n-- {benchmark} --");
        println!(
            "{:>8} {:>14} {:>18}",
            "txns", "miner speedup", "validator speedup"
        );
        let points = sweep_blocksize_points(benchmark, opts);
        for p in &points {
            println!(
                "{:>8} {:>14.2} {:>18.2}",
                p.block_size,
                p.measurement.miner_speedup(),
                p.measurement.validator_speedup()
            );
        }
        all.push((benchmark, points));
    }
    all
}

fn print_figure1_conflict(opts: &Options) -> Vec<(Benchmark, Vec<SweepPoint>)> {
    println!(
        "\n== Figure 1 (right column): speedup vs. conflict %, 200 transactions, {} threads, {} ==",
        opts.threads, opts.strategy
    );
    let mut all = Vec::new();
    for benchmark in Benchmark::ALL {
        println!("\n-- {benchmark} --");
        println!(
            "{:>10} {:>14} {:>18}",
            "conflict", "miner speedup", "validator speedup"
        );
        let points = sweep_conflict_points(benchmark, opts);
        for p in &points {
            println!(
                "{:>9.0}% {:>14.2} {:>18.2}",
                p.conflict * 100.0,
                p.measurement.miner_speedup(),
                p.measurement.validator_speedup()
            );
        }
        all.push((benchmark, points));
    }
    all
}

fn print_table1(
    blocksize: &[(Benchmark, Vec<SweepPoint>)],
    conflict: &[(Benchmark, Vec<SweepPoint>)],
) {
    println!("\n== Table 1: average speedups per benchmark ==");
    println!(
        "{:>15} {:>16} {:>16} {:>20} {:>20}",
        "benchmark",
        "miner(conflict)",
        "miner(blocksize)",
        "validator(conflict)",
        "validator(blocksize)"
    );
    let mut overall_miner = Vec::new();
    let mut overall_validator = Vec::new();
    for (benchmark, bs_points) in blocksize {
        let conflict_points = conflict
            .iter()
            .find(|(b, _)| b == benchmark)
            .map(|(_, p)| p.as_slice())
            .unwrap_or(&[]);
        let (miner_conf, val_conf) = average_speedups(conflict_points);
        let (miner_bs, val_bs) = average_speedups(bs_points);
        println!(
            "{:>15} {:>15.2}x {:>15.2}x {:>19.2}x {:>19.2}x",
            benchmark.to_string(),
            miner_conf,
            miner_bs,
            val_conf,
            val_bs
        );
        overall_miner.extend([miner_conf, miner_bs]);
        overall_validator.extend([val_conf, val_bs]);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nOverall average speedup: miner {:.2}x, validator {:.2}x (paper: 1.33x and 1.69x with 3 threads)",
        avg(&overall_miner),
        avg(&overall_validator)
    );
}

fn print_appendix_b(
    blocksize: &[(Benchmark, Vec<SweepPoint>)],
    conflict: &[(Benchmark, Vec<SweepPoint>)],
) {
    println!("\n== Appendix B: mean ± stddev running time (ms) ==");
    for (label, sweeps) in [
        ("block-size sweep (15% conflict)", blocksize),
        ("conflict sweep (200 txns)", conflict),
    ] {
        println!("\n-- {label} --");
        for (benchmark, points) in sweeps {
            println!("\n{benchmark}");
            println!(
                "{:>10} {:>10} {:>22} {:>22} {:>22}",
                "txns", "conflict", "serial (ms)", "miner (ms)", "validator (ms)"
            );
            for p in points {
                println!(
                    "{:>10} {:>9.0}% {:>13.2} ± {:>6.2} {:>13.2} ± {:>6.2} {:>13.2} ± {:>6.2}",
                    p.block_size,
                    p.conflict * 100.0,
                    p.measurement.serial.mean_ms(),
                    p.measurement.serial.stddev_ms(),
                    p.measurement.miner.mean_ms(),
                    p.measurement.miner.stddev_ms(),
                    p.measurement.validator.mean_ms(),
                    p.measurement.validator.stddev_ms(),
                );
            }
        }
    }
}

fn print_ablation(opts: &Options) {
    println!("\n== Ablation (not in the paper's tables) ==");
    let workload = WorkloadSpec::new(Benchmark::Mixed, 200, 0.15).generate();
    let base = measure(&workload, opts.threads, opts.repetitions);
    println!(
        "Mixed, 200 txns, 15% conflict, {} threads: serial {:.2} ms, parallel miner {:.2} ms, fork-join validator {:.2} ms",
        opts.threads,
        base.serial.mean_ms(),
        base.miner.mean_ms(),
        base.validator.mean_ms()
    );

    // (a) Serial re-validation (what validators do today).
    let serial_validation = measure_serial_validation(&workload, opts.threads, opts.repetitions);
    println!(
        "  serial re-validation: {:.2} ms ({:.2}x vs fork-join validator)",
        serial_validation.mean_ms(),
        serial_validation.mean_ms() / base.validator.mean_ms()
    );

    // (b) Validator thread scaling (the fork-join program does not need to
    // match the miner's parallelism).
    let reference = engine(ExecutionStrategy::SpeculativeStm, opts.threads)
        .mine(&workload.build_world(), workload.transactions())
        .expect("reference block");
    let time_validator = |v: &Engine| {
        let mut samples = Vec::new();
        for _ in 0..opts.repetitions.max(1) {
            let world = workload.build_world();
            let start = std::time::Instant::now();
            v.validate(&world, &reference.block).expect("valid");
            samples.push(start.elapsed());
        }
        cc_bench::Timing::from_samples(&samples)
    };
    println!("  validator thread scaling (same block):");
    for threads in [1usize, 2, 3, 4, 6, 8] {
        let validator = engine(ExecutionStrategy::SpeculativeStm, threads);
        let timing = time_validator(&validator);
        println!("    {threads} thread(s): {:.2} ms", timing.mean_ms());
    }

    // (c) Trace-check overhead.
    let with_checks = engine(ExecutionStrategy::SpeculativeStm, opts.threads);
    let without_checks = EngineConfig::new()
        .threads(opts.threads)
        .check_traces(false)
        .build()
        .expect("valid config");
    let checked = time_validator(&with_checks);
    let unchecked = time_validator(&without_checks);
    println!(
        "  trace/race checking overhead: {:.2} ms with checks vs {:.2} ms without ({:.1}% overhead)",
        checked.mean_ms(),
        unchecked.mean_ms(),
        (checked.mean_ms() / unchecked.mean_ms() - 1.0) * 100.0
    );
}

fn contention_ops(quick: bool) -> usize {
    if quick {
        2_000
    } else {
        10_000
    }
}

fn print_contention(opts: &Options) -> Vec<ContentionPoint> {
    println!("\n== Lock-manager contention: committed lock txns/s ==");
    let ops = contention_ops(opts.quick);
    let mut points = Vec::new();
    for mix in [Mix::Disjoint, Mix::Hot, Mix::ReadHeavy] {
        println!("\n-- {mix} mix --");
        println!(
            "{:>8} {:>16} {:>16} {:>16}",
            "threads",
            Backend::Global.to_string(),
            Backend::Sharded1.to_string(),
            Backend::Sharded.to_string()
        );
        for &threads in &contention_threads() {
            let row: Vec<ContentionPoint> = [Backend::Global, Backend::Sharded1, Backend::Sharded]
                .into_iter()
                .map(|b| measure_contention(b, threads, ops, mix))
                .collect();
            println!(
                "{:>8} {:>16.0} {:>16.0} {:>16.0}",
                threads, row[0].ops_per_sec, row[1].ops_per_sec, row[2].ops_per_sec
            );
            points.extend(row);
        }
    }
    let find = |mix: Mix, backend: Backend, threads: usize| {
        points
            .iter()
            .find(|p| p.mix == mix && p.backend == backend && p.threads == threads)
            .map(|p| p.ops_per_sec)
    };
    if let (Some(global), Some(sharded)) = (
        find(Mix::Disjoint, Backend::Global, 8),
        find(Mix::Disjoint, Backend::Sharded, 8),
    ) {
        println!(
            "\n8-thread disjoint workload: sharded manager {:.2}x the global-mutex baseline",
            sharded / global
        );
    }
    let find_waits = |mix: Mix, backend: Backend, threads: usize| {
        points
            .iter()
            .find(|p| p.mix == mix && p.backend == backend && p.threads == threads)
            .map(|p| p.waits_per_1k)
    };
    if let (Some(hot), Some(read_heavy)) = (
        find(Mix::Hot, Backend::Sharded, 8),
        find(Mix::ReadHeavy, Backend::Sharded, 8),
    ) {
        println!(
            "8-thread hot key: shared-mode read-heavy mix {:.2}x the all-exclusive mix's throughput",
            read_heavy / hot
        );
    }
    if let (Some(hot), Some(read_heavy)) = (
        find_waits(Mix::Hot, Backend::Sharded, 8),
        find_waits(Mix::ReadHeavy, Backend::Sharded, 8),
    ) {
        println!(
            "8-thread hot key conflict rate: {hot:.1} waits/1k txns all-exclusive vs \
             {read_heavy:.1} waits/1k txns read-heavy (shared readers do not block)"
        );
    }
    points
}

fn micro_ops(_quick: bool) -> usize {
    // Deliberately NOT shrunk by --quick: the stm_micro section is the
    // strictly CI-gated hot-path scoreboard, and fewer iterations bias
    // every case 30–50% high (worse warm-up, worse amortization of the
    // timing loop) — the gate would then compare a quick smoke run
    // against the committed full-run baseline and flag phantom
    // regressions. The full iteration count costs only a few seconds.
    100_000
}

fn print_micro(opts: &Options) -> Vec<MicroPoint> {
    println!("\n== Boosted-storage per-operation cost ==");
    let points = run_micro(micro_ops(opts.quick));
    println!("{:>28} {:>12}", "case", "ns/op");
    for p in &points {
        println!("{:>28} {:>12.0}", p.name, p.ns_per_op);
    }
    let find = |name: &str| points.iter().find(|p| p.name == name).map(|p| p.ns_per_op);
    if let (Some(typed), Some(boxed)) =
        (find("map-insert-commit"), find("map-insert-boxed-baseline"))
    {
        println!(
            "\ntyped undo log: map insert {:.0} ns/op vs {:.0} ns/op for the \
             pre-PR boxed-closure path ({:.1}% cheaper)",
            typed,
            boxed,
            (1.0 - typed / boxed) * 100.0
        );
    }
    points
}

fn schedule_passes(quick: bool) -> usize {
    if quick {
        3
    } else {
        9
    }
}

fn print_schedule(opts: &Options) -> Vec<SchedulePoint> {
    println!("\n== Schedule pipeline: build time, edges, metadata bytes ==");
    let points = run_schedule(schedule_passes(opts.quick));
    println!(
        "{:>12} {:>8} {:>12} {:>10} {:>14} {:>10} {:>12}",
        "shape", "txns", "build (µs)", "edges", "all-pairs", "crit path", "meta bytes"
    );
    for p in &points {
        println!(
            "{:>12} {:>8} {:>12.1} {:>10} {:>14} {:>10} {:>12}",
            p.shape,
            p.txns,
            p.build_us,
            p.edges,
            p.all_pairs_edges,
            p.critical_path,
            p.metadata_bytes
        );
    }
    if let Some(chain) = points.iter().find(|p| p.shape == "chain") {
        println!(
            "\nchain reduction: {} published edges vs {} all-ordered-pairs ({:.0}x smaller)",
            chain.edges,
            chain.all_pairs_edges,
            chain.all_pairs_edges as f64 / chain.edges.max(1) as f64
        );
    }
    points
}

fn schedule_json(points: &[SchedulePoint]) -> Json {
    Json::Array(
        points
            .iter()
            .map(|p| {
                Json::object([
                    ("shape", Json::str(p.shape)),
                    ("txns", Json::num(p.txns as u32)),
                    ("build_us", Json::num(p.build_us)),
                    ("edges", Json::num(p.edges as u32)),
                    ("all_pairs_edges", Json::num(p.all_pairs_edges as u32)),
                    ("critical_path", Json::num(p.critical_path as u32)),
                    ("metadata_bytes", Json::num(p.metadata_bytes as u32)),
                ])
            })
            .collect(),
    )
}

fn timing_json(t: &cc_bench::Timing) -> Json {
    Json::object([
        ("mean_ms", Json::num(t.mean_ms())),
        ("stddev_ms", Json::num(t.stddev_ms())),
    ])
}

fn sweeps_json(sweeps: &[(Benchmark, Vec<SweepPoint>)]) -> Json {
    Json::Array(
        sweeps
            .iter()
            .map(|(benchmark, points)| {
                Json::object([
                    ("benchmark", Json::str(benchmark.to_string())),
                    (
                        "points",
                        Json::Array(
                            points
                                .iter()
                                .map(|p| {
                                    Json::object([
                                        ("block_size", Json::num(p.block_size as u32)),
                                        ("conflict", Json::num(p.conflict)),
                                        ("serial", timing_json(&p.measurement.serial)),
                                        ("miner", timing_json(&p.measurement.miner)),
                                        ("validator", timing_json(&p.measurement.validator)),
                                        ("miner_speedup", Json::num(p.measurement.miner_speedup())),
                                        (
                                            "validator_speedup",
                                            Json::num(p.measurement.validator_speedup()),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

fn contention_json(points: &[ContentionPoint]) -> Json {
    Json::Array(
        points
            .iter()
            .map(|p| {
                Json::object([
                    ("mix", Json::str(p.mix.to_string())),
                    ("backend", Json::str(p.backend.to_string())),
                    ("threads", Json::num(p.threads as u32)),
                    ("txns_per_sec", Json::num(p.ops_per_sec)),
                    ("waits_per_1k", Json::num(p.waits_per_1k)),
                ])
            })
            .collect(),
    )
}

/// The `(readers, writers)` block shapes the read-heavy sweep measures.
fn read_heavy_shapes(quick: bool) -> Vec<(usize, usize)> {
    if quick {
        vec![(60, 4), (48, 16)]
    } else {
        vec![(126, 2), (120, 8), (96, 32)]
    }
}

fn print_read_heavy(opts: &Options) -> Vec<ReadHeavyPoint> {
    println!(
        "\n== Read-heavy blocks (shared-mode reads of one hot key, {} threads) ==",
        opts.threads
    );
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>12} {:>10} {:>16}",
        "readers", "writers", "miner (ms)", "waits/blk", "retries/blk", "hb edges", "critical path"
    );
    let mut points = Vec::new();
    for (readers, writers) in read_heavy_shapes(opts.quick) {
        let p = measure_read_heavy(readers, writers, opts.threads, opts.repetitions);
        println!(
            "{:>8} {:>8} {:>12.2} {:>12.1} {:>12.1} {:>10} {:>9} (vs {})",
            p.readers,
            p.writers,
            p.miner_ms,
            p.waits_per_block,
            p.retries_per_block,
            p.hb_edges,
            p.critical_path,
            p.exclusive_read_critical_path()
        );
        points.push(p);
    }
    println!(
        "\n(\"vs N\": the critical path the same block had when reads took their \
         abstract locks exclusively — the whole block serialized)"
    );
    points
}

fn read_heavy_json(points: &[ReadHeavyPoint]) -> Json {
    Json::Array(
        points
            .iter()
            .map(|p| {
                Json::object([
                    ("readers", Json::num(p.readers as u32)),
                    ("writers", Json::num(p.writers as u32)),
                    ("threads", Json::num(p.threads as u32)),
                    ("miner_ms", Json::num(p.miner_ms)),
                    ("waits_per_block", Json::num(p.waits_per_block)),
                    ("retries_per_block", Json::num(p.retries_per_block)),
                    ("hb_edges", Json::num(p.hb_edges as u32)),
                    ("critical_path", Json::num(p.critical_path as u32)),
                    (
                        "exclusive_read_critical_path",
                        Json::num(p.exclusive_read_critical_path() as u32),
                    ),
                ])
            })
            .collect(),
    )
}

/// The conflict fractions the abort-rate sweep measures (a subset of the
/// Figure-1 conflict axis; abort behaviour changes slowly with conflict,
/// so fewer points suffice).
fn abort_rate_conflicts(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 0.5, 1.0]
    } else {
        vec![0.0, 0.15, 0.3, 0.6, 1.0]
    }
}

fn abort_rate_block_size(quick: bool) -> usize {
    if quick {
        100
    } else {
        200
    }
}

fn print_abort_rate(opts: &Options) -> Vec<(Benchmark, Vec<AbortRatePoint>)> {
    println!(
        "\n== Abort rates: pessimistic (deadlock victims) vs optimistic (validation failures), {} threads ==",
        opts.threads
    );
    let block_size = abort_rate_block_size(opts.quick);
    let mut all = Vec::new();
    for benchmark in Benchmark::ALL {
        println!("\n-- {benchmark} ({block_size} txns) --");
        println!(
            "{:>10} {:>14} {:>12} {:>14} {:>12} {:>12} {:>12}",
            "conflict",
            "spec aborts",
            "spec waits",
            "opt aborts",
            "opt r/o",
            "spec (ms)",
            "opt (ms)"
        );
        let mut points = Vec::new();
        for conflict in abort_rate_conflicts(opts.quick) {
            let workload = WorkloadSpec::new(benchmark, block_size, conflict).generate();
            let p = measure_abort_rate(&workload, opts.threads, opts.repetitions);
            println!(
                "{:>9.0}% {:>14.1} {:>12.1} {:>14.1} {:>12.1} {:>12.2} {:>12.2}",
                p.conflict * 100.0,
                p.speculative_retries_per_block,
                p.speculative_waits_per_block,
                p.optimistic_retries_per_block,
                p.optimistic_read_only_per_block,
                p.speculative_ms,
                p.optimistic_ms,
            );
            points.push(p);
        }
        all.push((benchmark, points));
    }
    println!(
        "\n(\"spec aborts\": deadlock-victim retries per block under speculative STM; \
         \"opt aborts\": first-committer-wins validation failures per block under \
         optimistic MVCC; \"opt r/o\": optimistic commits that skipped validation \
         entirely — read-only transactions never abort)"
    );
    all
}

fn abort_rate_json(sweeps: &[(Benchmark, Vec<AbortRatePoint>)]) -> Json {
    Json::Array(
        sweeps
            .iter()
            .map(|(benchmark, points)| {
                Json::object([
                    ("benchmark", Json::str(benchmark.to_string())),
                    (
                        "points",
                        Json::Array(
                            points
                                .iter()
                                .map(|p| {
                                    Json::object([
                                        ("block_size", Json::num(p.block_size as u32)),
                                        ("conflict", Json::num(p.conflict)),
                                        (
                                            "speculative_retries_per_block",
                                            Json::num(p.speculative_retries_per_block),
                                        ),
                                        (
                                            "speculative_waits_per_block",
                                            Json::num(p.speculative_waits_per_block),
                                        ),
                                        (
                                            "optimistic_retries_per_block",
                                            Json::num(p.optimistic_retries_per_block),
                                        ),
                                        (
                                            "optimistic_read_only_per_block",
                                            Json::num(p.optimistic_read_only_per_block),
                                        ),
                                        ("speculative_ms", Json::num(p.speculative_ms)),
                                        ("optimistic_ms", Json::num(p.optimistic_ms)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// The `(blocks, block_size)` shape the durability sweep mines per mode.
fn durability_shape(quick: bool) -> (u64, u64) {
    if quick {
        (3, 16)
    } else {
        (8, 32)
    }
}

fn print_durability(opts: &Options) -> Vec<DurabilityPoint> {
    println!(
        "\n== Durable block commit: WAL cost per sealed block, {} threads ==",
        opts.threads
    );
    let (blocks, block_size) = durability_shape(opts.quick);
    let points = run_durability(blocks, block_size, opts.threads, opts.repetitions);
    println!("{:>24} {:>14}", "case", "ms/block");
    for p in &points {
        println!("{:>24} {:>14.3}", p.name, p.ms_per_block);
    }
    let find = |name: &str| {
        points
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.ms_per_block)
    };
    if let (Some(off), Some(fsync)) = (find("block-commit-off"), find("block-commit-fsync")) {
        println!(
            "\ngroup commit: one fsync per {block_size}-txn block costs {:.3} ms/block \
             over the in-memory baseline ({:.3} µs amortized per txn)",
            fsync - off,
            (fsync - off) * 1000.0 / block_size as f64
        );
    }
    points
}

/// The `(blocks, block_size)` shape each pipeline case drains. Blocks
/// are deliberately small: mining an 8-transaction block still takes
/// longer than one fdatasync (so the overlap can hide the sync fully)
/// but the sync is a measurable fraction of per-block cost, instead of
/// noise under tens of milliseconds of mining. Many blocks per run
/// amortize pipeline spin-up and give the overlap many samples.
fn pipeline_shape(quick: bool) -> (u64, u64) {
    if quick {
        (4, 8)
    } else {
        (16, 8)
    }
}

fn print_pipeline(opts: &Options) -> Vec<PipelinePoint> {
    println!(
        "\n== Ingestion → commit: sequential vs. pipelined production, {} threads ==",
        opts.threads
    );
    let (blocks, block_size) = pipeline_shape(opts.quick);
    let points = run_pipeline(blocks, block_size, opts.threads, opts.repetitions);
    println!("{:>22} {:>14} {:>14}", "case", "ms/block", "txns/s");
    for p in &points {
        println!(
            "{:>22} {:>14.3} {:>14.0}",
            p.name, p.ms_per_block, p.txns_per_sec
        );
    }
    let find = |name: &str| {
        points
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.ms_per_block)
    };
    if let (Some(seq), Some(pipe)) = (find("ingest-fsync-seq"), find("ingest-fsync-pipe")) {
        println!(
            "\npipelining under fsync: {seq:.3} ms/block sequential vs {pipe:.3} ms/block \
             pipelined ({:.1}% of the per-block fsync hidden behind mining)",
            (1.0 - pipe / seq) * 100.0
        );
    }
    print!("\npersist-failure path (WAL fault injection → stale + rollback → recovery): ");
    match verify_failure_path(opts.threads) {
        Ok(()) => println!("ok"),
        Err(reason) => {
            println!("FAILED");
            eprintln!("pipeline failure-path invariant violated: {reason}");
            std::process::exit(1);
        }
    }

    println!(
        "\n== Follower: sequential vs. speculative validation, {} threads ==",
        opts.threads
    );
    let mut points = points;
    let follower = run_follower(blocks, block_size, opts.threads, opts.repetitions);
    println!("{:>22} {:>14} {:>14}", "case", "ms/block", "txns/s");
    for p in &follower {
        println!(
            "{:>22} {:>14.3} {:>14.0}",
            p.name, p.ms_per_block, p.txns_per_sec
        );
    }
    let find = |name: &str| {
        follower
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.ms_per_block)
    };
    if let (Some(seq), Some(spec)) = (find("follower-fsync-seq"), find("follower-fsync-spec")) {
        println!(
            "\nspeculation under fsync: {seq:.3} ms/block sequential vs {spec:.3} ms/block \
             speculative ({:.1}% of the per-block fsync hidden behind validation)",
            (1.0 - spec / seq) * 100.0
        );
    }
    print!("\nfollower persist-failure path (seal fault → stale + discard pending + rollback → recovery): ");
    match verify_follower_failure_path(opts.threads) {
        Ok(()) => println!("ok"),
        Err(reason) => {
            println!("FAILED");
            eprintln!("follower failure-path invariant violated: {reason}");
            std::process::exit(1);
        }
    }
    points.extend(follower);
    points
}

fn pipeline_json(points: &[PipelinePoint]) -> Json {
    Json::Array(
        points
            .iter()
            .map(|p| {
                Json::object([
                    ("name", Json::str(p.name)),
                    ("txns_per_sec", Json::num(p.txns_per_sec)),
                    ("ms_per_block", Json::num(p.ms_per_block)),
                ])
            })
            .collect(),
    )
}

fn durability_json(points: &[DurabilityPoint]) -> Json {
    Json::Array(
        points
            .iter()
            .map(|p| {
                Json::object([
                    ("name", Json::str(p.name)),
                    ("ms_per_block", Json::num(p.ms_per_block)),
                ])
            })
            .collect(),
    )
}

fn micro_json(points: &[MicroPoint]) -> Json {
    Json::Array(
        points
            .iter()
            .map(|p| {
                Json::object([
                    ("name", Json::str(p.name)),
                    ("ns_per_op", Json::num(p.ns_per_op)),
                ])
            })
            .collect(),
    )
}

// ---- `repro diff`: compare two --json outputs ---------------------------

/// Whether larger values of a metric are better (throughput) or worse
/// (latency / per-op cost).
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// One comparable metric extracted from a bench JSON: a stable label and
/// its value.
struct Metric {
    label: String,
    value: f64,
    direction: Direction,
}

/// Flattens every known section of a bench JSON into labelled metrics.
fn extract_metrics(doc: &Json) -> Vec<Metric> {
    let mut out = Vec::new();
    if let Some(points) = doc.get("stm_micro").and_then(Json::as_array) {
        for p in points {
            if let (Some(name), Some(value)) = (
                p.get("name").and_then(Json::as_str),
                p.get("ns_per_op").and_then(Json::as_f64),
            ) {
                out.push(Metric {
                    label: format!("stm_micro/{name} (ns/op)"),
                    value,
                    direction: Direction::LowerIsBetter,
                });
            }
        }
    }
    if let Some(points) = doc.get("schedule").and_then(Json::as_array) {
        for p in points {
            let Some(shape) = p.get("shape").and_then(Json::as_str) else {
                continue;
            };
            for metric in ["build_us", "edges", "metadata_bytes"] {
                if let Some(value) = p.get(metric).and_then(Json::as_f64) {
                    out.push(Metric {
                        label: format!("schedule/{shape}/{metric}"),
                        value,
                        direction: Direction::LowerIsBetter,
                    });
                }
            }
        }
    }
    if let Some(points) = doc.get("read_heavy").and_then(Json::as_array) {
        for p in points {
            let (Some(readers), Some(writers)) = (
                p.get("readers").and_then(Json::as_f64),
                p.get("writers").and_then(Json::as_f64),
            ) else {
                continue;
            };
            for (metric, direction) in [
                ("miner_ms", Direction::LowerIsBetter),
                ("waits_per_block", Direction::LowerIsBetter),
                ("critical_path", Direction::LowerIsBetter),
            ] {
                if let Some(value) = p.get(metric).and_then(Json::as_f64) {
                    out.push(Metric {
                        label: format!("read_heavy/r{readers}-w{writers}/{metric}"),
                        value,
                        direction,
                    });
                }
            }
        }
    }
    if let Some(sweeps) = doc.get("abort_rate").and_then(Json::as_array) {
        for sweep in sweeps {
            let Some(benchmark) = sweep.get("benchmark").and_then(Json::as_str) else {
                continue;
            };
            let Some(points) = sweep.get("points").and_then(Json::as_array) else {
                continue;
            };
            for p in points {
                let Some(conflict) = p.get("conflict").and_then(Json::as_f64) else {
                    continue;
                };
                for metric in [
                    "speculative_retries_per_block",
                    "optimistic_retries_per_block",
                    "speculative_ms",
                    "optimistic_ms",
                ] {
                    if let Some(value) = p.get(metric).and_then(Json::as_f64) {
                        out.push(Metric {
                            label: format!("abort_rate/{benchmark}/c{conflict:.2}/{metric}"),
                            value,
                            direction: Direction::LowerIsBetter,
                        });
                    }
                }
            }
        }
    }
    if let Some(points) = doc.get("contention").and_then(Json::as_array) {
        for p in points {
            if let (Some(mix), Some(backend), Some(threads), Some(value)) = (
                p.get("mix").and_then(Json::as_str),
                p.get("backend").and_then(Json::as_str),
                p.get("threads").and_then(Json::as_f64),
                p.get("txns_per_sec").and_then(Json::as_f64),
            ) {
                out.push(Metric {
                    label: format!("contention/{mix}/{backend}/{threads}t (txns/s)"),
                    value,
                    direction: Direction::HigherIsBetter,
                });
            }
        }
    }
    if let Some(points) = doc.get("durability").and_then(Json::as_array) {
        for p in points {
            if let (Some(name), Some(value)) = (
                p.get("name").and_then(Json::as_str),
                p.get("ms_per_block").and_then(Json::as_f64),
            ) {
                out.push(Metric {
                    label: format!("durability/{name} (ms/block)"),
                    value,
                    direction: Direction::LowerIsBetter,
                });
            }
        }
    }
    if let Some(points) = doc.get("pipeline").and_then(Json::as_array) {
        for p in points {
            let Some(name) = p.get("name").and_then(Json::as_str) else {
                continue;
            };
            if let Some(value) = p.get("txns_per_sec").and_then(Json::as_f64) {
                out.push(Metric {
                    label: format!("pipeline/{name} (txns/s)"),
                    value,
                    direction: Direction::HigherIsBetter,
                });
            }
            if let Some(value) = p.get("ms_per_block").and_then(Json::as_f64) {
                out.push(Metric {
                    label: format!("pipeline/{name} (ms/block)"),
                    value,
                    direction: Direction::LowerIsBetter,
                });
            }
        }
    }
    for section in ["figure1_blocksize", "figure1_conflict"] {
        if let Some(sweeps) = doc.get(section).and_then(Json::as_array) {
            for sweep in sweeps {
                let Some(benchmark) = sweep.get("benchmark").and_then(Json::as_str) else {
                    continue;
                };
                let Some(points) = sweep.get("points").and_then(Json::as_array) else {
                    continue;
                };
                for p in points {
                    let (Some(block_size), Some(conflict)) = (
                        p.get("block_size").and_then(Json::as_f64),
                        p.get("conflict").and_then(Json::as_f64),
                    ) else {
                        continue;
                    };
                    for role in ["serial", "miner", "validator"] {
                        if let Some(mean) = p
                            .get(role)
                            .and_then(|t| t.get("mean_ms"))
                            .and_then(Json::as_f64)
                        {
                            out.push(Metric {
                                label: format!(
                                    "{section}/{benchmark}/b{block_size}/c{conflict:.2}/{role} (ms)"
                                ),
                                value: mean,
                                direction: Direction::LowerIsBetter,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

fn load_bench_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("cannot read {path}: {err}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|err| {
        eprintln!("cannot parse {path}: {err}");
        std::process::exit(2);
    })
}

/// Compares two bench JSONs and prints per-benchmark deltas. Returns the
/// number of regressions beyond the tolerance. `section` restricts the
/// comparison to metrics whose label lives under `section/`.
fn run_diff(old_path: &str, new_path: &str, tolerance: f64, section: Option<&str>) -> usize {
    let old_doc = load_bench_json(old_path);
    let new_doc = load_bench_json(new_path);
    let in_section = |m: &Metric| match section {
        Some(name) => m.label.starts_with(&format!("{name}/")),
        None => true,
    };
    let old_metrics: Vec<Metric> = extract_metrics(&old_doc)
        .into_iter()
        .filter(in_section)
        .collect();
    let new_metrics: Vec<Metric> = extract_metrics(&new_doc)
        .into_iter()
        .filter(in_section)
        .collect();
    if let Some(name) = section {
        // An empty gate would silently pass: regressions are only counted
        // over the label intersection, so a typo'd section name OR a
        // baseline missing the section (stale / generated by a different
        // command) must both fail loudly instead.
        for (metrics, path) in [(&new_metrics, new_path), (&old_metrics, old_path)] {
            if metrics.is_empty() {
                eprintln!("section {name} matched no metrics in {path}");
                std::process::exit(2);
            }
        }
    }

    let scope = section.unwrap_or("all sections");
    println!("== bench diff: {old_path} → {new_path} ({scope}, tolerance ±{tolerance:.0}%) ==\n");
    println!(
        "{:<64} {:>12} {:>12} {:>9}",
        "metric", "old", "new", "delta"
    );

    let mut regressions = 0usize;
    let mut improvements = 0usize;
    let mut compared = 0usize;
    for new_metric in &new_metrics {
        let Some(old_metric) = old_metrics.iter().find(|m| m.label == new_metric.label) else {
            continue;
        };
        compared += 1;
        if old_metric.value == 0.0 {
            continue;
        }
        let delta_pct = (new_metric.value - old_metric.value) / old_metric.value * 100.0;
        // A positive delta is worse for latency metrics and better for
        // throughput metrics.
        let worse_pct = match new_metric.direction {
            Direction::LowerIsBetter => delta_pct,
            Direction::HigherIsBetter => -delta_pct,
        };
        let verdict = if worse_pct > tolerance {
            regressions += 1;
            "REGRESSION"
        } else if worse_pct < -tolerance {
            improvements += 1;
            "improved"
        } else {
            ""
        };
        println!(
            "{:<64} {:>12.1} {:>12.1} {:>+8.1}% {}",
            new_metric.label, old_metric.value, new_metric.value, delta_pct, verdict
        );
    }

    let only_new = new_metrics
        .iter()
        .filter(|m| !old_metrics.iter().any(|o| o.label == m.label))
        .count();
    let only_old = old_metrics
        .iter()
        .filter(|m| !new_metrics.iter().any(|n| n.label == m.label))
        .count();
    println!(
        "\n{compared} metrics compared: {regressions} regression(s), {improvements} improvement(s) \
         beyond ±{tolerance:.0}%; {only_new} only in new, {only_old} only in old"
    );
    regressions
}

fn main() {
    let opts = parse_args();

    if opts.command == "diff" {
        let [old_path, new_path] = opts.operands.as_slice() else {
            eprintln!(
                "usage: repro diff OLD.json NEW.json [--tolerance PCT] [--strict] [--section NAME]"
            );
            std::process::exit(2);
        };
        let regressions = run_diff(old_path, new_path, opts.tolerance, opts.section.as_deref());
        if opts.strict && regressions > 0 {
            std::process::exit(1);
        }
        return;
    }
    println!(
        "concurrent-contracts reproduction harness — {} threads, {} repetitions, {} strategy{}",
        opts.threads,
        opts.repetitions,
        opts.strategy,
        if opts.quick { " (quick mode)" } else { "" }
    );

    let mut blocksize: Option<Vec<(Benchmark, Vec<SweepPoint>)>> = None;
    let mut conflict: Option<Vec<(Benchmark, Vec<SweepPoint>)>> = None;
    let mut contention: Option<Vec<ContentionPoint>> = None;
    let mut micro: Option<Vec<MicroPoint>> = None;
    let mut schedule: Option<Vec<SchedulePoint>> = None;
    let mut read_heavy: Option<Vec<ReadHeavyPoint>> = None;
    let mut abort_rate: Option<Vec<(Benchmark, Vec<AbortRatePoint>)>> = None;
    let mut durability: Option<Vec<DurabilityPoint>> = None;
    let mut pipeline: Option<Vec<PipelinePoint>> = None;

    match opts.command.as_str() {
        "figure1-blocksize" => {
            blocksize = Some(print_figure1_blocksize(&opts));
        }
        "figure1-conflict" => {
            conflict = Some(print_figure1_conflict(&opts));
        }
        "table1" => {
            let bs = print_figure1_blocksize(&opts);
            let cf = print_figure1_conflict(&opts);
            print_table1(&bs, &cf);
            blocksize = Some(bs);
            conflict = Some(cf);
        }
        "appendix-b" => {
            let bs = print_figure1_blocksize(&opts);
            let cf = print_figure1_conflict(&opts);
            print_appendix_b(&bs, &cf);
            blocksize = Some(bs);
            conflict = Some(cf);
        }
        "ablation" => {
            print_ablation(&opts);
        }
        "contention" => {
            contention = Some(print_contention(&opts));
        }
        "micro" => {
            micro = Some(print_micro(&opts));
        }
        "schedule" => {
            schedule = Some(print_schedule(&opts));
        }
        "read-heavy" => {
            read_heavy = Some(print_read_heavy(&opts));
        }
        "abort-rate" => {
            abort_rate = Some(print_abort_rate(&opts));
        }
        "durability" => {
            durability = Some(print_durability(&opts));
        }
        "pipeline" => {
            pipeline = Some(print_pipeline(&opts));
        }
        "perf" => {
            micro = Some(print_micro(&opts));
            schedule = Some(print_schedule(&opts));
            read_heavy = Some(print_read_heavy(&opts));
            abort_rate = Some(print_abort_rate(&opts));
            contention = Some(print_contention(&opts));
            durability = Some(print_durability(&opts));
            pipeline = Some(print_pipeline(&opts));
        }
        "all" => {
            let bs = print_figure1_blocksize(&opts);
            let cf = print_figure1_conflict(&opts);
            print_table1(&bs, &cf);
            print_appendix_b(&bs, &cf);
            print_ablation(&opts);
            blocksize = Some(bs);
            conflict = Some(cf);
            micro = Some(print_micro(&opts));
            schedule = Some(print_schedule(&opts));
            read_heavy = Some(print_read_heavy(&opts));
            abort_rate = Some(print_abort_rate(&opts));
            contention = Some(print_contention(&opts));
            durability = Some(print_durability(&opts));
            pipeline = Some(print_pipeline(&opts));
        }
        other => {
            eprintln!("unknown command `{other}`");
            eprintln!("usage: repro [--threads N] [--reps R] [--quick] [--strategy NAME] [--json PATH] [figure1-blocksize|figure1-conflict|table1|appendix-b|ablation|contention|micro|schedule|read-heavy|abort-rate|durability|pipeline|perf|all]");
            eprintln!(
                "       repro diff OLD.json NEW.json [--tolerance PCT] [--strict] [--section NAME]"
            );
            std::process::exit(2);
        }
    }

    if let Some(path) = &opts.json_path {
        let mut sections: Vec<(&'static str, Json)> = vec![
            ("command", Json::str(opts.command.clone())),
            ("threads", Json::num(opts.threads as u32)),
            ("repetitions", Json::num(opts.repetitions as u32)),
            ("quick", Json::Bool(opts.quick)),
        ];
        if let Some(bs) = &blocksize {
            sections.push(("figure1_blocksize", sweeps_json(bs)));
        }
        if let Some(cf) = &conflict {
            sections.push(("figure1_conflict", sweeps_json(cf)));
        }
        if let Some(points) = &micro {
            sections.push(("stm_micro", micro_json(points)));
        }
        if let Some(points) = &schedule {
            sections.push(("schedule", schedule_json(points)));
        }
        if let Some(points) = &read_heavy {
            sections.push(("read_heavy", read_heavy_json(points)));
        }
        if let Some(sweeps) = &abort_rate {
            sections.push(("abort_rate", abort_rate_json(sweeps)));
        }
        if let Some(points) = &contention {
            sections.push(("contention", contention_json(points)));
        }
        if let Some(points) = &durability {
            sections.push(("durability", durability_json(points)));
        }
        if let Some(points) = &pipeline {
            sections.push(("pipeline", pipeline_json(points)));
        }
        let doc = Json::object(sections);
        match std::fs::write(path, doc.to_pretty()) {
            Ok(()) => println!("\nwrote {path}"),
            Err(err) => {
                eprintln!("failed to write {path}: {err}");
                std::process::exit(1);
            }
        }
    }
}
