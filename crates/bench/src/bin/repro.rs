//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--threads N] [--reps R] [--quick] [--json PATH] \
//!       [figure1-blocksize|figure1-conflict|table1|appendix-b|ablation|contention|all]
//! ```
//!
//! * `figure1-blocksize` — Figure 1, left column: speedup vs. block size at
//!   15% conflict, for each of the four benchmarks.
//! * `figure1-conflict` — Figure 1, right column: speedup vs. conflict
//!   percentage at 200 transactions.
//! * `table1` — Table 1: per-benchmark average speedups for the two sweeps.
//! * `appendix-b` — the same sweeps reported as mean ± stddev running time
//!   (ms) for serial, miner and validator.
//! * `ablation` — design-choice ablations not in the paper: validator
//!   thread scaling, trace-check overhead, serial re-validation.
//! * `contention` — lock-manager throughput: threads × disjoint/hot mixes,
//!   sharded manager vs. the pre-sharding global-mutex baseline.
//! * `all` (default) — everything above.
//!
//! `--quick` shrinks the sweeps (fewer points, 2 repetitions) so the whole
//! run finishes in a couple of minutes; the full run mirrors the paper's
//! 5 repetitions + 3 warm-ups.
//!
//! `--json PATH` additionally writes the run's sweep data — the Figure-1
//! block-size/conflict sweeps and the contention suite, whichever the
//! command produced (ablation output is print-only) — to `PATH` as a JSON
//! document. Committing one such file per PR (`BENCH_PR2.json`, …)
//! records the repo's perf trajectory alongside the code.

use cc_bench::contention::{contention_threads, measure_contention, Backend, ContentionPoint, Mix};
use cc_bench::json::Json;
use cc_bench::{
    average_speedups, engine, figure1_block_sizes, figure1_conflicts, measure,
    measure_serial_validation, SweepPoint, DEFAULT_THREADS, REPETITIONS,
};
use cc_core::engine::{Engine, EngineConfig, ExecutionStrategy};
use cc_workload::{Benchmark, WorkloadSpec};

#[derive(Debug, Clone)]
struct Options {
    threads: usize,
    repetitions: usize,
    quick: bool,
    command: String,
    json_path: Option<String>,
}

fn parse_args() -> Options {
    let mut options = Options {
        threads: DEFAULT_THREADS,
        repetitions: REPETITIONS,
        quick: false,
        command: "all".to_string(),
        json_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                options.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(DEFAULT_THREADS);
                if options.threads == 0 {
                    eprintln!("--threads must be at least 1");
                    std::process::exit(2);
                }
            }
            "--reps" => {
                options.repetitions = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(REPETITIONS);
            }
            "--quick" => options.quick = true,
            "--json" => match args.next() {
                Some(path) => options.json_path = Some(path),
                None => {
                    eprintln!("--json requires a file path");
                    std::process::exit(2);
                }
            },
            other if !other.starts_with("--") => options.command = other.to_string(),
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    if options.quick {
        options.repetitions = options.repetitions.min(2);
    }
    options
}

fn block_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![10, 100, 200, 400]
    } else {
        figure1_block_sizes()
    }
}

fn conflicts(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 0.3, 0.6, 1.0]
    } else {
        figure1_conflicts()
    }
}

fn sweep_blocksize_points(benchmark: Benchmark, opts: &Options) -> Vec<SweepPoint> {
    block_sizes(opts.quick)
        .into_iter()
        .map(|block_size| {
            let workload = WorkloadSpec::new(benchmark, block_size, 0.15).generate();
            SweepPoint {
                block_size,
                conflict: 0.15,
                measurement: measure(&workload, opts.threads, opts.repetitions),
            }
        })
        .collect()
}

fn sweep_conflict_points(benchmark: Benchmark, opts: &Options) -> Vec<SweepPoint> {
    conflicts(opts.quick)
        .into_iter()
        .map(|conflict| {
            let workload = WorkloadSpec::new(benchmark, 200, conflict).generate();
            SweepPoint {
                block_size: 200,
                conflict,
                measurement: measure(&workload, opts.threads, opts.repetitions),
            }
        })
        .collect()
}

fn print_figure1_blocksize(opts: &Options) -> Vec<(Benchmark, Vec<SweepPoint>)> {
    println!(
        "\n== Figure 1 (left column): speedup vs. block size, 15% conflict, {} threads ==",
        opts.threads
    );
    let mut all = Vec::new();
    for benchmark in Benchmark::ALL {
        println!("\n-- {benchmark} --");
        println!(
            "{:>8} {:>14} {:>18}",
            "txns", "miner speedup", "validator speedup"
        );
        let points = sweep_blocksize_points(benchmark, opts);
        for p in &points {
            println!(
                "{:>8} {:>14.2} {:>18.2}",
                p.block_size,
                p.measurement.miner_speedup(),
                p.measurement.validator_speedup()
            );
        }
        all.push((benchmark, points));
    }
    all
}

fn print_figure1_conflict(opts: &Options) -> Vec<(Benchmark, Vec<SweepPoint>)> {
    println!(
        "\n== Figure 1 (right column): speedup vs. conflict %, 200 transactions, {} threads ==",
        opts.threads
    );
    let mut all = Vec::new();
    for benchmark in Benchmark::ALL {
        println!("\n-- {benchmark} --");
        println!(
            "{:>10} {:>14} {:>18}",
            "conflict", "miner speedup", "validator speedup"
        );
        let points = sweep_conflict_points(benchmark, opts);
        for p in &points {
            println!(
                "{:>9.0}% {:>14.2} {:>18.2}",
                p.conflict * 100.0,
                p.measurement.miner_speedup(),
                p.measurement.validator_speedup()
            );
        }
        all.push((benchmark, points));
    }
    all
}

fn print_table1(
    blocksize: &[(Benchmark, Vec<SweepPoint>)],
    conflict: &[(Benchmark, Vec<SweepPoint>)],
) {
    println!("\n== Table 1: average speedups per benchmark ==");
    println!(
        "{:>15} {:>16} {:>16} {:>20} {:>20}",
        "benchmark",
        "miner(conflict)",
        "miner(blocksize)",
        "validator(conflict)",
        "validator(blocksize)"
    );
    let mut overall_miner = Vec::new();
    let mut overall_validator = Vec::new();
    for (benchmark, bs_points) in blocksize {
        let conflict_points = conflict
            .iter()
            .find(|(b, _)| b == benchmark)
            .map(|(_, p)| p.as_slice())
            .unwrap_or(&[]);
        let (miner_conf, val_conf) = average_speedups(conflict_points);
        let (miner_bs, val_bs) = average_speedups(bs_points);
        println!(
            "{:>15} {:>15.2}x {:>15.2}x {:>19.2}x {:>19.2}x",
            benchmark.to_string(),
            miner_conf,
            miner_bs,
            val_conf,
            val_bs
        );
        overall_miner.extend([miner_conf, miner_bs]);
        overall_validator.extend([val_conf, val_bs]);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nOverall average speedup: miner {:.2}x, validator {:.2}x (paper: 1.33x and 1.69x with 3 threads)",
        avg(&overall_miner),
        avg(&overall_validator)
    );
}

fn print_appendix_b(
    blocksize: &[(Benchmark, Vec<SweepPoint>)],
    conflict: &[(Benchmark, Vec<SweepPoint>)],
) {
    println!("\n== Appendix B: mean ± stddev running time (ms) ==");
    for (label, sweeps) in [
        ("block-size sweep (15% conflict)", blocksize),
        ("conflict sweep (200 txns)", conflict),
    ] {
        println!("\n-- {label} --");
        for (benchmark, points) in sweeps {
            println!("\n{benchmark}");
            println!(
                "{:>10} {:>10} {:>22} {:>22} {:>22}",
                "txns", "conflict", "serial (ms)", "miner (ms)", "validator (ms)"
            );
            for p in points {
                println!(
                    "{:>10} {:>9.0}% {:>13.2} ± {:>6.2} {:>13.2} ± {:>6.2} {:>13.2} ± {:>6.2}",
                    p.block_size,
                    p.conflict * 100.0,
                    p.measurement.serial.mean_ms(),
                    p.measurement.serial.stddev_ms(),
                    p.measurement.miner.mean_ms(),
                    p.measurement.miner.stddev_ms(),
                    p.measurement.validator.mean_ms(),
                    p.measurement.validator.stddev_ms(),
                );
            }
        }
    }
}

fn print_ablation(opts: &Options) {
    println!("\n== Ablation (not in the paper's tables) ==");
    let workload = WorkloadSpec::new(Benchmark::Mixed, 200, 0.15).generate();
    let base = measure(&workload, opts.threads, opts.repetitions);
    println!(
        "Mixed, 200 txns, 15% conflict, {} threads: serial {:.2} ms, parallel miner {:.2} ms, fork-join validator {:.2} ms",
        opts.threads,
        base.serial.mean_ms(),
        base.miner.mean_ms(),
        base.validator.mean_ms()
    );

    // (a) Serial re-validation (what validators do today).
    let serial_validation = measure_serial_validation(&workload, opts.threads, opts.repetitions);
    println!(
        "  serial re-validation: {:.2} ms ({:.2}x vs fork-join validator)",
        serial_validation.mean_ms(),
        serial_validation.mean_ms() / base.validator.mean_ms()
    );

    // (b) Validator thread scaling (the fork-join program does not need to
    // match the miner's parallelism).
    let reference = engine(ExecutionStrategy::SpeculativeStm, opts.threads)
        .mine(&workload.build_world(), workload.transactions())
        .expect("reference block");
    let time_validator = |v: &Engine| {
        let mut samples = Vec::new();
        for _ in 0..opts.repetitions.max(1) {
            let world = workload.build_world();
            let start = std::time::Instant::now();
            v.validate(&world, &reference.block).expect("valid");
            samples.push(start.elapsed());
        }
        cc_bench::Timing::from_samples(&samples)
    };
    println!("  validator thread scaling (same block):");
    for threads in [1usize, 2, 3, 4, 6, 8] {
        let validator = engine(ExecutionStrategy::SpeculativeStm, threads);
        let timing = time_validator(&validator);
        println!("    {threads} thread(s): {:.2} ms", timing.mean_ms());
    }

    // (c) Trace-check overhead.
    let with_checks = engine(ExecutionStrategy::SpeculativeStm, opts.threads);
    let without_checks = EngineConfig::new()
        .threads(opts.threads)
        .check_traces(false)
        .build()
        .expect("valid config");
    let checked = time_validator(&with_checks);
    let unchecked = time_validator(&without_checks);
    println!(
        "  trace/race checking overhead: {:.2} ms with checks vs {:.2} ms without ({:.1}% overhead)",
        checked.mean_ms(),
        unchecked.mean_ms(),
        (checked.mean_ms() / unchecked.mean_ms() - 1.0) * 100.0
    );
}

fn contention_ops(quick: bool) -> usize {
    if quick {
        2_000
    } else {
        10_000
    }
}

fn print_contention(opts: &Options) -> Vec<ContentionPoint> {
    println!("\n== Lock-manager contention: committed lock txns/s ==");
    let ops = contention_ops(opts.quick);
    let mut points = Vec::new();
    for mix in [Mix::Disjoint, Mix::Hot] {
        println!("\n-- {mix} mix --");
        println!(
            "{:>8} {:>16} {:>16} {:>16}",
            "threads",
            Backend::Global.to_string(),
            Backend::Sharded1.to_string(),
            Backend::Sharded.to_string()
        );
        for &threads in &contention_threads() {
            let row: Vec<ContentionPoint> = [Backend::Global, Backend::Sharded1, Backend::Sharded]
                .into_iter()
                .map(|b| measure_contention(b, threads, ops, mix))
                .collect();
            println!(
                "{:>8} {:>16.0} {:>16.0} {:>16.0}",
                threads, row[0].ops_per_sec, row[1].ops_per_sec, row[2].ops_per_sec
            );
            points.extend(row);
        }
    }
    let find = |mix: Mix, backend: Backend, threads: usize| {
        points
            .iter()
            .find(|p| p.mix == mix && p.backend == backend && p.threads == threads)
            .map(|p| p.ops_per_sec)
    };
    if let (Some(global), Some(sharded)) = (
        find(Mix::Disjoint, Backend::Global, 8),
        find(Mix::Disjoint, Backend::Sharded, 8),
    ) {
        println!(
            "\n8-thread disjoint workload: sharded manager {:.2}x the global-mutex baseline",
            sharded / global
        );
    }
    points
}

fn timing_json(t: &cc_bench::Timing) -> Json {
    Json::object([
        ("mean_ms", Json::num(t.mean_ms())),
        ("stddev_ms", Json::num(t.stddev_ms())),
    ])
}

fn sweeps_json(sweeps: &[(Benchmark, Vec<SweepPoint>)]) -> Json {
    Json::Array(
        sweeps
            .iter()
            .map(|(benchmark, points)| {
                Json::object([
                    ("benchmark", Json::str(benchmark.to_string())),
                    (
                        "points",
                        Json::Array(
                            points
                                .iter()
                                .map(|p| {
                                    Json::object([
                                        ("block_size", Json::num(p.block_size as u32)),
                                        ("conflict", Json::num(p.conflict)),
                                        ("serial", timing_json(&p.measurement.serial)),
                                        ("miner", timing_json(&p.measurement.miner)),
                                        ("validator", timing_json(&p.measurement.validator)),
                                        ("miner_speedup", Json::num(p.measurement.miner_speedup())),
                                        (
                                            "validator_speedup",
                                            Json::num(p.measurement.validator_speedup()),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

fn contention_json(points: &[ContentionPoint]) -> Json {
    Json::Array(
        points
            .iter()
            .map(|p| {
                Json::object([
                    ("mix", Json::str(p.mix.to_string())),
                    ("backend", Json::str(p.backend.to_string())),
                    ("threads", Json::num(p.threads as u32)),
                    ("txns_per_sec", Json::num(p.ops_per_sec)),
                ])
            })
            .collect(),
    )
}

fn main() {
    let opts = parse_args();
    println!(
        "concurrent-contracts reproduction harness — {} threads, {} repetitions{}",
        opts.threads,
        opts.repetitions,
        if opts.quick { " (quick mode)" } else { "" }
    );

    let mut blocksize: Option<Vec<(Benchmark, Vec<SweepPoint>)>> = None;
    let mut conflict: Option<Vec<(Benchmark, Vec<SweepPoint>)>> = None;
    let mut contention: Option<Vec<ContentionPoint>> = None;

    match opts.command.as_str() {
        "figure1-blocksize" => {
            blocksize = Some(print_figure1_blocksize(&opts));
        }
        "figure1-conflict" => {
            conflict = Some(print_figure1_conflict(&opts));
        }
        "table1" => {
            let bs = print_figure1_blocksize(&opts);
            let cf = print_figure1_conflict(&opts);
            print_table1(&bs, &cf);
            blocksize = Some(bs);
            conflict = Some(cf);
        }
        "appendix-b" => {
            let bs = print_figure1_blocksize(&opts);
            let cf = print_figure1_conflict(&opts);
            print_appendix_b(&bs, &cf);
            blocksize = Some(bs);
            conflict = Some(cf);
        }
        "ablation" => {
            print_ablation(&opts);
        }
        "contention" => {
            contention = Some(print_contention(&opts));
        }
        "all" => {
            let bs = print_figure1_blocksize(&opts);
            let cf = print_figure1_conflict(&opts);
            print_table1(&bs, &cf);
            print_appendix_b(&bs, &cf);
            print_ablation(&opts);
            blocksize = Some(bs);
            conflict = Some(cf);
            contention = Some(print_contention(&opts));
        }
        other => {
            eprintln!("unknown command `{other}`");
            eprintln!("usage: repro [--threads N] [--reps R] [--quick] [--json PATH] [figure1-blocksize|figure1-conflict|table1|appendix-b|ablation|contention|all]");
            std::process::exit(2);
        }
    }

    if let Some(path) = &opts.json_path {
        let mut sections: Vec<(&'static str, Json)> = vec![
            ("command", Json::str(opts.command.clone())),
            ("threads", Json::num(opts.threads as u32)),
            ("repetitions", Json::num(opts.repetitions as u32)),
            ("quick", Json::Bool(opts.quick)),
        ];
        if let Some(bs) = &blocksize {
            sections.push(("figure1_blocksize", sweeps_json(bs)));
        }
        if let Some(cf) = &conflict {
            sections.push(("figure1_conflict", sweeps_json(cf)));
        }
        if let Some(points) = &contention {
            sections.push(("contention", contention_json(points)));
        }
        let doc = Json::object(sections);
        match std::fs::write(path, doc.to_pretty()) {
            Ok(()) => println!("\nwrote {path}"),
            Err(err) => {
                eprintln!("failed to write {path}: {err}");
                std::process::exit(1);
            }
        }
    }
}
