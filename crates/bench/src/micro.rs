//! Per-operation microbenchmarks of the boosted-storage hot path.
//!
//! Where the contention harness measures the lock manager's raw
//! synchronization throughput, this module measures what one **storage
//! operation** costs end to end — acquire, mutate, log the inverse,
//! commit — which is the constant factor the typed undo log and the
//! single-pass mutators attack. The `repro micro` command prints these
//! numbers and `repro --json` records them in the `stm_micro` section of
//! the perf-trajectory files, so per-op regressions are diffable across
//! PRs (`repro diff OLD.json NEW.json`).
//!
//! One case, `map-insert-boxed-baseline`, re-creates the pre-typed-undo
//! insert path (separate read of the prior value, a cloned `Option<V>`,
//! and a boxed `FnOnce` inverse closure) against the same runtime, so the
//! committed numbers carry their own before/after comparison.

use cc_primitives::fnv::fnv1a_of;
use cc_primitives::fx::ShardedRawTable;
use cc_stm::{BoostedCell, BoostedCounterMap, BoostedMap, LockMode, LockSpace, Stm, Transaction};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// One measured microbenchmark case.
#[derive(Debug, Clone)]
pub struct MicroPoint {
    /// Stable case name (the key used by `repro diff`).
    pub name: &'static str,
    /// Mean cost of one transaction of this case, in nanoseconds.
    pub ns_per_op: f64,
}

/// Number of timed passes per case; the **minimum** is reported, which
/// filters scheduler and frequency noise (anything above the minimum is
/// interference, not the code under test) — important on the single-core
/// CI container.
const PASSES: usize = 5;

/// Times `op` over `ops` iterations per pass (after one warm-up pass of
/// `ops / 8`) and returns the best-of-[`PASSES`] nanoseconds per
/// iteration.
fn time_case(ops: usize, mut op: impl FnMut(usize)) -> f64 {
    for i in 0..(ops / 8).max(1) {
        op(i);
    }
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let start = Instant::now();
        for i in 0..ops {
            op(i);
        }
        best = best.min(start.elapsed().as_nanos() as f64 / ops as f64);
    }
    best
}

/// Storage operations per transaction in the mutation-path cases: real
/// contract transactions perform several operations, and batching makes
/// the per-operation (undo-log) cost visible over the fixed
/// begin/acquire/commit overhead of the transaction itself.
const OPS_PER_TXN: u64 = 16;

/// A faithful copy of the **pre-typed-undo-log** `BoostedMap::insert`
/// body: read-modify clone of the previous value plus a boxed inverse
/// closure. Kept as the baseline the committed numbers are compared
/// against.
fn boxed_baseline_insert(
    txn: &Transaction,
    space: LockSpace,
    inner: &Arc<RwLock<HashMap<u64, u64>>>,
    key: u64,
    value: u64,
) {
    txn.acquire(space.lock_for(&key), LockMode::Exclusive)
        .expect("uncontended acquire");
    let previous = inner.write().insert(key, value);
    let inner = Arc::clone(inner);
    let undo_prev = previous;
    txn.log_undo(move || {
        let mut map = inner.write();
        match undo_prev {
            Some(v) => {
                map.insert(key, v);
            }
            None => {
                map.remove(&key);
            }
        }
    });
}

/// Runs every microbenchmark case with `ops` measured iterations each.
pub fn run_micro(ops: usize) -> Vec<MicroPoint> {
    let ops = ops.max(64);
    let mut points = Vec::new();

    // -- mutation path: typed undo log, single write pass ----------------
    {
        let stm = Stm::new();
        let map: BoostedMap<u64, u64> = BoostedMap::new("micro.map.insert");
        let ns = time_case(ops / OPS_PER_TXN as usize, |i| {
            let base = (i as u64 * OPS_PER_TXN) % 1024;
            stm.run(|txn| {
                for j in 0..OPS_PER_TXN {
                    map.insert(txn, (base + j) % 1024, j)?;
                }
                Ok(())
            })
            .unwrap();
        }) / OPS_PER_TXN as f64;
        points.push(MicroPoint {
            name: "map-insert-commit",
            ns_per_op: ns,
        });
    }

    // -- mutation path: the pre-PR boxed-closure baseline ----------------
    {
        let stm = Stm::new();
        let space = LockSpace::new("micro.map.boxed");
        let inner: Arc<RwLock<HashMap<u64, u64>>> = Arc::new(RwLock::new(HashMap::new()));
        let ns = time_case(ops / OPS_PER_TXN as usize, |i| {
            let base = (i as u64 * OPS_PER_TXN) % 1024;
            stm.run(|txn| {
                for j in 0..OPS_PER_TXN {
                    boxed_baseline_insert(txn, space, &inner, (base + j) % 1024, j);
                }
                Ok(())
            })
            .unwrap();
        }) / OPS_PER_TXN as f64;
        points.push(MicroPoint {
            name: "map-insert-boxed-baseline",
            ns_per_op: ns,
        });
    }

    // -- read path: shared-mode get --------------------------------------
    // Batched at [`OPS_PER_TXN`] like the mutation cases, so the read and
    // write paths amortize the fixed begin/commit cost identically and
    // their ns/op are directly comparable (pre-PR-5 this case ran one get
    // per transaction, which is why shared-mode reads *appeared* slower
    // than exclusive inserts).
    {
        let stm = Stm::new();
        let map: BoostedMap<u64, u64> = BoostedMap::new("micro.map.get");
        for i in 0..1024u64 {
            map.seed(i, i);
        }
        let ns = time_case(ops / OPS_PER_TXN as usize, |i| {
            let base = (i as u64 * OPS_PER_TXN) % 1024;
            stm.run(|txn| {
                for j in 0..OPS_PER_TXN {
                    map.get(txn, &((base + j) % 1024))?;
                }
                Ok(())
            })
            .unwrap();
        }) / OPS_PER_TXN as f64;
        points.push(MicroPoint {
            name: "map-get-commit",
            ns_per_op: ns,
        });
    }

    // -- read path: borrowing get_with (no V: Clone per read) ------------
    {
        let stm = Stm::new();
        let map: BoostedMap<u64, u64> = BoostedMap::new("micro.map.getwith");
        for i in 0..1024u64 {
            map.seed(i, i);
        }
        let ns = time_case(ops / OPS_PER_TXN as usize, |i| {
            let base = (i as u64 * OPS_PER_TXN) % 1024;
            stm.run(|txn| {
                for j in 0..OPS_PER_TXN {
                    map.get_with(txn, &((base + j) % 1024), |v| v.is_some())?;
                }
                Ok(())
            })
            .unwrap();
        }) / OPS_PER_TXN as f64;
        points.push(MicroPoint {
            name: "map-get-with-commit",
            ns_per_op: ns,
        });
    }

    // -- read path: whole-transaction cost of a single get ---------------
    // One operation per transaction: dominated by the fixed
    // begin/acquire/release/commit machinery, tracked so per-transaction
    // overhead regressions stay visible.
    {
        let stm = Stm::new();
        let map: BoostedMap<u64, u64> = BoostedMap::new("micro.map.get1");
        for i in 0..1024u64 {
            map.seed(i, i);
        }
        let ns = time_case(ops, |i| {
            let key = (i as u64) % 1024;
            stm.run(|txn| map.get(txn, &key)).unwrap();
        });
        points.push(MicroPoint {
            name: "map-get-single-commit",
            ns_per_op: ns,
        });
    }

    // -- fixed cost: an empty transaction --------------------------------
    {
        let stm = Stm::new();
        let ns = time_case(ops, |_| {
            stm.run(|_txn| Ok(())).unwrap();
        });
        points.push(MicroPoint {
            name: "txn-begin-commit",
            ns_per_op: ns,
        });
    }

    // -- fixed cost: an empty transaction from a pooled arena ------------
    // Same shape as `txn-begin-commit`, but the block-scoped pool recycles
    // one transaction's undo sinks, lock vector and trace buffer across
    // every iteration instead of allocating fresh ones.
    {
        let stm = Stm::new();
        let scope = stm.begin_block();
        let ns = time_case(ops, |_| {
            scope.run(|_txn| Ok(())).unwrap();
        });
        points.push(MicroPoint {
            name: "txn-begin-commit-pooled",
            ns_per_op: ns,
        });
    }

    // -- raw backing-store read: the concrete cost under the abstract lock
    // What one boosted `get` pays *below* the lock layer: shard selection,
    // the word-sized latch, and the open-addressed probe. The gap between
    // this and `map-get-commit` is pure transaction machinery.
    {
        let table: ShardedRawTable<u64, u64> = ShardedRawTable::new();
        for i in 0..1024u64 {
            table.with(fnv1a_of(&i), |map| map.insert_hashed(fnv1a_of(&i), i, i));
        }
        let ns = time_case(ops, |i| {
            let key = (i as u64) % 1024;
            let h = fnv1a_of(&key);
            black_box(table.with(h, |map| map.get_hashed(h, &key).copied()));
        });
        points.push(MicroPoint {
            name: "map-get-raw",
            ns_per_op: ns,
        });
    }

    // -- upgrade path: same-key get → insert (Shared → Exclusive) --------
    // The shape contracts overwhelmingly produce (read a slot, then write
    // it); exercises the in-place lock upgrade and the transaction's
    // one-slot last-lock cache.
    {
        let stm = Stm::new();
        let map: BoostedMap<u64, u64> = BoostedMap::new("micro.map.upgrade");
        for i in 0..1024u64 {
            map.seed(i, i);
        }
        let ns = time_case(ops, |i| {
            let key = (i as u64) % 1024;
            stm.run(|txn| {
                let current = map.get(txn, &key)?.unwrap_or(0);
                map.insert(txn, key, current + 1)
            })
            .unwrap();
        });
        points.push(MicroPoint {
            name: "txn-get-then-insert",
            ns_per_op: ns,
        });
    }

    // -- read-modify-write: single-pass update_or ------------------------
    {
        let stm = Stm::new();
        let map: BoostedMap<u64, u64> = BoostedMap::new("micro.map.update");
        let ns = time_case(ops, |i| {
            let key = (i as u64) % 256;
            stm.run(|txn| map.update_or(txn, key, 0, |v| *v += 1))
                .unwrap();
        });
        points.push(MicroPoint {
            name: "map-update-or-commit",
            ns_per_op: ns,
        });
    }

    // -- additive tally add ----------------------------------------------
    {
        let stm = Stm::new();
        let counter: BoostedCounterMap<u64> = BoostedCounterMap::new("micro.counter.add");
        let ns = time_case(ops, |i| {
            let key = (i as u64) % 64;
            stm.run(|txn| counter.add(txn, key, 1)).unwrap();
        });
        points.push(MicroPoint {
            name: "counter-add-commit",
            ns_per_op: ns,
        });
    }

    // -- scalar cell write (prior value moves into the undo log) ---------
    {
        let stm = Stm::new();
        let cell: BoostedCell<u64> = BoostedCell::new("micro.cell.set", 0);
        let ns = time_case(ops, |i| {
            stm.run(|txn| cell.set(txn, i as u64)).unwrap();
        });
        points.push(MicroPoint {
            name: "cell-set-commit",
            ns_per_op: ns,
        });
    }

    // -- the read/write-ratio transaction the Shared mode targets --------
    {
        let stm = Stm::new();
        let map: BoostedMap<u64, u64> = BoostedMap::new("micro.map.mix");
        for i in 0..1024u64 {
            map.seed(i, i);
        }
        let ns = time_case(ops, |i| {
            let base = (i as u64) % 512;
            stm.run(|txn| {
                for j in 0..8 {
                    map.get(txn, &((base + j * 61) % 1024))?;
                }
                map.insert(txn, base, base)
            })
            .unwrap();
        });
        points.push(MicroPoint {
            name: "txn-8-reads-1-write",
            ns_per_op: ns,
        });
    }

    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_suite_produces_positive_timings() {
        let points = run_micro(64);
        assert_eq!(points.len(), 13);
        for p in &points {
            assert!(p.ns_per_op > 0.0, "{} measured nothing", p.name);
        }
        // Case names are unique (repro diff matches on them).
        let mut names: Vec<_> = points.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), points.len());
    }
}
