//! Durability-cost benchmark: what the write-ahead log adds to block
//! commit latency.
//!
//! The same block of counter transactions is mined repeatedly on a
//! durable node under each [`DurabilityMode`]: `Off` (the in-memory
//! baseline the strict `stm_micro` CI gate protects), `Buffered` (one
//! file write per sealed block, no fsync) and `Fsync` (one
//! `fdatasync` per sealed block — the group-commit cost the WAL design
//! amortizes across the whole block). `repro durability` prints the
//! numbers and `repro --json` records them in the `durability` section,
//! so regressions in the seal path are diffable across PRs.

use crate::Timing;
use cc_core::engine::{Engine, ExecutionStrategy};
use cc_core::node::{DurabilityConfig, Node};
use cc_ledger::wal::DurabilityMode;
use cc_ledger::Transaction;
use cc_vm::testing::CounterContract;
use cc_vm::{Address, ArgValue, CallData, World};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One measured durability case.
#[derive(Debug, Clone)]
pub struct DurabilityPoint {
    /// Stable case name (the key used by `repro diff`).
    pub name: &'static str,
    /// Mean wall-clock cost of mining + persisting one block, in
    /// milliseconds.
    pub ms_per_block: f64,
}

/// Distinguishes concurrent benchmark runs' scratch directories.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "cc-bench-durability-{}-{}-{tag}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    dir
}

fn counter_world(address: Address) -> World {
    let world = World::new();
    world.deploy(Arc::new(CounterContract::new(address)));
    world
}

fn block_txs(address: Address, base: u64, n: u64) -> Vec<Transaction> {
    (0..n)
        .map(|i| {
            Transaction::new(
                base + i,
                Address::from_index(i),
                address,
                CallData::new("increment", vec![ArgValue::Uint(1)]),
                1_000_000,
            )
        })
        .collect()
}

/// Mines `blocks` blocks of `block_size` counter transactions on a node
/// configured with `mode` and returns the mean per-block wall time. Each
/// repetition uses a fresh node and a fresh scratch directory.
fn time_mode(
    engine: &Engine,
    mode: DurabilityMode,
    blocks: u64,
    block_size: u64,
    repetitions: usize,
) -> Timing {
    let address = Address::from_name("bench.durability.counter");
    let mut samples = Vec::new();
    // One warm-up repetition plus the measured ones.
    for rep in 0..repetitions.max(1) + 1 {
        let dir = scratch_dir("rep");
        // Snapshots are deliberately out of cadence (interval > blocks):
        // this case isolates the per-block WAL seal cost.
        let config = DurabilityConfig::new(&dir, mode).snapshot_interval(blocks + 1);
        let mut node = Node::builder()
            .world(counter_world(address))
            .engine(engine.clone())
            .durability(config)
            .build()
            .expect("durable bench node");
        let start = Instant::now();
        for b in 0..blocks {
            node.mine_and_append(block_txs(address, b * block_size, block_size))
                .expect("bench block mines");
        }
        let elapsed = start.elapsed();
        drop(node);
        std::fs::remove_dir_all(&dir).ok();
        if rep > 0 {
            samples.push(elapsed / u32::try_from(blocks).expect("block count fits u32"));
        }
    }
    Timing::from_samples(&samples)
}

/// Runs the durability sweep: per-block commit latency under each mode.
pub fn run_durability(
    blocks: u64,
    block_size: u64,
    threads: usize,
    repetitions: usize,
) -> Vec<DurabilityPoint> {
    let engine = crate::engine(ExecutionStrategy::SpeculativeStm, threads);
    [
        ("block-commit-off", DurabilityMode::Off),
        ("block-commit-buffered", DurabilityMode::Buffered),
        ("block-commit-fsync", DurabilityMode::Fsync),
    ]
    .into_iter()
    .map(|(name, mode)| DurabilityPoint {
        name,
        ms_per_block: time_mode(&engine, mode, blocks, block_size, repetitions).mean_ms(),
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_sweep_measures_all_three_modes() {
        let points = run_durability(2, 4, 2, 1);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.ms_per_block > 0.0, "{} measured nothing", p.name);
        }
        let mut names: Vec<_> = points.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 3, "case names must be unique for repro diff");
    }
}
