//! A minimal JSON document builder **and parser** for the perf-trajectory
//! files (`BENCH_*.json`) the `repro --json` mode writes and the
//! `repro diff` mode reads back.
//!
//! The build environment vendors no serde, and the values involved are a
//! handful of nested objects of numbers and strings — a tiny tree type,
//! a pretty printer and a recursive-descent parser cover it.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (serialized via Rust's shortest-roundtrip float
    /// formatting; NaN/infinity fall back to `null` per JSON's rules).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Parses a JSON document (the subset this module writes: no
    /// scientific notation is *produced*, but the parser accepts it).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the byte offset of the
    /// first syntax error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            at: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.at != parser.bytes.len() {
            return Err(format!("trailing content at byte {}", parser.at));
        }
        Ok(value)
    }

    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Recursive-descent JSON parser over raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.at))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(literal.as_bytes()) {
            self.at += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.at)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.at += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.at]).expect("number bytes are ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::object([
            ("name", Json::str("stm_contention")),
            ("quick", Json::Bool(true)),
            ("threads", Json::num(8u32)),
            (
                "points",
                Json::Array(vec![Json::object([("ops", Json::num(1234.5))]), Json::Null]),
            ),
            ("empty", Json::Array(vec![])),
        ]);
        let s = doc.to_pretty();
        assert!(s.contains("\"name\": \"stm_contention\""));
        assert!(s.contains("\"threads\": 8"));
        assert!(s.contains("\"ops\": 1234.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num(42u32).to_pretty(), "42\n");
        assert_eq!(Json::num(0.25).to_pretty(), "0.25\n");
        assert_eq!(Json::Num(f64::NAN).to_pretty(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::str("a\"b\\c\nd").to_pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn parse_roundtrips_written_documents() {
        let doc = Json::object([
            ("name", Json::str("a \"quoted\" name\nwith lines")),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
            ("n", Json::num(12.5)),
            ("whole", Json::num(42u32)),
            (
                "nested",
                Json::Array(vec![
                    Json::object([("x", Json::num(-1.25))]),
                    Json::Array(vec![]),
                    Json::Object(vec![]),
                ]),
            ),
        ]);
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).expect("parses back");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = Json::parse(r#"{"a": {"b": [1, 2.5, "x"]}, "s": "hi"}"#).unwrap();
        let items = doc.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(items.as_array().unwrap().len(), 3);
        assert_eq!(items.as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.as_f64(), None);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, ]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_accepts_escapes_and_exponents() {
        let doc = Json::parse(r#"{"u": "A\t", "e": 1.5e3}"#).unwrap();
        assert_eq!(doc.get("u").unwrap().as_str(), Some("A\t"));
        assert_eq!(doc.get("e").unwrap().as_f64(), Some(1500.0));
    }
}
