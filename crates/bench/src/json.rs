//! A minimal JSON document builder for the perf-trajectory files
//! (`BENCH_*.json`) the `repro --json` mode writes.
//!
//! The build environment vendors no serde, and the values involved are a
//! handful of nested objects of numbers and strings — a tiny tree type
//! plus a pretty printer covers it. Writing is supported; parsing is not
//! needed and not provided.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (serialized via Rust's shortest-roundtrip float
    /// formatting; NaN/infinity fall back to `null` per JSON's rules).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::object([
            ("name", Json::str("stm_contention")),
            ("quick", Json::Bool(true)),
            ("threads", Json::num(8u32)),
            (
                "points",
                Json::Array(vec![Json::object([("ops", Json::num(1234.5))]), Json::Null]),
            ),
            ("empty", Json::Array(vec![])),
        ]);
        let s = doc.to_pretty();
        assert!(s.contains("\"name\": \"stm_contention\""));
        assert!(s.contains("\"threads\": 8"));
        assert!(s.contains("\"ops\": 1234.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num(42u32).to_pretty(), "42\n");
        assert_eq!(Json::num(0.25).to_pretty(), "0.25\n");
        assert_eq!(Json::Num(f64::NAN).to_pretty(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::str("a\"b\\c\nd").to_pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }
}
