//! Microbenchmarks of the schedule pipeline itself.
//!
//! Schedules are consensus data: the miner builds the happens-before
//! graph, every validator rebuilds it from the published metadata, and the
//! metadata bytes travel inside the block. This module measures the three
//! per-op costs the transitively-reduced CSR pipeline attacks — **graph
//! build time**, **published edge count** and **encoded metadata size** —
//! on four synthetic block shapes, from lock profiles generated directly
//! (no contract execution, so the numbers isolate the schedule pipeline).
//!
//! The shapes:
//!
//! * `chain` — one hot lock held exclusively by every transaction: the
//!   worst case the reduction targets (h−1 edges instead of h(h−1)/2).
//! * `antichain` — every transaction touches only its own lock: the
//!   no-conflict floor (0 edges; measures pure build overhead).
//! * `hot-key` — one hot lock, mostly shared readers with periodic
//!   exclusive writers: writer→readers→writer fans.
//! * `mixed-mode` — several locks, each transaction touching a few in
//!   deterministic pseudo-random shared/additive/exclusive modes.
//!
//! `repro schedule` prints the table and `repro --json` records it in the
//! `schedule` section of the perf-trajectory files (`BENCH_PR*.json`), so
//! `repro diff` flags regressions in any of the three metrics. The shapes
//! and sizes are identical in `--quick` mode (only the number of timing
//! passes shrinks) so quick CI runs diff cleanly against committed full
//! runs.

use cc_core::HappensBeforeGraph;
use cc_primitives::fx::FxHashSet;
use cc_stm::{LockMode, LockProfile, LockSpace, ProfileEntry};
use std::time::Instant;

/// One measured schedule-pipeline case.
#[derive(Debug, Clone)]
pub struct SchedulePoint {
    /// Stable shape name (the key used by `repro diff`).
    pub shape: &'static str,
    /// Transactions in the synthetic block.
    pub txns: usize,
    /// Best-of-passes wall time to build the happens-before graph from
    /// the block's profiles, in microseconds.
    pub build_us: f64,
    /// Edges the built graph publishes.
    pub edges: usize,
    /// Edges the pre-reduction all-ordered-pairs construction would have
    /// published (context for the reduction factor; not diffed).
    pub all_pairs_edges: usize,
    /// Critical path of the built graph.
    pub critical_path: usize,
    /// Canonical encoded size of the published [`ScheduleMetadata`],
    /// in bytes.
    ///
    /// [`ScheduleMetadata`]: cc_ledger::ScheduleMetadata
    pub metadata_bytes: usize,
}

/// Transactions per synthetic block. Kept identical between quick and
/// full runs so `repro diff` labels always match.
pub const SCHEDULE_TXNS: usize = 512;

/// A tiny deterministic generator (SplitMix64), so profile shapes are
/// reproducible without a `rand` dependency. Shared with the
/// schedule-reduction property tests, which seed it from proptest-drawn
/// values.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// The next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// `h` exclusive holders of one hot lock — the reduction's headline case.
fn chain_profiles(n: usize) -> Vec<LockProfile> {
    let hot = LockSpace::new("sched.chain.hot").whole();
    (0..n)
        .map(|i| {
            LockProfile::new(vec![ProfileEntry {
                lock: hot,
                mode: LockMode::Exclusive,
                counter: i as u64 + 1,
            }])
        })
        .collect()
}

/// Every transaction touches only its own lock: zero edges.
fn antichain_profiles(n: usize) -> Vec<LockProfile> {
    let space = LockSpace::new("sched.antichain");
    (0..n)
        .map(|i| {
            LockProfile::new(vec![ProfileEntry {
                lock: space.lock_for(&(i as u64)),
                mode: LockMode::Exclusive,
                counter: 1,
            }])
        })
        .collect()
}

/// One hot lock, an exclusive writer every 16 transactions, shared
/// readers in between; each transaction also touches a private lock.
fn hot_key_profiles(n: usize) -> Vec<LockProfile> {
    let hot = LockSpace::new("sched.hotkey.hot").whole();
    let private = LockSpace::new("sched.hotkey.private");
    (0..n)
        .map(|i| {
            let mode = if i % 16 == 0 {
                LockMode::Exclusive
            } else {
                LockMode::Shared
            };
            LockProfile::new(vec![
                ProfileEntry {
                    lock: hot,
                    mode,
                    counter: i as u64 + 1,
                },
                ProfileEntry {
                    lock: private.lock_for(&(i as u64)),
                    mode: LockMode::Exclusive,
                    counter: 1,
                },
            ])
        })
        .collect()
}

/// 32 locks; each transaction touches three of them in pseudo-random
/// shared/additive/exclusive modes. Per-lock counters are assigned in
/// transaction order (one global commit order), which is what an actual
/// two-phase-locked execution produces, so the result is acyclic.
fn mixed_mode_profiles(n: usize) -> Vec<LockProfile> {
    const LOCKS: u64 = 32;
    let space = LockSpace::new("sched.mixed");
    let mut counters = vec![0u64; LOCKS as usize];
    let mut gen = SplitMix64(0x5eed);
    (0..n)
        .map(|_| {
            let mut entries = Vec::with_capacity(3);
            let mut used = [u64::MAX; 3];
            for slot in 0..3 {
                let mut key = gen.next_u64() % LOCKS;
                while used[..slot].contains(&key) {
                    key = gen.next_u64() % LOCKS;
                }
                used[slot] = key;
                let mode = match gen.next_u64() % 3 {
                    0 => LockMode::Shared,
                    1 => LockMode::Additive,
                    _ => LockMode::Exclusive,
                };
                counters[key as usize] += 1;
                entries.push(ProfileEntry {
                    lock: space.lock_for(&key),
                    mode,
                    counter: counters[key as usize],
                });
            }
            LockProfile::new(entries)
        })
        .collect()
}

/// The pre-reduction reference construction: every ordered conflicting
/// pair per lock, deduplicated across locks (self-pairs from duplicate
/// lock entries excluded, matching the reduced builder). Returned as an
/// explicit edge list so the schedule-reduction property tests can build
/// a reference graph from exactly the edges this suite counts.
pub fn all_pairs_edges(profiles: &[LockProfile]) -> Vec<(usize, usize)> {
    use cc_primitives::fx::FxHashMap;
    use cc_stm::LockId;
    let mut by_lock: FxHashMap<LockId, Vec<(u64, u32, LockMode)>> = FxHashMap::default();
    for (tx, profile) in profiles.iter().enumerate() {
        for entry in &profile.locks {
            by_lock
                .entry(entry.lock)
                .or_default()
                .push((entry.counter, tx as u32, entry.mode));
        }
    }
    let mut edges: FxHashSet<(u32, u32)> = FxHashSet::default();
    for holders in by_lock.values_mut() {
        holders.sort_unstable();
        for i in 0..holders.len() {
            for j in (i + 1)..holders.len() {
                if holders[i].1 != holders[j].1 && holders[i].2.conflicts(holders[j].2) {
                    edges.insert((holders[i].1, holders[j].1));
                }
            }
        }
    }
    let mut out: Vec<(usize, usize)> = edges
        .into_iter()
        .map(|(a, b)| (a as usize, b as usize))
        .collect();
    out.sort_unstable();
    out
}

/// Edge count of the pre-reduction all-pairs construction.
pub fn all_pairs_edge_count(profiles: &[LockProfile]) -> usize {
    all_pairs_edges(profiles).len()
}

/// Times one shape: best-of-`passes` build time plus the structural
/// numbers of the built schedule.
fn measure_shape(shape: &'static str, profiles: Vec<LockProfile>, passes: usize) -> SchedulePoint {
    let mut best = f64::INFINITY;
    for _ in 0..passes.max(1) {
        let start = Instant::now();
        let graph = HappensBeforeGraph::from_profiles(&profiles);
        best = best.min(start.elapsed().as_nanos() as f64 / 1_000.0);
        std::hint::black_box(&graph);
    }
    let graph = HappensBeforeGraph::from_profiles(&profiles);
    let edges = graph.edge_count();
    let critical_path = graph.critical_path();
    let all_pairs_edges = all_pairs_edge_count(&profiles);
    let txns = profiles.len();
    let metadata_bytes = graph
        .into_metadata(profiles)
        .expect("synthetic profiles are acyclic")
        .encoded_size();
    SchedulePoint {
        shape,
        txns,
        build_us: best,
        edges,
        all_pairs_edges,
        critical_path,
        metadata_bytes,
    }
}

/// Runs the schedule suite over all four shapes with `passes` timing
/// passes per shape (quick mode uses fewer passes, never smaller shapes).
pub fn run_schedule(passes: usize) -> Vec<SchedulePoint> {
    let n = SCHEDULE_TXNS;
    vec![
        measure_shape("chain", chain_profiles(n), passes),
        measure_shape("antichain", antichain_profiles(n), passes),
        measure_shape("hot-key", hot_key_profiles(n), passes),
        measure_shape("mixed-mode", mixed_mode_profiles(n), passes),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_have_the_expected_structure() {
        let points = run_schedule(1);
        assert_eq!(points.len(), 4);
        let find = |name: &str| points.iter().find(|p| p.shape == name).unwrap();

        let chain = find("chain");
        assert_eq!(chain.txns, SCHEDULE_TXNS);
        assert_eq!(chain.edges, SCHEDULE_TXNS - 1, "exclusive chain is reduced");
        assert_eq!(
            chain.all_pairs_edges,
            SCHEDULE_TXNS * (SCHEDULE_TXNS - 1) / 2
        );
        assert_eq!(chain.critical_path, SCHEDULE_TXNS);

        let antichain = find("antichain");
        assert_eq!(antichain.edges, 0);
        assert_eq!(antichain.critical_path, 1);

        let hot = find("hot-key");
        assert!(hot.edges < hot.all_pairs_edges);
        assert!(hot.critical_path < SCHEDULE_TXNS / 4);

        for p in &points {
            assert!(p.build_us > 0.0, "{} measured nothing", p.shape);
            assert!(p.metadata_bytes > 0);
            assert!(p.edges <= p.all_pairs_edges, "{} grew edges", p.shape);
        }
        // Shape names are unique (repro diff matches on them).
        let mut names: Vec<_> = points.iter().map(|p| p.shape).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), points.len());
    }

    #[test]
    fn mixed_mode_generation_is_deterministic() {
        let a = mixed_mode_profiles(64);
        let b = mixed_mode_profiles(64);
        assert_eq!(a, b);
    }
}
