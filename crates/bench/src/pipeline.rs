//! Ingestion-to-commit throughput: sequential vs. pipelined production.
//!
//! Each case prefills a node's mempool with the same traffic (uniform
//! counter increments across many senders), then produces blocks until
//! the pool is drained — either sequentially
//! ([`Node::mine_pending`] in a loop: assemble, mine, seal, fsync, one
//! after the other) or pipelined ([`Node::run_pipeline`]: the WAL
//! seal/fsync of block N overlapped with the mining of block N+1). The
//! sweep crosses durability `off/buffered/fsync` with both production
//! modes; `repro pipeline` prints it and `repro --json` records it in
//! the `pipeline` section.
//!
//! On the single-core container the pipelined win shows up as per-block
//! cost: the fsync no longer sits on the critical path, so
//! `ingest-fsync-pipe` must beat `ingest-fsync-seq` even without
//! parallel hardware — the production thread mines while the kernel
//! syncs. With durability off the two modes do the same work and should
//! measure the same.
//!
//! The follower sweep ([`run_follower`]) measures the consuming side of
//! the same pipeline: every case replays one pre-mined sealed stream,
//! either sequentially (`validate_and_append`: validate, seal, fsync,
//! one block after the other) or speculatively
//! ([`Node::run_follower_pipeline`]: block N+1 replayed against block
//! N's still-pending post-state while N's seal/fsync runs on the
//! durability stage). `follower-fsync-spec` must beat
//! `follower-fsync-seq` for the same reason `ingest-fsync-pipe` beats
//! `ingest-fsync-seq`.

use cc_core::engine::{Engine, ExecutionStrategy};
use cc_core::node::pipeline::PipelineConfig;
use cc_core::node::{DurabilityConfig, Node};
use cc_core::FollowerConfig;
use cc_ledger::wal::DurabilityMode;
use cc_ledger::{Block, Transaction};
use cc_mempool::MempoolConfig;
use cc_vm::testing::CounterContract;
use cc_vm::{Address, ArgValue, CallData, World};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One measured ingestion case.
#[derive(Debug, Clone)]
pub struct PipelinePoint {
    /// Stable case name (the key used by `repro diff`):
    /// `ingest-{off|buffered|fsync}-{seq|pipe}`.
    pub name: &'static str,
    /// Median end-to-end throughput from prefilled mempool to committed
    /// (and, per mode, durable) blocks, in transactions per second.
    pub txns_per_sec: f64,
    /// Median wall-clock cost per produced block, in milliseconds.
    pub ms_per_block: f64,
}

/// Distinguishes concurrent benchmark runs' scratch directories.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "cc-bench-pipeline-{}-{}-{tag}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    dir
}

const COUNTER: &str = "bench.pipeline.counter";
const TX_GAS: u64 = 1_000_000;

fn counter_world() -> World {
    let world = World::new();
    world.deploy(Arc::new(CounterContract::new(Address::from_name(COUNTER))));
    world
}

/// Submits `blocks × block_size` increments: `block_size` senders, each
/// with a contiguous nonce run, so every transaction is ready at once
/// and the gas budget slices the pool into `blocks` full blocks.
fn prefill(node: &Node, blocks: u64, block_size: u64) {
    for sender in 0..block_size {
        for nonce in 0..blocks {
            let tx = Transaction::new(
                nonce,
                Address::from_index(sender),
                Address::from_name(COUNTER),
                CallData::new("increment", vec![ArgValue::Uint(1)]),
                TX_GAS,
            )
            .priority_fee(sender % 7);
            node.submit(tx).expect("bench submission admitted");
        }
    }
}

fn bench_node(engine: &Engine, mode: DurabilityMode, dir: &std::path::Path, blocks: u64) -> Node {
    let mut builder = Node::builder()
        .world(counter_world())
        .engine(engine.clone())
        .mempool(MempoolConfig {
            capacity: 1 << 16,
            shards: 8,
        });
    if mode != DurabilityMode::Off {
        // Snapshots deliberately out of cadence: this case measures the
        // per-block seal/fsync overlap, not snapshot serialization.
        builder =
            builder.durability(DurabilityConfig::new(dir, mode).snapshot_interval(blocks + 1));
    }
    builder.build().expect("pipeline bench node")
}

/// Times one run of a `(durability, pipelined?)` case: prefill a fresh
/// node, drain the pool to blocks, return per-block wall time.
fn time_one(
    engine: &Engine,
    mode: DurabilityMode,
    pipelined: bool,
    blocks: u64,
    block_size: u64,
) -> std::time::Duration {
    let gas_limit = block_size * TX_GAS;
    let dir = scratch_dir("rep");
    let mut node = bench_node(engine, mode, &dir, blocks);
    prefill(&node, blocks, block_size);
    let start = Instant::now();
    if pipelined {
        let report = node
            .run_pipeline(&PipelineConfig::new(gas_limit))
            .expect("pipelined production succeeds");
        assert_eq!(report.blocks, blocks, "gas budget must slice evenly");
    } else {
        for _ in 0..blocks {
            node.mine_pending(gas_limit)
                .expect("sequential block mines");
        }
    }
    let elapsed = start.elapsed();
    assert!(node.mempool().is_empty(), "the drain must consume the pool");
    drop(node);
    std::fs::remove_dir_all(&dir).ok();
    elapsed / u32::try_from(blocks).expect("block count fits u32")
}

/// The middle sample (robust against one-off scheduler hiccups, which
/// the mean is not on a shared single-core box).
fn median(samples: &mut [std::time::Duration]) -> std::time::Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Runs the ingestion sweep: durability `off/buffered/fsync` × production
/// `seq/pipe`, each from the same prefilled mempool traffic.
///
/// Repetitions are **interleaved across the cases** (round-robin, one
/// warm-up round first) so slow environmental drift — CPU frequency,
/// noisy neighbors — lands on every case equally instead of biasing
/// whichever case happened to run during the slow minute; each case
/// reports its median repetition.
pub fn run_pipeline(
    blocks: u64,
    block_size: u64,
    threads: usize,
    repetitions: usize,
) -> Vec<PipelinePoint> {
    let engine = crate::engine(ExecutionStrategy::SpeculativeStm, threads);
    let cases = [
        ("ingest-off-seq", DurabilityMode::Off, false),
        ("ingest-off-pipe", DurabilityMode::Off, true),
        ("ingest-buffered-seq", DurabilityMode::Buffered, false),
        ("ingest-buffered-pipe", DurabilityMode::Buffered, true),
        ("ingest-fsync-seq", DurabilityMode::Fsync, false),
        ("ingest-fsync-pipe", DurabilityMode::Fsync, true),
    ];
    let mut samples: Vec<Vec<std::time::Duration>> = vec![Vec::new(); cases.len()];
    for round in 0..repetitions.max(1) + 1 {
        for (i, (_, mode, pipelined)) in cases.iter().enumerate() {
            let per_block = time_one(&engine, *mode, *pipelined, blocks, block_size);
            if round > 0 {
                samples[i].push(per_block);
            }
        }
    }
    cases
        .iter()
        .zip(&mut samples)
        .map(|((name, _, _), samples)| {
            let ms_per_block = median(samples).as_secs_f64() * 1_000.0;
            PipelinePoint {
                name,
                txns_per_sec: block_size as f64 / (ms_per_block / 1_000.0),
                ms_per_block,
            }
        })
        .collect()
}

/// Pre-mines the sealed block stream every follower case consumes:
/// `blocks` blocks of `block_size` counter increments from a producer
/// node with no durability (the producer's own seal cost must not leak
/// into follower timings).
fn produce_stream(engine: &Engine, blocks: u64, block_size: u64) -> Vec<Block> {
    let mut producer = Node::builder()
        .world(counter_world())
        .engine(engine.clone())
        .build()
        .expect("producer node");
    (0..blocks)
        .map(|number| {
            let txs = (0..block_size)
                .map(|sender| {
                    Transaction::new(
                        number,
                        Address::from_index(sender),
                        Address::from_name(COUNTER),
                        CallData::new("increment", vec![ArgValue::Uint(1)]),
                        TX_GAS,
                    )
                })
                .collect();
            producer
                .mine_and_append(txs)
                .expect("producer block mines")
                .block
        })
        .collect()
}

/// Times one follower consuming the pre-mined stream: sequentially
/// (`validate_and_append` per block, each paying its own seal/fsync) or
/// speculatively (`run_follower_pipeline`, block N+1 replaying against
/// N's pending overlay while N's seal/fsync runs on the durability
/// stage).
fn time_one_follower(
    engine: &Engine,
    mode: DurabilityMode,
    speculative: bool,
    stream: &[Block],
) -> std::time::Duration {
    let blocks = stream.len() as u64;
    let dir = scratch_dir("follower");
    let mut builder = Node::builder()
        .world(counter_world())
        .engine(engine.clone());
    if mode != DurabilityMode::Off {
        builder =
            builder.durability(DurabilityConfig::new(&dir, mode).snapshot_interval(blocks + 1));
    }
    let mut node = builder.build().expect("follower bench node");
    let start = Instant::now();
    if speculative {
        let report = node
            .run_follower_pipeline(stream.to_vec(), &FollowerConfig::new().max_in_flight(3))
            .expect("speculative validation succeeds");
        assert_eq!(report.blocks, blocks, "the follower must accept the stream");
    } else {
        for block in stream {
            node.validate_and_append(block)
                .expect("sequential validation succeeds");
        }
    }
    let elapsed = start.elapsed();
    drop(node);
    std::fs::remove_dir_all(&dir).ok();
    elapsed / u32::try_from(blocks).expect("block count fits u32")
}

/// Runs the follower sweep: durability `off/buffered/fsync` × validation
/// `seq/spec`, every case replaying the same pre-mined sealed stream.
/// Repetitions interleave round-robin with one warm-up, as in
/// [`run_pipeline`]; each case reports its median repetition.
pub fn run_follower(
    blocks: u64,
    block_size: u64,
    threads: usize,
    repetitions: usize,
) -> Vec<PipelinePoint> {
    let engine = crate::engine(ExecutionStrategy::SpeculativeStm, threads);
    let stream = produce_stream(&engine, blocks, block_size);
    let cases = [
        ("follower-off-seq", DurabilityMode::Off, false),
        ("follower-off-spec", DurabilityMode::Off, true),
        ("follower-buffered-seq", DurabilityMode::Buffered, false),
        ("follower-buffered-spec", DurabilityMode::Buffered, true),
        ("follower-fsync-seq", DurabilityMode::Fsync, false),
        ("follower-fsync-spec", DurabilityMode::Fsync, true),
    ];
    let mut samples: Vec<Vec<std::time::Duration>> = vec![Vec::new(); cases.len()];
    for round in 0..repetitions.max(1) + 1 {
        for (i, (_, mode, speculative)) in cases.iter().enumerate() {
            let per_block = time_one_follower(&engine, *mode, *speculative, &stream);
            if round > 0 {
                samples[i].push(per_block);
            }
        }
    }
    cases
        .iter()
        .zip(&mut samples)
        .map(|((name, _, _), samples)| {
            let ms_per_block = median(samples).as_secs_f64() * 1_000.0;
            PipelinePoint {
                name,
                txns_per_sec: block_size as f64 / (ms_per_block / 1_000.0),
                ms_per_block,
            }
        })
        .collect()
}

/// Exercises the pipeline's failure path end to end: arms WAL fault
/// injection mid-run, then checks that the node staled, rolled its
/// in-memory chain back to the durable prefix, and that
/// [`Node::recover`] rebuilds exactly that prefix. Returns an error
/// string describing the first violated invariant, if any — the smoke
/// gate (`repro pipeline --quick`) fails on it.
pub fn verify_failure_path(threads: usize) -> Result<(), String> {
    let dir = scratch_dir("faultsim");
    let engine = crate::engine(ExecutionStrategy::SpeculativeStm, threads);
    let blocks = 4u64;
    let block_size = 8u64;
    let mut node = bench_node(&engine, DurabilityMode::Fsync, &dir, blocks);
    prefill(&node, blocks, block_size);
    // Blocks 1 and 2 seal; block 3's seal fails mid-pipeline.
    node.wal()
        .ok_or("durable node must expose its WAL")?
        .inject_seal_failures(2);
    let err = node
        .run_pipeline(&PipelineConfig::new(block_size * TX_GAS))
        .err()
        .ok_or("injected seal failure must surface as an error")?;
    if !err.to_string().contains("sealing block 3") {
        return Err(format!("unexpected failure shape: {err}"));
    }
    if !node.is_stale() {
        return Err("persist failure must stale the node".into());
    }
    if node.chain().head().header.number != 2 {
        return Err(format!(
            "chain must roll back to the durable prefix (head is {})",
            node.chain().head().header.number
        ));
    }
    drop(node);
    let recovered = Node::recover(
        DurabilityConfig::new(&dir, DurabilityMode::Fsync),
        counter_world(),
        engine,
    )
    .map_err(|e| format!("recovery after injected failure failed: {e}"))?;
    let head = recovered.chain().head().header.number;
    std::fs::remove_dir_all(&dir).ok();
    if head != 2 {
        return Err(format!(
            "recovery must rebuild blocks 0..=2, got 0..={head}"
        ));
    }
    Ok(())
}

/// Exercises the *follower* pipeline's failure path: a seal failure
/// injected under speculative validation must stale the follower, drop
/// every pending overlay, roll the chain back to the durable prefix,
/// and leave a directory [`Node::recover`] rebuilds to exactly that
/// prefix. Returns the first violated invariant, if any.
pub fn verify_follower_failure_path(threads: usize) -> Result<(), String> {
    let dir = scratch_dir("follower-faultsim");
    let engine = crate::engine(ExecutionStrategy::SpeculativeStm, threads);
    let stream = produce_stream(&engine, 4, 8);
    let mut node = Node::builder()
        .world(counter_world())
        .engine(engine.clone())
        .durability(DurabilityConfig::new(&dir, DurabilityMode::Fsync).snapshot_interval(16))
        .build()
        .expect("follower faultsim node");
    // Blocks 1 and 2 seal; block 3's seal fails behind the speculation.
    node.wal()
        .ok_or("durable follower must expose its WAL")?
        .inject_seal_failures(2);
    let err = node
        .run_follower_pipeline(stream, &FollowerConfig::new().max_in_flight(3))
        .err()
        .ok_or("injected seal failure must surface as an error")?;
    if !err.to_string().contains("sealing block 3") {
        return Err(format!("unexpected failure shape: {err}"));
    }
    if !node.is_stale() {
        return Err("persist failure must stale the follower".into());
    }
    if node.chain().head().header.number != 2 {
        return Err(format!(
            "chain must roll back to the durable prefix (head is {})",
            node.chain().head().header.number
        ));
    }
    drop(node);
    let recovered = Node::recover(
        DurabilityConfig::new(&dir, DurabilityMode::Fsync),
        counter_world(),
        engine,
    )
    .map_err(|e| format!("recovery after injected failure failed: {e}"))?;
    let head = recovered.chain().head().header.number;
    std::fs::remove_dir_all(&dir).ok();
    if head != 2 {
        return Err(format!(
            "recovery must rebuild blocks 0..=2, got 0..={head}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_sweep_measures_all_six_cases() {
        let points = run_pipeline(2, 4, 2, 1);
        assert_eq!(points.len(), 6);
        for p in &points {
            assert!(p.ms_per_block > 0.0, "{} measured nothing", p.name);
            assert!(p.txns_per_sec > 0.0, "{} has no throughput", p.name);
        }
        let mut names: Vec<_> = points.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "case names must be unique for repro diff");
    }

    #[test]
    fn failure_path_invariants_hold() {
        verify_failure_path(2).unwrap();
    }

    #[test]
    fn follower_sweep_measures_all_six_cases() {
        let points = run_follower(2, 4, 2, 1);
        assert_eq!(points.len(), 6);
        for p in &points {
            assert!(p.ms_per_block > 0.0, "{} measured nothing", p.name);
            assert!(p.txns_per_sec > 0.0, "{} has no throughput", p.name);
        }
        let mut names: Vec<_> = points.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "case names must be unique for repro diff");
    }

    #[test]
    fn follower_failure_path_invariants_hold() {
        verify_follower_failure_path(2).unwrap();
    }
}
