//! Lock-manager contention harness: measures raw acquire/release
//! throughput of the STM's synchronization core under configurable
//! thread counts and key mixes, against three backends:
//!
//! * [`Backend::Global`] — a faithful copy of the **pre-sharding** manager
//!   (one global mutex around a SipHash table, 2 ms condvar polling,
//!   `notify_all` wakeups), kept here as the regression baseline the
//!   sharded manager is measured against;
//! * [`Backend::Sharded1`] — the current manager constrained to a single
//!   stripe (isolates the hashing/wakeup improvements from sharding);
//! * [`Backend::Sharded`] — the current manager at its default stripe
//!   count.
//!
//! The `stm_contention` criterion bench and the `repro contention`
//! command both call [`measure_contention`], so the numbers in
//! `BENCH_*.json` and the bench output come from the same workload loop.

use cc_stm::manager::LockManager;
use cc_stm::{LockId, LockMode, LockSpace, StmError, TxnId};
use std::fmt;
use std::time::Instant;

/// How the worker threads pick their abstract locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Every thread works a private key range: no two transactions ever
    /// contend, which is the paper's best case and the workload sharding
    /// is supposed to make scale.
    Disjoint,
    /// All threads hammer one hot key in exclusive mode: maximal blocking,
    /// which exercises the waiter/wakeup path.
    Hot,
    /// All threads touch the same hot key, but 15 of every 16
    /// transactions only *read* it ([`cc_stm::LockMode::Shared`]) while
    /// the 16th writes it exclusively. The same access pattern as
    /// [`Mix::Hot`] — so the throughput delta between the two mixes is
    /// exactly what shared-mode read concurrency buys.
    ReadHeavy,
}

/// In the read-heavy mix, one transaction in this many is a writer.
pub const READ_HEAVY_WRITE_PERIOD: u64 = 16;

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mix::Disjoint => f.write_str("disjoint"),
            Mix::Hot => f.write_str("hot"),
            Mix::ReadHeavy => f.write_str("read-heavy"),
        }
    }
}

/// Which lock-manager implementation to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The pre-sharding global-mutex manager (see [`baseline`]).
    Global,
    /// The sharded manager constrained to one stripe.
    Sharded1,
    /// The sharded manager at its default stripe count.
    Sharded,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Global => f.write_str("global-mutex"),
            Backend::Sharded1 => f.write_str("sharded-1"),
            Backend::Sharded => f.write_str("sharded"),
        }
    }
}

/// The minimal manager surface the harness needs.
trait LockBackend: Sync {
    fn acquire(&self, txn: TxnId, lock: LockId, mode: LockMode) -> Result<bool, StmError>;
    fn release_commit(&self, txn: TxnId, locks: &[LockId]);
    fn release_abort(&self, txn: TxnId, locks: &[LockId]);
    /// Cumulative number of blocking waits so far (0 where the backend
    /// does not track them).
    fn wait_count(&self) -> u64;
}

impl LockBackend for LockManager {
    fn acquire(&self, txn: TxnId, lock: LockId, mode: LockMode) -> Result<bool, StmError> {
        LockManager::acquire(self, txn, lock, mode)
    }
    fn release_commit(&self, txn: TxnId, locks: &[LockId]) {
        LockManager::release_commit(self, txn, locks);
    }
    fn release_abort(&self, txn: TxnId, locks: &[LockId]) {
        LockManager::release_abort(self, txn, locks);
    }
    fn wait_count(&self) -> u64 {
        self.stats().waits
    }
}

impl LockBackend for baseline::GlobalLockManager {
    fn acquire(&self, txn: TxnId, lock: LockId, mode: LockMode) -> Result<bool, StmError> {
        baseline::GlobalLockManager::acquire(self, txn, lock, mode)
    }
    fn release_commit(&self, txn: TxnId, locks: &[LockId]) {
        baseline::GlobalLockManager::release_commit(self, txn, locks);
    }
    fn release_abort(&self, txn: TxnId, locks: &[LockId]) {
        baseline::GlobalLockManager::release_abort(self, txn, locks);
    }
    fn wait_count(&self) -> u64 {
        0
    }
}

/// One measured configuration and its result.
#[derive(Debug, Clone, Copy)]
pub struct ContentionPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Key mix (disjoint / hot / read-heavy).
    pub mix: Mix,
    /// Manager implementation measured.
    pub backend: Backend,
    /// Committed lock transactions per second (each takes
    /// [`LOCKS_PER_TXN`] locks for the disjoint mix, one for hot and
    /// read-heavy).
    pub ops_per_sec: f64,
    /// Blocking waits per 1000 transactions during the measured run — the
    /// conflict-rate metric that is meaningful even on a single-core host
    /// (raw throughput cannot show lock concurrency without parallelism,
    /// but a reader that never blocks shows up here regardless). Zero for
    /// backends that do not track waits (the global-mutex baseline polls
    /// instead of counting).
    pub waits_per_1k: f64,
}

/// Abstract locks acquired per transaction in the disjoint mix (the hot
/// mix takes a single lock so that blocking, not deadlock retries, is
/// what gets measured).
pub const LOCKS_PER_TXN: usize = 4;

/// Distinct keys per thread in the disjoint mix; cycling through a pool
/// (rather than fresh keys every transaction) keeps the table at a steady
/// size like a real block does.
const KEY_POOL: u64 = 64;

fn run_workload<B: LockBackend>(backend: &B, threads: usize, ops_per_thread: usize, mix: Mix) {
    crossbeam::scope(|scope| {
        for t in 0..threads as u64 {
            let space = LockSpace::new("contention");
            scope.spawn(move |_| {
                let mut locks: Vec<LockId> = Vec::with_capacity(LOCKS_PER_TXN);
                for op in 0..ops_per_thread as u64 {
                    let txn = TxnId(t * ops_per_thread as u64 + op + 1);
                    locks.clear();
                    let mut mode = LockMode::Exclusive;
                    match mix {
                        Mix::Disjoint => {
                            for j in 0..LOCKS_PER_TXN as u64 {
                                let key = t * KEY_POOL + ((op + j * 17) % KEY_POOL);
                                locks.push(space.lock_for(&key));
                            }
                        }
                        Mix::Hot => locks.push(space.lock_for(&0u64)),
                        Mix::ReadHeavy => {
                            locks.push(space.lock_for(&0u64));
                            if op % READ_HEAVY_WRITE_PERIOD != 0 {
                                mode = LockMode::Shared;
                            }
                        }
                    }
                    loop {
                        let mut acquired = 0;
                        for &lock in &locks {
                            if backend.acquire(txn, lock, mode).is_err() {
                                break;
                            }
                            acquired += 1;
                        }
                        if acquired == locks.len() {
                            break;
                        }
                        // Deadlock victim: give back exactly what was
                        // acquired (no use-counter increments) and retry,
                        // as the miner's worker loop would.
                        backend.release_abort(txn, &locks[..acquired]);
                    }
                    backend.release_commit(txn, &locks);
                }
            });
        }
    })
    .expect("contention worker panicked");
}

fn throughput<B: LockBackend>(
    backend: &B,
    threads: usize,
    ops_per_thread: usize,
    mix: Mix,
) -> (f64, f64) {
    // One warm-up pass populates the table and the allocator.
    run_workload(backend, threads, ops_per_thread.min(512), mix);
    let waits_before = backend.wait_count();
    let start = Instant::now();
    run_workload(backend, threads, ops_per_thread, mix);
    let elapsed = start.elapsed().as_secs_f64();
    let txns = (threads * ops_per_thread) as f64;
    let waits = backend.wait_count().saturating_sub(waits_before) as f64;
    (txns / elapsed, waits * 1000.0 / txns)
}

/// Measures one configuration, constructing a fresh backend.
pub fn measure_contention(
    backend: Backend,
    threads: usize,
    ops_per_thread: usize,
    mix: Mix,
) -> ContentionPoint {
    // Each pass only takes milliseconds, so a single scheduler hiccup can
    // halve a one-shot measurement. Run a few passes and report the best
    // one — anything below the best is interference, not the lock manager
    // (the same min-filtering rationale as the micro suite). Important on
    // the single-core CI container and for the committed `BENCH_*.json`
    // baselines that `repro diff` compares against.
    const PASSES: usize = 5;
    let mut best: Option<(f64, f64)> = None;
    for _ in 0..PASSES {
        let sample = match backend {
            Backend::Global => throughput(
                &baseline::GlobalLockManager::new(),
                threads,
                ops_per_thread,
                mix,
            ),
            Backend::Sharded1 => {
                throughput(&LockManager::with_shards(1), threads, ops_per_thread, mix)
            }
            Backend::Sharded => throughput(&LockManager::new(), threads, ops_per_thread, mix),
        };
        best = match best {
            Some(current) if current.0 >= sample.0 => Some(current),
            _ => Some(sample),
        };
    }
    let (ops_per_sec, waits_per_1k) = best.expect("at least one pass runs");
    ContentionPoint {
        threads,
        mix,
        backend,
        ops_per_sec,
        waits_per_1k,
    }
}

/// The thread counts the contention suite sweeps.
pub fn contention_threads() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// The pre-sharding lock manager, preserved verbatim (minus the APIs the
/// harness does not exercise) as the regression baseline: one global
/// mutex over a SipHash-keyed table, a single condition variable polled
/// every 2 ms by every blocked transaction, `notify_all` wakeups, and a
/// linear-scan deadlock walk.
pub mod baseline {
    use cc_stm::{LockId, LockMode, StmError, TxnId};
    use parking_lot::{Condvar, Mutex};
    use std::collections::{HashMap, VecDeque};
    use std::time::Duration;

    #[derive(Debug, Default)]
    struct LockEntry {
        holders: HashMap<TxnId, LockMode>,
        use_counter: u64,
        waiters: VecDeque<TxnId>,
    }

    impl LockEntry {
        fn can_grant(&self, txn: TxnId, mode: LockMode) -> bool {
            if self.holders.is_empty() {
                return true;
            }
            if let Some(held) = self.holders.get(&txn) {
                if held.strongest(mode) == *held {
                    return true;
                }
                return self.holders.len() == 1;
            }
            self.holders.values().all(|h| h.compatible(mode))
        }
    }

    #[derive(Debug, Default)]
    struct ManagerState {
        locks: HashMap<LockId, LockEntry>,
        waits_for: HashMap<TxnId, LockId>,
    }

    impl ManagerState {
        fn would_deadlock(&self, requester: TxnId, lock: LockId) -> bool {
            let mut stack: Vec<TxnId> = Vec::new();
            let mut visited: Vec<TxnId> = Vec::new();
            if let Some(entry) = self.locks.get(&lock) {
                stack.extend(entry.holders.keys().copied().filter(|&h| h != requester));
            }
            while let Some(t) = stack.pop() {
                if t == requester {
                    return true;
                }
                if visited.contains(&t) {
                    continue;
                }
                visited.push(t);
                if let Some(waited) = self.waits_for.get(&t) {
                    if let Some(entry) = self.locks.get(waited) {
                        stack.extend(entry.holders.keys().copied());
                    }
                }
            }
            false
        }
    }

    /// The pre-PR global-mutex manager (benchmark baseline only).
    #[derive(Debug, Default)]
    pub struct GlobalLockManager {
        state: Mutex<ManagerState>,
        available: Condvar,
    }

    impl GlobalLockManager {
        /// Creates an empty baseline manager.
        pub fn new() -> Self {
            GlobalLockManager::default()
        }

        /// Blocking acquisition with the original 2 ms poll loop.
        ///
        /// # Errors
        ///
        /// Returns [`StmError::Deadlock`] when blocking would close a
        /// wait-for cycle.
        pub fn acquire(&self, txn: TxnId, lock: LockId, mode: LockMode) -> Result<bool, StmError> {
            let mut state = self.state.lock();
            loop {
                let entry = state.locks.entry(lock).or_default();
                if entry.can_grant(txn, mode) {
                    let newly = match entry.holders.get(&txn) {
                        Some(held) => {
                            let upgraded = held.strongest(mode);
                            entry.holders.insert(txn, upgraded);
                            false
                        }
                        None => {
                            entry.holders.insert(txn, mode);
                            true
                        }
                    };
                    state.waits_for.remove(&txn);
                    return Ok(newly);
                }
                if state.would_deadlock(txn, lock) {
                    state.waits_for.remove(&txn);
                    return Err(StmError::Deadlock { victim: txn, lock });
                }
                state.waits_for.insert(txn, lock);
                state.locks.entry(lock).or_default().waiters.push_back(txn);
                self.available
                    .wait_for(&mut state, Duration::from_millis(2));
                if let Some(entry) = state.locks.get_mut(&lock) {
                    if let Some(pos) = entry.waiters.iter().position(|&t| t == txn) {
                        entry.waiters.remove(pos);
                    }
                }
            }
        }

        /// Commit-release with the original global `notify_all`.
        pub fn release_commit(&self, txn: TxnId, locks: &[LockId]) -> Vec<u64> {
            let mut state = self.state.lock();
            let mut counters = Vec::with_capacity(locks.len());
            for lock in locks {
                let counter = match state.locks.get_mut(lock) {
                    Some(entry) => {
                        entry.holders.remove(&txn);
                        entry.use_counter += 1;
                        entry.use_counter
                    }
                    None => 0,
                };
                counters.push(counter);
            }
            state.waits_for.remove(&txn);
            drop(state);
            self.available.notify_all();
            counters
        }

        /// Abort-release: holders removed, use counters untouched.
        pub fn release_abort(&self, txn: TxnId, locks: &[LockId]) {
            let mut state = self.state.lock();
            for lock in locks {
                if let Some(entry) = state.locks.get_mut(lock) {
                    entry.holders.remove(&txn);
                }
            }
            state.waits_for.remove(&txn);
            drop(state);
            self.available.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_throughput_is_positive_for_all_backends() {
        for backend in [Backend::Global, Backend::Sharded1, Backend::Sharded] {
            let p = measure_contention(backend, 2, 200, Mix::Disjoint);
            assert!(p.ops_per_sec > 0.0, "{backend} produced no throughput");
        }
    }

    #[test]
    fn hot_mix_serializes_but_completes() {
        let p = measure_contention(Backend::Sharded, 4, 100, Mix::Hot);
        assert!(p.ops_per_sec > 0.0);
    }

    #[test]
    fn read_heavy_mix_completes_on_all_backends() {
        for backend in [Backend::Global, Backend::Sharded1, Backend::Sharded] {
            let p = measure_contention(backend, 4, 200, Mix::ReadHeavy);
            assert!(p.ops_per_sec > 0.0, "{backend} produced no throughput");
        }
    }

    #[test]
    fn baseline_manager_detects_deadlock() {
        use std::sync::Arc;
        let m = Arc::new(baseline::GlobalLockManager::new());
        let space = LockSpace::new("baseline.dl");
        let la = space.lock_for(&"a");
        let lb = space.lock_for(&"b");
        m.acquire(TxnId(1), la, LockMode::Exclusive).unwrap();
        m.acquire(TxnId(2), lb, LockMode::Exclusive).unwrap();
        let m1 = Arc::clone(&m);
        let t = std::thread::spawn(move || {
            let r = m1.acquire(TxnId(1), lb, LockMode::Exclusive);
            m1.release_commit(TxnId(1), &[la]);
            if r.is_ok() {
                m1.release_commit(TxnId(1), &[lb]);
            }
            r
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let r2 = m.acquire(TxnId(2), la, LockMode::Exclusive);
        m.release_commit(TxnId(2), &[lb]);
        if r2.is_ok() {
            m.release_commit(TxnId(2), &[la]);
        }
        let r1 = t.join().unwrap();
        assert!(r1.is_err() || r2.is_err());
    }
}
