//! Shared measurement harness for the paper-reproduction benchmarks.
//!
//! The paper's methodology (§7.2): for every benchmark and parameter
//! combination, run the block on the **serial miner**, the **parallel
//! miner** and the **(parallel) validator**, collect the running time five
//! times after three warm-up runs, and report the mean and standard
//! deviation; speedups are relative to the serial miner on the same
//! machine. This crate implements that loop once so the Criterion benches,
//! the `repro` binary and the tests all measure the same thing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod durability;
pub mod json;
pub mod micro;
pub mod pipeline;
pub mod schedule;

use cc_core::engine::{Engine, EngineConfig, ExecutionStrategy};
use cc_workload::{Benchmark, Workload, WorkloadSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of measured repetitions (paper: "the running time is collected
/// five times").
pub const REPETITIONS: usize = 5;
/// Number of warm-up runs before measuring (paper: "all runs are given
/// three warm-up runs").
pub const WARMUPS: usize = 3;
/// Worker threads for the parallel miner and validator (paper: "a fixed
/// pool of three threads"). The value itself lives in
/// [`EngineConfig::DEFAULT_THREADS`]; this re-export keeps bench-side
/// call sites short.
pub const DEFAULT_THREADS: usize = EngineConfig::DEFAULT_THREADS;

/// Mean and standard deviation of a set of timings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Mean running time.
    pub mean: Duration,
    /// Standard deviation of the running time.
    pub stddev: Duration,
}

impl Timing {
    /// Computes mean and standard deviation of raw samples.
    pub fn from_samples(samples: &[Duration]) -> Timing {
        assert!(!samples.is_empty(), "at least one sample required");
        let mean_nanos =
            samples.iter().map(|d| d.as_nanos() as f64).sum::<f64>() / samples.len() as f64;
        let variance = samples
            .iter()
            .map(|d| {
                let x = d.as_nanos() as f64 - mean_nanos;
                x * x
            })
            .sum::<f64>()
            / samples.len() as f64;
        Timing {
            mean: Duration::from_nanos(mean_nanos as u64),
            stddev: Duration::from_nanos(variance.sqrt() as u64),
        }
    }

    /// Mean in fractional milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1_000.0
    }

    /// Standard deviation in fractional milliseconds.
    pub fn stddev_ms(&self) -> f64 {
        self.stddev.as_secs_f64() * 1_000.0
    }
}

/// The three timings measured for one parameter combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// The serial miner (the baseline).
    pub serial: Timing,
    /// The speculative parallel miner.
    pub miner: Timing,
    /// The deterministic fork-join validator.
    pub validator: Timing,
}

impl Measurement {
    /// Parallel-miner speedup over the serial baseline.
    pub fn miner_speedup(&self) -> f64 {
        self.serial.mean.as_secs_f64() / self.miner.mean.as_secs_f64()
    }

    /// Validator speedup over the serial baseline.
    pub fn validator_speedup(&self) -> f64 {
        self.serial.mean.as_secs_f64() / self.validator.mean.as_secs_f64()
    }
}

/// One row of a sweep: the parameter value and its measurement.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Block size (number of transactions).
    pub block_size: usize,
    /// Data-conflict fraction (0.0–1.0).
    pub conflict: f64,
    /// The measured timings.
    pub measurement: Measurement,
}

/// Measures one workload: serial mining, parallel mining and parallel
/// validation, each with [`WARMUPS`] warm-ups and `repetitions` measured
/// runs on fresh worlds.
pub fn measure(workload: &Workload, threads: usize, repetitions: usize) -> Measurement {
    measure_with(
        workload,
        ExecutionStrategy::SpeculativeStm,
        threads,
        repetitions,
    )
}

/// Like [`measure`], but the concurrent side (miner and validator) runs
/// under an explicit [`ExecutionStrategy`] instead of the default
/// speculative STM. The serial baseline is measured identically either
/// way, so speedups from different strategies are directly comparable.
///
/// Because the optimistic miner publishes the same schedule metadata as
/// the speculative one, the validator leg needs no per-strategy code:
/// whatever block the strategy mines, the fork-join validator replays it.
pub fn measure_with(
    workload: &Workload,
    strategy: ExecutionStrategy,
    threads: usize,
    repetitions: usize,
) -> Measurement {
    let serial_engine = engine(ExecutionStrategy::Serial, threads);
    let speculative_engine = engine(strategy, threads);

    // A reference block for the validator runs (any honest parallel block
    // will do; we mine one up front).
    let reference = speculative_engine
        .mine(&workload.build_world(), workload.transactions())
        .expect("reference mining succeeds");

    let serial = time_runs(repetitions, || {
        let world = workload.build_world();
        let txs = workload.transactions();
        let start = Instant::now();
        serial_engine
            .mine(&world, txs)
            .expect("serial mining succeeds");
        start.elapsed()
    });
    let miner = time_runs(repetitions, || {
        let world = workload.build_world();
        let txs = workload.transactions();
        let start = Instant::now();
        speculative_engine
            .mine(&world, txs)
            .expect("parallel mining succeeds");
        start.elapsed()
    });
    let validator_timing = time_runs(repetitions, || {
        let world = workload.build_world();
        let start = Instant::now();
        speculative_engine
            .validate(&world, &reference.block)
            .expect("honest block validates");
        start.elapsed()
    });

    Measurement {
        serial,
        miner,
        validator: validator_timing,
    }
}

/// Measures the serial validator instead of the parallel one (used by the
/// ablation bench).
pub fn measure_serial_validation(
    workload: &Workload,
    threads: usize,
    repetitions: usize,
) -> Timing {
    let reference = engine(ExecutionStrategy::SpeculativeStm, threads)
        .mine(&workload.build_world(), workload.transactions())
        .expect("reference mining succeeds");
    let serial_engine = engine(ExecutionStrategy::Serial, threads);
    time_runs(repetitions, || {
        let world = workload.build_world();
        let start = Instant::now();
        serial_engine
            .validate(&world, &reference.block)
            .expect("honest block validates");
        start.elapsed()
    })
}

/// The engine used for one side of a measurement: the given strategy at
/// the given thread count, everything else at the paper's defaults.
///
/// # Panics
///
/// Panics on a configuration [`EngineConfig::build`] rejects (e.g. zero
/// threads) — benchmark thread counts are caller-validated inputs.
pub fn engine(strategy: ExecutionStrategy, threads: usize) -> Engine {
    EngineConfig::new()
        .strategy(strategy)
        .threads(threads)
        .build()
        .expect("benchmark engine config must be valid (threads >= 1)")
}

/// One engine-level read-heavy measurement: a block of `readers` pure
/// reads of one hot tally key plus `writers` additive updates of the same
/// key, mined speculatively.
///
/// This is where shared-mode reads show up even on a single-core host:
/// the miner holds abstract locks for the whole contract execution, so
/// exclusive reads of a hot key would serialize the entire block
/// (`critical_path == readers + writers`, one blocking wait per
/// preempted hold), while shared reads leave the readers mutually
/// unordered.
#[derive(Debug, Clone, Copy)]
pub struct ReadHeavyPoint {
    /// Number of read-only transactions in the block.
    pub readers: usize,
    /// Number of (additive) writer transactions in the block.
    pub writers: usize,
    /// Miner worker threads.
    pub threads: usize,
    /// Mean speculative mining time.
    pub miner_ms: f64,
    /// Mean lock-manager blocking waits per mined block.
    pub waits_per_block: f64,
    /// Mean deadlock retries per mined block.
    pub retries_per_block: f64,
    /// Happens-before edges of the last mined schedule (readers never
    /// produce read-read edges, so this is bounded by `readers × writers`
    /// instead of the all-exclusive `n·(n−1)/2`).
    pub hb_edges: usize,
    /// Critical path of the last mined schedule.
    pub critical_path: usize,
}

impl ReadHeavyPoint {
    /// The critical path the same block would have if reads took their
    /// locks exclusively: every transaction touches the hot key in a
    /// non-commuting mode, so the schedule degenerates to a chain.
    pub fn exclusive_read_critical_path(&self) -> usize {
        self.readers + self.writers
    }
}

/// The read-heavy block [`measure_read_heavy`] mines: exactly `readers`
/// read-only `total` calls and `writers` `increment` calls against the
/// counter contract at `contract_address`, with the writers spread evenly
/// through the block (Bresenham spacing: position `i` is a writer
/// whenever the running writer quota crosses an integer there, which
/// yields the exact counts for any readers/writers ratio).
pub fn read_heavy_transactions(
    readers: usize,
    writers: usize,
    contract_address: cc_vm::Address,
) -> Vec<cc_ledger::Transaction> {
    use cc_vm::{Address, ArgValue, CallData};
    let n = readers + writers;
    let is_writer = |i: usize| n > 0 && (i + 1) * writers / n > i * writers / n;
    (0..n)
        .map(|i| {
            if is_writer(i) {
                cc_ledger::Transaction::new(
                    i as u64,
                    Address::from_index(i as u64),
                    contract_address,
                    CallData::new("increment", vec![ArgValue::Uint(1)]),
                    1_000_000,
                )
            } else {
                cc_ledger::Transaction::new(
                    i as u64,
                    Address::from_index(i as u64),
                    contract_address,
                    CallData::nullary("total"),
                    1_000_000,
                )
            }
        })
        .collect()
}

/// Measures the read-heavy hot-key block described on
/// [`ReadHeavyPoint`].
pub fn measure_read_heavy(
    readers: usize,
    writers: usize,
    threads: usize,
    repetitions: usize,
) -> ReadHeavyPoint {
    use cc_vm::testing::CounterContract;
    use cc_vm::Address;

    let contract_address = Address::from_name("bench.read-heavy.counter");
    let build_world = || {
        let world = cc_vm::World::new();
        world.deploy(Arc::new(CounterContract::new(contract_address)));
        world
    };
    let txs = read_heavy_transactions(readers, writers, contract_address);

    let speculative = engine(ExecutionStrategy::SpeculativeStm, threads);
    let mut elapsed = Vec::new();
    let mut waits = Vec::new();
    let mut retries = Vec::new();
    let mut hb_edges = 0;
    let mut critical_path = 0;
    // One warm-up run plus the measured repetitions.
    for _ in 0..repetitions.max(1) + 1 {
        let world = build_world();
        let mined = speculative
            .mine(&world, txs.clone())
            .expect("read-heavy block mines");
        elapsed.push(mined.stats.elapsed);
        waits.push(mined.stats.locks.waits as f64);
        retries.push(mined.stats.retries as f64);
        hb_edges = mined.stats.hb_edges;
        critical_path = mined.stats.critical_path;
    }
    // Drop the warm-up run.
    elapsed.remove(0);
    waits.remove(0);
    retries.remove(0);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    ReadHeavyPoint {
        readers,
        writers,
        threads,
        miner_ms: Timing::from_samples(&elapsed).mean_ms(),
        waits_per_block: mean(&waits),
        retries_per_block: mean(&retries),
        hb_edges,
        critical_path,
    }
}

/// One point of the abort-rate comparison: the same workload mined under
/// the pessimistic (speculative STM) and the optimistic (MVCC) strategy,
/// reporting how often each one aborts.
///
/// The two strategies abort for different reasons — speculative
/// transactions die as deadlock victims while holding abstract locks,
/// optimistic ones fail first-committer-wins read-set validation — but
/// both surface as `retries` in [`cc_core::stats::MinerStats`], so the
/// rates are directly comparable. `optimistic_read_only_per_block` counts
/// the commits the optimistic strategy finished without validation at
/// all: its structurally abort-free reads.
#[derive(Debug, Clone, Copy)]
pub struct AbortRatePoint {
    /// Block size (number of transactions).
    pub block_size: usize,
    /// Data-conflict fraction (0.0–1.0).
    pub conflict: f64,
    /// Mean deadlock-victim retries per speculatively-mined block.
    pub speculative_retries_per_block: f64,
    /// Mean lock-manager blocking waits per speculatively-mined block.
    pub speculative_waits_per_block: f64,
    /// Mean validation-failure retries per optimistically-mined block.
    pub optimistic_retries_per_block: f64,
    /// Mean read-only (validation-free, abort-free) commits per
    /// optimistically-mined block.
    pub optimistic_read_only_per_block: f64,
    /// Mean speculative mining time (ms).
    pub speculative_ms: f64,
    /// Mean optimistic mining time (ms).
    pub optimistic_ms: f64,
}

impl AbortRatePoint {
    /// Speculative aborts per transaction.
    pub fn speculative_abort_rate(&self) -> f64 {
        self.speculative_retries_per_block / self.block_size.max(1) as f64
    }

    /// Optimistic aborts per transaction.
    pub fn optimistic_abort_rate(&self) -> f64 {
        self.optimistic_retries_per_block / self.block_size.max(1) as f64
    }
}

/// Mines `workload` repeatedly under both concurrent strategies and
/// averages each one's abort accounting (one warm-up run plus
/// `repetitions` measured runs per strategy, each on a fresh world).
pub fn measure_abort_rate(
    workload: &Workload,
    threads: usize,
    repetitions: usize,
) -> AbortRatePoint {
    let mine_stats = |strategy: ExecutionStrategy| {
        let engine = engine(strategy, threads);
        let mut retries = Vec::new();
        let mut waits = Vec::new();
        let mut read_only = Vec::new();
        let mut elapsed = Vec::new();
        for _ in 0..repetitions.max(1) + 1 {
            let world = workload.build_world();
            let mined = engine
                .mine(&world, workload.transactions())
                .expect("abort-rate block mines");
            retries.push(mined.stats.retries as f64);
            waits.push(mined.stats.locks.waits as f64);
            read_only.push(mined.stats.read_only as f64);
            elapsed.push(mined.stats.elapsed);
        }
        // Drop the warm-up run.
        retries.remove(0);
        waits.remove(0);
        read_only.remove(0);
        elapsed.remove(0);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        (
            mean(&retries),
            mean(&waits),
            mean(&read_only),
            Timing::from_samples(&elapsed).mean_ms(),
        )
    };
    let (spec_retries, spec_waits, _, spec_ms) = mine_stats(ExecutionStrategy::SpeculativeStm);
    let (opt_retries, _, opt_read_only, opt_ms) = mine_stats(ExecutionStrategy::OptimisticMvcc);
    AbortRatePoint {
        block_size: workload.transactions().len(),
        conflict: workload.spec().conflict,
        speculative_retries_per_block: spec_retries,
        speculative_waits_per_block: spec_waits,
        optimistic_retries_per_block: opt_retries,
        optimistic_read_only_per_block: opt_read_only,
        speculative_ms: spec_ms,
        optimistic_ms: opt_ms,
    }
}

fn time_runs(repetitions: usize, mut run: impl FnMut() -> Duration) -> Timing {
    for _ in 0..WARMUPS {
        run();
    }
    let samples: Vec<Duration> = (0..repetitions.max(1)).map(|_| run()).collect();
    Timing::from_samples(&samples)
}

/// The block sizes of the paper's left-hand Figure 1 panels (10–400
/// transactions at 15% conflict).
pub fn figure1_block_sizes() -> Vec<usize> {
    vec![10, 50, 100, 150, 200, 250, 300, 350, 400]
}

/// The conflict percentages of the paper's right-hand Figure 1 panels
/// (0%–100% at 200 transactions).
pub fn figure1_conflicts() -> Vec<f64> {
    (0..=10).map(|i| f64::from(i) / 10.0).collect()
}

/// Runs the block-size sweep for one benchmark (Figure 1, left column).
pub fn sweep_block_size(
    benchmark: Benchmark,
    threads: usize,
    repetitions: usize,
    mut observer: impl FnMut(&SweepPoint),
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for block_size in figure1_block_sizes() {
        let workload = WorkloadSpec::new(benchmark, block_size, 0.15).generate();
        let measurement = measure(&workload, threads, repetitions);
        let point = SweepPoint {
            block_size,
            conflict: 0.15,
            measurement,
        };
        observer(&point);
        points.push(point);
    }
    points
}

/// Runs the conflict sweep for one benchmark (Figure 1, right column).
pub fn sweep_conflict(
    benchmark: Benchmark,
    threads: usize,
    repetitions: usize,
    mut observer: impl FnMut(&SweepPoint),
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for conflict in figure1_conflicts() {
        let workload = WorkloadSpec::new(benchmark, 200, conflict).generate();
        let measurement = measure(&workload, threads, repetitions);
        let point = SweepPoint {
            block_size: 200,
            conflict,
            measurement,
        };
        observer(&point);
        points.push(point);
    }
    points
}

/// Average miner/validator speedups over a sweep (one cell of Table 1).
pub fn average_speedups(points: &[SweepPoint]) -> (f64, f64) {
    if points.is_empty() {
        return (0.0, 0.0);
    }
    let miner = points
        .iter()
        .map(|p| p.measurement.miner_speedup())
        .sum::<f64>()
        / points.len() as f64;
    let validator = points
        .iter()
        .map(|p| p.measurement.validator_speedup())
        .sum::<f64>()
        / points.len() as f64;
    (miner, validator)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_statistics() {
        let t = Timing::from_samples(&[
            Duration::from_millis(10),
            Duration::from_millis(12),
            Duration::from_millis(14),
        ]);
        assert_eq!(t.mean, Duration::from_millis(12));
        assert!(t.stddev >= Duration::from_millis(1));
        assert!(t.mean_ms() > 11.9 && t.mean_ms() < 12.1);
        assert!(t.stddev_ms() > 0.0);
    }

    #[test]
    fn sweep_parameter_lists_match_the_paper() {
        assert_eq!(figure1_block_sizes().first(), Some(&10));
        assert_eq!(figure1_block_sizes().last(), Some(&400));
        assert_eq!(figure1_conflicts().len(), 11);
        assert_eq!(figure1_conflicts()[0], 0.0);
        assert_eq!(*figure1_conflicts().last().unwrap(), 1.0);
    }

    #[test]
    fn measurement_speedups() {
        let m = Measurement {
            serial: Timing::from_samples(&[Duration::from_millis(30)]),
            miner: Timing::from_samples(&[Duration::from_millis(20)]),
            validator: Timing::from_samples(&[Duration::from_millis(15)]),
        };
        assert!((m.miner_speedup() - 1.5).abs() < 0.01);
        assert!((m.validator_speedup() - 2.0).abs() < 0.01);
        let (ms, vs) = average_speedups(&[SweepPoint {
            block_size: 10,
            conflict: 0.0,
            measurement: m,
        }]);
        assert!(ms > 1.0 && vs > 1.0);
        assert_eq!(average_speedups(&[]), (0.0, 0.0));
    }

    #[test]
    fn read_heavy_transactions_hit_exact_counts_for_any_ratio() {
        let addr = cc_vm::Address::from_name("bench.mix.test");
        for (readers, writers) in [(0, 0), (6, 4), (2, 8), (7, 3), (1, 1), (10, 0), (0, 5)] {
            let txs = read_heavy_transactions(readers, writers, addr);
            assert_eq!(txs.len(), readers + writers);
            let actual_writers = txs
                .iter()
                .filter(|t| t.call.function == "increment")
                .count();
            assert_eq!(
                actual_writers, writers,
                "r{readers}/w{writers} produced {actual_writers} writers"
            );
        }
    }

    #[test]
    fn read_heavy_measurement_shows_flat_schedule() {
        let point = measure_read_heavy(24, 2, 2, 1);
        assert_eq!(point.readers, 24);
        assert_eq!(point.writers, 2);
        assert!(point.miner_ms > 0.0);
        // The structural claim: shared reads keep the schedule flat. An
        // alternating reader/writer chain can stretch the critical path,
        // but it must stay far below the all-exclusive full serialization.
        assert!(
            point.critical_path < point.exclusive_read_critical_path() / 2,
            "critical path {} should be well below the serialized {}",
            point.critical_path,
            point.exclusive_read_critical_path()
        );
        // No read-read edges: the edge count is bounded by readers×writers
        // plus nothing else (writer-writer pairs commute additively).
        assert!(point.hb_edges <= point.readers * point.writers);
    }

    #[test]
    fn strategies_measure_through_the_same_harness() {
        let workload = WorkloadSpec::new(Benchmark::EtherDoc, 16, 0.2).generate();
        let m = measure_with(&workload, ExecutionStrategy::OptimisticMvcc, 2, 1);
        assert!(m.serial.mean > Duration::ZERO);
        assert!(m.miner.mean > Duration::ZERO);
        assert!(m.validator.mean > Duration::ZERO);
    }

    #[test]
    fn abort_rate_point_compares_the_two_strategies() {
        let workload = WorkloadSpec::new(Benchmark::SimpleAuction, 20, 0.5).generate();
        let point = measure_abort_rate(&workload, 2, 1);
        assert_eq!(point.block_size, 20);
        assert!((point.conflict - 0.5).abs() < f64::EPSILON);
        assert!(point.speculative_ms > 0.0);
        assert!(point.optimistic_ms > 0.0);
        assert!(point.speculative_abort_rate() >= 0.0);
        assert!(point.optimistic_abort_rate() >= 0.0);
    }

    #[test]
    fn small_measurement_end_to_end() {
        // A tiny end-to-end measurement to keep the harness itself under
        // test without taking benchmark-scale time.
        let workload = WorkloadSpec::new(Benchmark::Ballot, 20, 0.2).generate();
        let m = measure(&workload, 2, 1);
        assert!(m.serial.mean > Duration::ZERO);
        assert!(m.miner.mean > Duration::ZERO);
        assert!(m.validator.mean > Duration::ZERO);
        let sv = measure_serial_validation(&workload, 2, 1);
        assert!(sv.mean > Duration::ZERO);
    }
}
