//! Shared measurement harness for the paper-reproduction benchmarks.
//!
//! The paper's methodology (§7.2): for every benchmark and parameter
//! combination, run the block on the **serial miner**, the **parallel
//! miner** and the **(parallel) validator**, collect the running time five
//! times after three warm-up runs, and report the mean and standard
//! deviation; speedups are relative to the serial miner on the same
//! machine. This crate implements that loop once so the Criterion benches,
//! the `repro` binary and the tests all measure the same thing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod json;

use cc_core::engine::{Engine, EngineConfig, ExecutionStrategy};
use cc_workload::{Benchmark, Workload, WorkloadSpec};
use std::time::{Duration, Instant};

/// Number of measured repetitions (paper: "the running time is collected
/// five times").
pub const REPETITIONS: usize = 5;
/// Number of warm-up runs before measuring (paper: "all runs are given
/// three warm-up runs").
pub const WARMUPS: usize = 3;
/// Worker threads for the parallel miner and validator (paper: "a fixed
/// pool of three threads"). The value itself lives in
/// [`EngineConfig::DEFAULT_THREADS`]; this re-export keeps bench-side
/// call sites short.
pub const DEFAULT_THREADS: usize = EngineConfig::DEFAULT_THREADS;

/// Mean and standard deviation of a set of timings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Mean running time.
    pub mean: Duration,
    /// Standard deviation of the running time.
    pub stddev: Duration,
}

impl Timing {
    /// Computes mean and standard deviation of raw samples.
    pub fn from_samples(samples: &[Duration]) -> Timing {
        assert!(!samples.is_empty(), "at least one sample required");
        let mean_nanos =
            samples.iter().map(|d| d.as_nanos() as f64).sum::<f64>() / samples.len() as f64;
        let variance = samples
            .iter()
            .map(|d| {
                let x = d.as_nanos() as f64 - mean_nanos;
                x * x
            })
            .sum::<f64>()
            / samples.len() as f64;
        Timing {
            mean: Duration::from_nanos(mean_nanos as u64),
            stddev: Duration::from_nanos(variance.sqrt() as u64),
        }
    }

    /// Mean in fractional milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1_000.0
    }

    /// Standard deviation in fractional milliseconds.
    pub fn stddev_ms(&self) -> f64 {
        self.stddev.as_secs_f64() * 1_000.0
    }
}

/// The three timings measured for one parameter combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// The serial miner (the baseline).
    pub serial: Timing,
    /// The speculative parallel miner.
    pub miner: Timing,
    /// The deterministic fork-join validator.
    pub validator: Timing,
}

impl Measurement {
    /// Parallel-miner speedup over the serial baseline.
    pub fn miner_speedup(&self) -> f64 {
        self.serial.mean.as_secs_f64() / self.miner.mean.as_secs_f64()
    }

    /// Validator speedup over the serial baseline.
    pub fn validator_speedup(&self) -> f64 {
        self.serial.mean.as_secs_f64() / self.validator.mean.as_secs_f64()
    }
}

/// One row of a sweep: the parameter value and its measurement.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Block size (number of transactions).
    pub block_size: usize,
    /// Data-conflict fraction (0.0–1.0).
    pub conflict: f64,
    /// The measured timings.
    pub measurement: Measurement,
}

/// Measures one workload: serial mining, parallel mining and parallel
/// validation, each with [`WARMUPS`] warm-ups and `repetitions` measured
/// runs on fresh worlds.
pub fn measure(workload: &Workload, threads: usize, repetitions: usize) -> Measurement {
    let serial_engine = engine(ExecutionStrategy::Serial, threads);
    let speculative_engine = engine(ExecutionStrategy::SpeculativeStm, threads);

    // A reference block for the validator runs (any honest parallel block
    // will do; we mine one up front).
    let reference = speculative_engine
        .mine(&workload.build_world(), workload.transactions())
        .expect("reference mining succeeds");

    let serial = time_runs(repetitions, || {
        let world = workload.build_world();
        let txs = workload.transactions();
        let start = Instant::now();
        serial_engine
            .mine(&world, txs)
            .expect("serial mining succeeds");
        start.elapsed()
    });
    let miner = time_runs(repetitions, || {
        let world = workload.build_world();
        let txs = workload.transactions();
        let start = Instant::now();
        speculative_engine
            .mine(&world, txs)
            .expect("parallel mining succeeds");
        start.elapsed()
    });
    let validator_timing = time_runs(repetitions, || {
        let world = workload.build_world();
        let start = Instant::now();
        speculative_engine
            .validate(&world, &reference.block)
            .expect("honest block validates");
        start.elapsed()
    });

    Measurement {
        serial,
        miner,
        validator: validator_timing,
    }
}

/// Measures the serial validator instead of the parallel one (used by the
/// ablation bench).
pub fn measure_serial_validation(
    workload: &Workload,
    threads: usize,
    repetitions: usize,
) -> Timing {
    let reference = engine(ExecutionStrategy::SpeculativeStm, threads)
        .mine(&workload.build_world(), workload.transactions())
        .expect("reference mining succeeds");
    let serial_engine = engine(ExecutionStrategy::Serial, threads);
    time_runs(repetitions, || {
        let world = workload.build_world();
        let start = Instant::now();
        serial_engine
            .validate(&world, &reference.block)
            .expect("honest block validates");
        start.elapsed()
    })
}

/// The engine used for one side of a measurement: the given strategy at
/// the given thread count, everything else at the paper's defaults.
///
/// # Panics
///
/// Panics on a configuration [`EngineConfig::build`] rejects (e.g. zero
/// threads) — benchmark thread counts are caller-validated inputs.
pub fn engine(strategy: ExecutionStrategy, threads: usize) -> Engine {
    EngineConfig::new()
        .strategy(strategy)
        .threads(threads)
        .build()
        .expect("benchmark engine config must be valid (threads >= 1)")
}

fn time_runs(repetitions: usize, mut run: impl FnMut() -> Duration) -> Timing {
    for _ in 0..WARMUPS {
        run();
    }
    let samples: Vec<Duration> = (0..repetitions.max(1)).map(|_| run()).collect();
    Timing::from_samples(&samples)
}

/// The block sizes of the paper's left-hand Figure 1 panels (10–400
/// transactions at 15% conflict).
pub fn figure1_block_sizes() -> Vec<usize> {
    vec![10, 50, 100, 150, 200, 250, 300, 350, 400]
}

/// The conflict percentages of the paper's right-hand Figure 1 panels
/// (0%–100% at 200 transactions).
pub fn figure1_conflicts() -> Vec<f64> {
    (0..=10).map(|i| f64::from(i) / 10.0).collect()
}

/// Runs the block-size sweep for one benchmark (Figure 1, left column).
pub fn sweep_block_size(
    benchmark: Benchmark,
    threads: usize,
    repetitions: usize,
    mut observer: impl FnMut(&SweepPoint),
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for block_size in figure1_block_sizes() {
        let workload = WorkloadSpec::new(benchmark, block_size, 0.15).generate();
        let measurement = measure(&workload, threads, repetitions);
        let point = SweepPoint {
            block_size,
            conflict: 0.15,
            measurement,
        };
        observer(&point);
        points.push(point);
    }
    points
}

/// Runs the conflict sweep for one benchmark (Figure 1, right column).
pub fn sweep_conflict(
    benchmark: Benchmark,
    threads: usize,
    repetitions: usize,
    mut observer: impl FnMut(&SweepPoint),
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for conflict in figure1_conflicts() {
        let workload = WorkloadSpec::new(benchmark, 200, conflict).generate();
        let measurement = measure(&workload, threads, repetitions);
        let point = SweepPoint {
            block_size: 200,
            conflict,
            measurement,
        };
        observer(&point);
        points.push(point);
    }
    points
}

/// Average miner/validator speedups over a sweep (one cell of Table 1).
pub fn average_speedups(points: &[SweepPoint]) -> (f64, f64) {
    if points.is_empty() {
        return (0.0, 0.0);
    }
    let miner = points
        .iter()
        .map(|p| p.measurement.miner_speedup())
        .sum::<f64>()
        / points.len() as f64;
    let validator = points
        .iter()
        .map(|p| p.measurement.validator_speedup())
        .sum::<f64>()
        / points.len() as f64;
    (miner, validator)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_statistics() {
        let t = Timing::from_samples(&[
            Duration::from_millis(10),
            Duration::from_millis(12),
            Duration::from_millis(14),
        ]);
        assert_eq!(t.mean, Duration::from_millis(12));
        assert!(t.stddev >= Duration::from_millis(1));
        assert!(t.mean_ms() > 11.9 && t.mean_ms() < 12.1);
        assert!(t.stddev_ms() > 0.0);
    }

    #[test]
    fn sweep_parameter_lists_match_the_paper() {
        assert_eq!(figure1_block_sizes().first(), Some(&10));
        assert_eq!(figure1_block_sizes().last(), Some(&400));
        assert_eq!(figure1_conflicts().len(), 11);
        assert_eq!(figure1_conflicts()[0], 0.0);
        assert_eq!(*figure1_conflicts().last().unwrap(), 1.0);
    }

    #[test]
    fn measurement_speedups() {
        let m = Measurement {
            serial: Timing::from_samples(&[Duration::from_millis(30)]),
            miner: Timing::from_samples(&[Duration::from_millis(20)]),
            validator: Timing::from_samples(&[Duration::from_millis(15)]),
        };
        assert!((m.miner_speedup() - 1.5).abs() < 0.01);
        assert!((m.validator_speedup() - 2.0).abs() < 0.01);
        let (ms, vs) = average_speedups(&[SweepPoint {
            block_size: 10,
            conflict: 0.0,
            measurement: m,
        }]);
        assert!(ms > 1.0 && vs > 1.0);
        assert_eq!(average_speedups(&[]), (0.0, 0.0));
    }

    #[test]
    fn small_measurement_end_to_end() {
        // A tiny end-to-end measurement to keep the harness itself under
        // test without taking benchmark-scale time.
        let workload = WorkloadSpec::new(Benchmark::Ballot, 20, 0.2).generate();
        let m = measure(&workload, 2, 1);
        assert!(m.serial.mean > Duration::ZERO);
        assert!(m.miner.mean > Duration::ZERO);
        assert!(m.validator.mean > Duration::ZERO);
        let sv = measure_serial_validation(&workload, 2, 1);
        assert!(sv.mean > Duration::ZERO);
    }
}
