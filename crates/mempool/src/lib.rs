//! A bounded, sharded pending-transaction pool with fee-priority block
//! assembly.
//!
//! The mempool is the node's traffic-serving front door: clients [`submit`]
//! transactions as they arrive, and the block pipeline periodically calls
//! [`build_block`] to drain the highest-priority *ready* transactions into a
//! gas-budgeted batch for the mining engine. Between those two calls the pool
//! enforces three policies:
//!
//! * **Per-sender nonce ordering.** Each sender's transactions execute in
//!   nonce order. A sender's pending transactions split into a *ready* run
//!   (contiguous nonces starting at the sender's next expected nonce) and a
//!   *gapped* set (nonces past a hole). Only ready transactions are eligible
//!   for block assembly; filling a hole promotes the gapped run behind it.
//! * **Fee-priority admission.** The pool is bounded. When a shard is full,
//!   an incoming transaction must outbid the lowest-priority *evictable*
//!   transaction (each sender's highest pending nonce — evicting a middle
//!   nonce would create an artificial hole) or be rejected.
//! * **Replace-by-nonce.** Re-submitting a `(sender, nonce)` that is already
//!   pending replaces the old transaction iff the new one bids a strictly
//!   higher [`priority_fee`](Transaction::priority_fee); equal-or-lower bids
//!   are rejected so replacement races are monotone.
//!
//! Priority is `(priority_fee desc, arrival seq asc)` everywhere — ties go
//! to the transaction that arrived first, and arrival sequence numbers are
//! unique, so admission, eviction and assembly are fully deterministic: two
//! pools fed the same submissions in the same order produce byte-identical
//! batches. The block pipeline's "pipelined equals sequential" guarantee
//! rests on this.
//!
//! Internally the pool is split into [`MempoolConfig::shards`] shards, each
//! behind its own mutex, with senders assigned to shards by an FNV-1a hash
//! of their address, so concurrent submitters on different senders rarely
//! contend. All sharding is invisible in the API except capacity, which is
//! enforced per shard ([`submit`] documents the rounding).
//!
//! [`submit`]: Mempool::submit
//! [`build_block`]: Mempool::build_block

use cc_ledger::Transaction;
use cc_primitives::fnv::fnv1a;
use cc_vm::Address;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Sizing knobs for a [`Mempool`].
#[derive(Debug, Clone, Copy)]
pub struct MempoolConfig {
    /// Total number of pending transactions the pool holds before fee
    /// eviction kicks in. Rounded up to a multiple of `shards`.
    pub capacity: usize,
    /// Number of independently locked shards. Senders are hashed onto
    /// shards, so this bounds submit-path contention, not correctness.
    pub shards: usize,
}

impl Default for MempoolConfig {
    fn default() -> Self {
        MempoolConfig {
            capacity: 8192,
            shards: 8,
        }
    }
}

impl MempoolConfig {
    /// A single-shard pool, handy for tests and reference models where the
    /// global eviction order must be exact rather than per-shard.
    pub fn single_shard(capacity: usize) -> Self {
        MempoolConfig {
            capacity,
            shards: 1,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MempoolError {
    /// The transaction's nonce is below the sender's next expected nonce:
    /// a transaction with this nonce was already drained into a block (or
    /// the slot was consumed). It can never become ready.
    NonceTooLow {
        /// Nonce carried by the rejected transaction.
        got: u64,
        /// The sender's next expected nonce.
        expected: u64,
    },
    /// A transaction with this `(sender, nonce)` is already pending and the
    /// replacement does not bid a strictly higher priority fee.
    ReplacementUnderpriced {
        /// Fee bid by the transaction already in the pool.
        existing_fee: u64,
    },
    /// The shard is full and the transaction does not outbid the cheapest
    /// evictable transaction.
    Underpriced {
        /// Fee the submission needed to strictly exceed.
        fee_floor: u64,
    },
}

impl fmt::Display for MempoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MempoolError::NonceTooLow { got, expected } => {
                write!(f, "nonce {got} too low: sender's next nonce is {expected}")
            }
            MempoolError::ReplacementUnderpriced { existing_fee } => write!(
                f,
                "replacement must bid more than the pending fee {existing_fee}"
            ),
            MempoolError::Underpriced { fee_floor } => {
                write!(f, "pool full: must bid more than fee {fee_floor}")
            }
        }
    }
}

impl std::error::Error for MempoolError {}

/// What happened to an accepted submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The transaction is ready for block assembly. `promoted` counts the
    /// previously gapped transactions this submission pulled into the ready
    /// run by filling a nonce hole (0 for an ordinary in-order arrival).
    Ready {
        /// Gapped transactions promoted to ready behind this one.
        promoted: usize,
    },
    /// The transaction parked behind a nonce gap; a prior nonce from this
    /// sender is still missing.
    Queued,
    /// The transaction replaced a pending one with the same `(sender,
    /// nonce)` at a higher fee.
    Replaced,
}

/// Aggregate occupancy counters, summed across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MempoolStats {
    /// Transactions eligible for block assembly right now.
    pub ready: usize,
    /// Transactions parked behind a nonce gap.
    pub gapped: usize,
    /// Transactions evicted by fee pressure since the pool was created.
    pub evicted: u64,
}

impl MempoolStats {
    /// Total pending transactions (`ready + gapped`).
    pub fn pending(&self) -> usize {
        self.ready + self.gapped
    }
}

/// A pending transaction plus its arrival sequence number (the priority
/// tie-breaker).
#[derive(Debug, Clone)]
struct PendingTx {
    tx: Transaction,
    seq: u64,
}

impl PendingTx {
    /// Priority key: higher compares greater. `seq` is inverted so earlier
    /// arrivals win ties, and since seqs are unique the order is total.
    fn priority(&self) -> (u64, std::cmp::Reverse<u64>) {
        (self.tx.priority_fee, std::cmp::Reverse(self.seq))
    }
}

/// One sender's pending transactions.
///
/// Invariant: `ready` holds contiguous nonces `next, next+1, ..,
/// next+ready.len()-1`; every key in `gapped` is `> next + ready.len()`
/// (if one equaled it, insertion would have promoted it). Draining the
/// ready front advances `next` and shrinks `ready` together, so the
/// boundary `next + ready.len()` — and with it the invariant — is
/// untouched by [`Mempool::build_block`]; promotion only ever happens at
/// submit time.
#[derive(Debug, Default)]
struct SenderQueue {
    /// The sender's next expected nonce (first unconsumed, unpending slot).
    next: u64,
    /// Contiguous ready run starting at `next`.
    ready: VecDeque<PendingTx>,
    /// Transactions past a nonce hole, keyed by nonce.
    gapped: BTreeMap<u64, PendingTx>,
}

impl SenderQueue {
    /// The sender's evictable transaction: the highest pending nonce.
    /// Evicting any other would punch a hole in the ready run.
    fn evictable(&self) -> Option<&PendingTx> {
        self.gapped
            .last_key_value()
            .map(|(_, p)| p)
            .or_else(|| self.ready.back())
    }

    /// Removes the highest pending nonce (the transaction [`Self::evictable`]
    /// returned).
    fn evict_tail(&mut self) -> Option<PendingTx> {
        if let Some((&nonce, _)) = self.gapped.last_key_value() {
            self.gapped.remove(&nonce)
        } else {
            self.ready.pop_back()
        }
    }
}

/// One lock's worth of the pool.
#[derive(Debug, Default)]
struct Shard {
    senders: HashMap<Address, SenderQueue>,
    /// Pending transactions in this shard (ready + gapped over all senders).
    len: usize,
    ready: usize,
}

impl Shard {
    /// The cheapest evictable transaction in the shard:
    /// `(sender, fee, seq)` of the minimum-priority sender tail.
    fn cheapest_evictable(&self) -> Option<(Address, u64, u64)> {
        self.senders
            .iter()
            .filter_map(|(addr, q)| q.evictable().map(|p| (*addr, p)))
            .min_by_key(|(_, p)| p.priority())
            .map(|(addr, p)| (addr, p.tx.priority_fee, p.seq))
    }
}

/// The pool. See the [crate docs](crate) for the policies it enforces.
#[derive(Debug)]
pub struct Mempool {
    shards: Vec<Mutex<Shard>>,
    /// Max pending transactions per shard.
    shard_capacity: usize,
    /// Arrival counter; every accepted submission gets a unique, increasing
    /// sequence number used as the priority tie-breaker.
    seq: AtomicU64,
    evicted: AtomicU64,
}

impl Default for Mempool {
    fn default() -> Self {
        Mempool::new(MempoolConfig::default())
    }
}

impl Mempool {
    /// Creates an empty pool.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` or `config.capacity` is zero.
    pub fn new(config: MempoolConfig) -> Self {
        assert!(config.shards > 0, "mempool needs at least one shard");
        assert!(config.capacity > 0, "mempool needs nonzero capacity");
        Mempool {
            shards: (0..config.shards).map(|_| Mutex::default()).collect(),
            shard_capacity: config.capacity.div_ceil(config.shards),
            seq: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, sender: &Address) -> usize {
        (fnv1a(sender.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Submits a transaction, applying the admission, replacement and
    /// eviction policies described in the [crate docs](crate).
    ///
    /// Capacity is enforced per shard (`capacity / shards` each, rounded
    /// up), so a pool never holds more than ~`capacity + shards` pending
    /// transactions and fee pressure on one hot shard cannot starve others.
    ///
    /// # Errors
    ///
    /// Returns a [`MempoolError`] when the nonce was already consumed, a
    /// replacement does not raise the fee, or a full shard's fee floor is
    /// not outbid. The pool is unchanged on error.
    pub fn submit(&self, tx: Transaction) -> Result<SubmitOutcome, MempoolError> {
        let shard_idx = self.shard_of(&tx.sender);
        let mut shard = self.shards[shard_idx].lock().expect("mempool shard");
        let queue = shard.senders.entry(tx.sender).or_default();

        if tx.nonce < queue.next {
            return Err(MempoolError::NonceTooLow {
                got: tx.nonce,
                expected: queue.next,
            });
        }

        let ready_end = queue.next + queue.ready.len() as u64;
        // Replacement: the (sender, nonce) slot is already pending.
        if tx.nonce < ready_end {
            let slot = (tx.nonce - queue.next) as usize;
            let existing = &queue.ready[slot];
            if tx.priority_fee <= existing.tx.priority_fee {
                return Err(MempoolError::ReplacementUnderpriced {
                    existing_fee: existing.tx.priority_fee,
                });
            }
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            queue.ready[slot] = PendingTx { tx, seq };
            return Ok(SubmitOutcome::Replaced);
        }
        if let Some(existing) = queue.gapped.get(&tx.nonce) {
            if tx.priority_fee <= existing.tx.priority_fee {
                return Err(MempoolError::ReplacementUnderpriced {
                    existing_fee: existing.tx.priority_fee,
                });
            }
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            queue.gapped.insert(tx.nonce, PendingTx { tx, seq });
            return Ok(SubmitOutcome::Replaced);
        }

        // Fresh insertion: make room first so the shard never overshoots.
        if shard.len >= self.shard_capacity {
            let (victim, fee_floor, _) = shard
                .cheapest_evictable()
                .expect("full shard has an evictable tx");
            if tx.priority_fee <= fee_floor {
                return Err(MempoolError::Underpriced { fee_floor });
            }
            let victim_queue = shard
                .senders
                .get_mut(&victim)
                .expect("victim sender exists");
            // evict_tail takes the last gapped entry first, so the evicted
            // transaction was ready iff the victim had no gapped entries.
            let tail_was_ready = victim_queue.gapped.is_empty();
            victim_queue.evict_tail().expect("victim has a tail");
            shard.len -= 1;
            if tail_was_ready {
                shard.ready -= 1;
            }
            self.evicted.fetch_add(1, Ordering::Relaxed);
            // The victim may be this very sender; `queue` is re-fetched
            // below either way.
        }

        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let queue = shard.senders.entry(tx.sender).or_default();
        let outcome = if tx.nonce == queue.next + queue.ready.len() as u64 {
            queue.ready.push_back(PendingTx { tx, seq });
            // Filling the hole may promote a contiguous gapped run.
            let mut promoted = 0;
            while let Some(entry) = queue
                .gapped
                .first_entry()
                .filter(|e| *e.key() == queue.next + queue.ready.len() as u64)
            {
                queue.ready.push_back(entry.remove());
                promoted += 1;
            }
            Ok(SubmitOutcome::Ready { promoted })
        } else {
            queue.gapped.insert(tx.nonce, PendingTx { tx, seq });
            Ok(SubmitOutcome::Queued)
        };
        shard.len += 1;
        if let Ok(SubmitOutcome::Ready { promoted }) = outcome {
            shard.ready += promoted + 1;
        }
        outcome
    }

    /// Records that the chain has consumed `sender`'s nonces below
    /// `next` — e.g. when a recovered node seeds a fresh pool from its
    /// rebuilt chain. Advances the sender's expected nonce (never
    /// backwards), drops pending transactions the boundary overran, and
    /// promotes gapped transactions the new boundary reaches.
    pub fn observe_consumed(&self, sender: Address, next: u64) {
        let shard_idx = self.shard_of(&sender);
        let mut shard = self.shards[shard_idx].lock().expect("mempool shard");
        let queue = shard.senders.entry(sender).or_default();
        if next <= queue.next {
            return;
        }
        let mut removed = 0usize;
        let mut removed_ready = 0usize;
        while queue.ready.front().is_some_and(|p| p.tx.nonce < next) {
            queue.ready.pop_front();
            removed += 1;
            removed_ready += 1;
        }
        // Contiguity means the surviving front (if any) is exactly `next`.
        queue.next = next;
        let mut promoted = 0usize;
        if queue.ready.is_empty() {
            while queue
                .gapped
                .first_key_value()
                .is_some_and(|(&nonce, _)| nonce < next)
            {
                queue.gapped.pop_first();
                removed += 1;
            }
            while let Some(entry) = queue
                .gapped
                .first_entry()
                .filter(|e| *e.key() == queue.next + queue.ready.len() as u64)
            {
                queue.ready.push_back(entry.remove());
                promoted += 1;
            }
        }
        shard.len -= removed;
        shard.ready = shard.ready + promoted - removed_ready;
    }

    /// Drains the highest-priority ready transactions into a batch whose
    /// total [`gas_limit`](Transaction::gas_limit) fits `gas_limit`.
    ///
    /// Transactions are taken strictly in `(priority_fee desc, arrival
    /// asc)` order across all senders, never skipping a sender's nonce: if
    /// a sender's next ready transaction does not fit the remaining gas,
    /// that sender contributes nothing further to this block (its later
    /// nonces cannot jump the queue). Drained transactions leave the pool
    /// permanently; the caller owns getting them into a durable block.
    ///
    /// Locks every shard for the duration, so assembly is a consistent
    /// snapshot and the result is deterministic for a given submission
    /// history.
    pub fn build_block(&self, gas_limit: u64) -> Vec<Transaction> {
        let mut guards: Vec<MutexGuard<'_, Shard>> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("mempool shard"))
            .collect();

        // Max-heap of each sender's ready head, keyed by priority.
        #[derive(PartialEq, Eq)]
        struct Head {
            fee: u64,
            seq_rev: std::cmp::Reverse<u64>,
            shard: usize,
            sender: Address,
        }
        impl Ord for Head {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                (self.fee, self.seq_rev).cmp(&(other.fee, other.seq_rev))
            }
        }
        impl PartialOrd for Head {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut heap: BinaryHeap<Head> = BinaryHeap::new();
        for (shard_idx, guard) in guards.iter().enumerate() {
            for (sender, queue) in &guard.senders {
                if let Some(head) = queue.ready.front() {
                    heap.push(Head {
                        fee: head.tx.priority_fee,
                        seq_rev: std::cmp::Reverse(head.seq),
                        shard: shard_idx,
                        sender: *sender,
                    });
                }
            }
        }

        let mut batch = Vec::new();
        let mut remaining = gas_limit;
        while let Some(head) = heap.pop() {
            let shard = &mut *guards[head.shard];
            let queue = shard
                .senders
                .get_mut(&head.sender)
                .expect("heap sender exists");
            let cost = queue
                .ready
                .front()
                .expect("heap head is ready")
                .tx
                .gas_limit;
            if cost > remaining {
                // Can't take this sender's next nonce ⇒ none of its later
                // nonces either. Drop the sender for this block.
                continue;
            }
            let taken = queue.ready.pop_front().expect("checked front");
            queue.next = taken.tx.nonce + 1;
            remaining -= cost;
            shard.len -= 1;
            shard.ready -= 1;
            batch.push(taken.tx);
            if let Some(next_head) = queue.ready.front() {
                heap.push(Head {
                    fee: next_head.tx.priority_fee,
                    seq_rev: std::cmp::Reverse(next_head.seq),
                    shard: head.shard,
                    sender: head.sender,
                });
            }
            if remaining == 0 {
                break;
            }
        }
        batch
    }

    /// Total pending transactions (ready + gapped).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("mempool shard").len)
            .sum()
    }

    /// True when no transactions are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy counters, summed across shards.
    pub fn stats(&self) -> MempoolStats {
        let mut stats = MempoolStats {
            evicted: self.evicted.load(Ordering::Relaxed),
            ..MempoolStats::default()
        };
        for shard in &self.shards {
            let guard = shard.lock().expect("mempool shard");
            stats.ready += guard.ready;
            stats.gapped += guard.len - guard.ready;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vm::{ArgValue, CallData};

    fn tx(sender: u64, nonce: u64, fee: u64) -> Transaction {
        Transaction::new(
            nonce,
            Address::from_index(sender),
            Address::from_name("Ballot"),
            CallData::new("vote", vec![ArgValue::Uint(0)]),
            21_000,
        )
        .priority_fee(fee)
    }

    #[test]
    fn observe_consumed_seeds_the_nonce_boundary() {
        let pool = Mempool::new(MempoolConfig::single_shard(16));
        // A recovered node: the chain already consumed nonces 0 and 1.
        pool.observe_consumed(Address::from_index(1), 2);
        assert_eq!(
            pool.submit(tx(1, 0, 5)),
            Err(MempoolError::NonceTooLow {
                got: 0,
                expected: 2
            })
        );
        assert_eq!(pool.submit(tx(1, 3, 5)), Ok(SubmitOutcome::Queued));
        assert_eq!(
            pool.submit(tx(1, 2, 5)),
            Ok(SubmitOutcome::Ready { promoted: 1 })
        );
        let stats = pool.stats();
        assert_eq!((stats.ready, stats.gapped), (2, 0));
    }

    #[test]
    fn observe_consumed_drops_overrun_and_promotes_reached() {
        let pool = Mempool::new(MempoolConfig::single_shard(16));
        assert_eq!(
            pool.submit(tx(1, 0, 5)),
            Ok(SubmitOutcome::Ready { promoted: 0 })
        );
        assert_eq!(
            pool.submit(tx(1, 1, 5)),
            Ok(SubmitOutcome::Ready { promoted: 0 })
        );
        assert_eq!(pool.submit(tx(1, 3, 5)), Ok(SubmitOutcome::Queued));
        assert_eq!(pool.submit(tx(1, 4, 5)), Ok(SubmitOutcome::Queued));
        // The chain consumed 0..=2 elsewhere: 0 and 1 are stale, the gap
        // at 2 is filled from the outside, so 3 and 4 promote.
        pool.observe_consumed(Address::from_index(1), 3);
        let stats = pool.stats();
        assert_eq!((stats.ready, stats.gapped), (2, 0));
        assert_eq!(pool.len(), 2);
        let nonces: Vec<u64> = pool.build_block(u64::MAX).iter().map(|t| t.nonce).collect();
        assert_eq!(nonces, vec![3, 4]);
        // Never moves backwards.
        pool.observe_consumed(Address::from_index(1), 1);
        assert_eq!(
            pool.submit(tx(1, 4, 5)),
            Err(MempoolError::NonceTooLow {
                got: 4,
                expected: 5
            })
        );
    }

    #[test]
    fn in_order_arrivals_are_ready() {
        let pool = Mempool::new(MempoolConfig::single_shard(16));
        assert_eq!(
            pool.submit(tx(1, 0, 5)),
            Ok(SubmitOutcome::Ready { promoted: 0 })
        );
        assert_eq!(
            pool.submit(tx(1, 1, 5)),
            Ok(SubmitOutcome::Ready { promoted: 0 })
        );
        let stats = pool.stats();
        assert_eq!((stats.ready, stats.gapped), (2, 0));
    }

    #[test]
    fn gap_parks_and_fill_promotes() {
        let pool = Mempool::new(MempoolConfig::single_shard(16));
        assert_eq!(pool.submit(tx(1, 2, 5)), Ok(SubmitOutcome::Queued));
        assert_eq!(pool.submit(tx(1, 1, 5)), Ok(SubmitOutcome::Queued));
        let stats = pool.stats();
        assert_eq!((stats.ready, stats.gapped), (0, 2));
        // Nonce 0 fills the hole and promotes 1 and 2.
        assert_eq!(
            pool.submit(tx(1, 0, 5)),
            Ok(SubmitOutcome::Ready { promoted: 2 })
        );
        let stats = pool.stats();
        assert_eq!((stats.ready, stats.gapped), (3, 0));
    }

    #[test]
    fn build_block_takes_priority_order_within_gas() {
        let pool = Mempool::new(MempoolConfig::single_shard(16));
        pool.submit(tx(1, 0, 1)).unwrap();
        pool.submit(tx(2, 0, 9)).unwrap();
        pool.submit(tx(3, 0, 5)).unwrap();
        let batch = pool.build_block(2 * 21_000);
        let fees: Vec<u64> = batch.iter().map(|t| t.priority_fee).collect();
        assert_eq!(fees, vec![9, 5]);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn build_block_never_skips_a_nonce() {
        let pool = Mempool::new(MempoolConfig::single_shard(16));
        // Sender 1: cheap nonce 0, expensive nonce 1. The expensive one
        // cannot jump its cheap predecessor.
        pool.submit(tx(1, 0, 1)).unwrap();
        pool.submit(tx(1, 1, 99)).unwrap();
        pool.submit(tx(2, 0, 5)).unwrap();
        let batch = pool.build_block(3 * 21_000);
        let order: Vec<(u64, u64)> = batch.iter().map(|t| (t.nonce, t.priority_fee)).collect();
        assert_eq!(order, vec![(0, 5), (0, 1), (1, 99)]);
    }

    #[test]
    fn drained_nonces_cannot_return() {
        let pool = Mempool::new(MempoolConfig::single_shard(16));
        pool.submit(tx(1, 0, 5)).unwrap();
        assert_eq!(pool.build_block(u64::MAX).len(), 1);
        assert_eq!(
            pool.submit(tx(1, 0, 50)),
            Err(MempoolError::NonceTooLow {
                got: 0,
                expected: 1
            })
        );
        // The next nonce is ready immediately.
        assert_eq!(
            pool.submit(tx(1, 1, 5)),
            Ok(SubmitOutcome::Ready { promoted: 0 })
        );
    }

    #[test]
    fn replacement_requires_a_strictly_higher_fee() {
        let pool = Mempool::new(MempoolConfig::single_shard(16));
        pool.submit(tx(1, 0, 5)).unwrap();
        assert_eq!(
            pool.submit(tx(1, 0, 5)),
            Err(MempoolError::ReplacementUnderpriced { existing_fee: 5 })
        );
        assert_eq!(pool.submit(tx(1, 0, 6)), Ok(SubmitOutcome::Replaced));
        assert_eq!(pool.len(), 1);
        // Gapped slots follow the same rule.
        pool.submit(tx(1, 5, 3)).unwrap();
        assert_eq!(
            pool.submit(tx(1, 5, 2)),
            Err(MempoolError::ReplacementUnderpriced { existing_fee: 3 })
        );
        assert_eq!(pool.submit(tx(1, 5, 4)), Ok(SubmitOutcome::Replaced));
    }

    #[test]
    fn full_pool_evicts_cheapest_tail_or_rejects() {
        let pool = Mempool::new(MempoolConfig::single_shard(2));
        pool.submit(tx(1, 0, 5)).unwrap();
        pool.submit(tx(2, 0, 3)).unwrap();
        // Equal bid loses to the incumbent.
        assert_eq!(
            pool.submit(tx(3, 0, 3)),
            Err(MempoolError::Underpriced { fee_floor: 3 })
        );
        // Higher bid evicts sender 2's tail.
        assert_eq!(
            pool.submit(tx(3, 0, 4)),
            Ok(SubmitOutcome::Ready { promoted: 0 })
        );
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.stats().evicted, 1);
        let batch = pool.build_block(u64::MAX);
        let senders: Vec<Address> = batch.iter().map(|t| t.sender).collect();
        assert_eq!(
            senders,
            vec![Address::from_index(1), Address::from_index(3)]
        );
    }

    #[test]
    fn eviction_takes_the_highest_nonce_not_a_middle_one() {
        let pool = Mempool::new(MempoolConfig::single_shard(3));
        pool.submit(tx(1, 0, 2)).unwrap();
        pool.submit(tx(1, 1, 9)).unwrap();
        pool.submit(tx(1, 2, 1)).unwrap();
        // Sender 1's evictable tx is nonce 2 (fee 1), not nonce 0 (fee 2):
        // evicting nonce 0 would orphan the rest.
        assert_eq!(
            pool.submit(tx(2, 0, 2)),
            Ok(SubmitOutcome::Ready { promoted: 0 })
        );
        let batch = pool.build_block(u64::MAX);
        let kept: Vec<(u64, u64)> = batch.iter().map(|t| (t.nonce, t.priority_fee)).collect();
        assert!(kept.contains(&(0, 2)) && kept.contains(&(1, 9)));
        assert!(!kept.contains(&(2, 1)));
    }

    #[test]
    fn replacement_never_trips_capacity() {
        let pool = Mempool::new(MempoolConfig::single_shard(1));
        pool.submit(tx(1, 0, 5)).unwrap();
        // A replacement at full capacity is in-place, not an insert+evict.
        assert_eq!(pool.submit(tx(1, 0, 6)), Ok(SubmitOutcome::Replaced));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.stats().evicted, 0);
    }

    #[test]
    fn ties_go_to_the_earlier_arrival() {
        let pool = Mempool::new(MempoolConfig::single_shard(16));
        pool.submit(tx(7, 0, 5)).unwrap();
        pool.submit(tx(3, 0, 5)).unwrap();
        let batch = pool.build_block(u64::MAX);
        let senders: Vec<Address> = batch.iter().map(|t| t.sender).collect();
        assert_eq!(
            senders,
            vec![Address::from_index(7), Address::from_index(3)]
        );
    }

    #[test]
    fn sharded_pool_agrees_with_itself() {
        // Two identically fed pools produce identical batches, shards or not.
        let a = Mempool::new(MempoolConfig {
            capacity: 64,
            shards: 4,
        });
        let b = Mempool::new(MempoolConfig {
            capacity: 64,
            shards: 4,
        });
        for sender in 0..10u64 {
            for nonce in 0..3u64 {
                let t = tx(sender, nonce, (sender * 7 + nonce) % 11);
                let _ = a.submit(t.clone());
                let _ = b.submit(t);
            }
        }
        assert_eq!(a.build_block(7 * 21_000), b.build_block(7 * 21_000));
        assert_eq!(a.len(), b.len());
    }
}
