//! The implicit call context (`msg` in Solidity).

use crate::address::Address;
use crate::value::Wei;

/// Details of the current invocation, equivalent to Solidity's global
/// `msg` variable.
///
/// # Example
///
/// ```
/// use cc_vm::{Msg, Address, Wei};
/// let msg = Msg::from_sender(Address::from_index(4));
/// assert!(msg.value.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Msg {
    /// The account that invoked the function (`msg.sender`).
    pub sender: Address,
    /// The currency attached to the call (`msg.value`).
    pub value: Wei,
}

impl Msg {
    /// A call from `sender` with no attached value.
    pub fn from_sender(sender: Address) -> Self {
        Msg {
            sender,
            value: Wei::ZERO,
        }
    }

    /// A call from `sender` carrying `value`.
    pub fn with_value(sender: Address, value: Wei) -> Self {
        Msg { sender, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let a = Address::from_index(1);
        assert_eq!(Msg::from_sender(a).value, Wei::ZERO);
        assert_eq!(Msg::with_value(a, Wei::new(5)).value, Wei::new(5));
        assert_eq!(Msg::from_sender(a).sender, a);
    }
}
