//! Synthetic interpretation load.
//!
//! The paper's prototype executed hand-translated Scala contracts on the
//! JVM through ScalaSTM with JIT compilation disabled: one transaction
//! costs tens to hundreds of microseconds, so a 200-transaction block runs
//! for tens of milliseconds and the coordination cost of speculation (lock
//! manager, thread pool, schedule capture) is a small fraction of the
//! work. A native Rust hash-map operation costs tens of *nano*seconds; at
//! that scale no concurrency scheme can pay for its own bookkeeping and
//! every speedup would collapse to ~0.2×, which tells us nothing about the
//! paper's claims.
//!
//! To preserve the workload's cost model we therefore charge a small,
//! deterministic amount of CPU work per unit of *storage/computation gas*
//! ([`crate::GasSchedule::work_per_gas`], default 2 "mix" iterations per
//! gas). This stands in for EVM/JVM interpretation of the contract body.
//! It is applied for storage operations, calls, logs and explicit
//! computation steps — not for the fixed per-transaction base charge — so
//! conflicting transactions still serialize over the bulk of their work
//! exactly as they would on the paper's substrate. The substitution is
//! recorded in DESIGN.md.

use std::hint::black_box;

/// Burns a deterministic amount of CPU proportional to `units`, using an
/// integer mixing loop the optimizer cannot elide.
///
/// One unit is roughly a nanosecond on contemporary hardware; callers pick
/// the scale via [`crate::GasSchedule::work_per_gas`].
#[inline]
pub fn synthetic_load(units: u64) {
    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
    for i in 0..units {
        // SplitMix64-style mixing: cheap, branch-free, dependency-carried
        // so it cannot be vectorized away.
        acc = acc.wrapping_add(0x9e37_79b9_7f4a_7c15 ^ i);
        acc ^= acc >> 30;
        acc = acc.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        acc ^= acc >> 27;
    }
    black_box(acc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_units_is_a_noop() {
        synthetic_load(0);
    }

    #[test]
    fn load_scales_roughly_linearly() {
        use std::time::Instant;
        let start = Instant::now();
        synthetic_load(200_000);
        let small = start.elapsed();
        let start = Instant::now();
        synthetic_load(2_000_000);
        let large = start.elapsed();
        // Very loose bound: 10x the work should take clearly more time.
        assert!(large > small);
    }
}
