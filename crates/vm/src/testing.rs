//! Small contracts used by this crate's own tests, doctests and
//! downstream smoke tests. The real benchmark contracts (Ballot,
//! SimpleAuction, EtherDoc) live in the `cc-contracts` crate.

use crate::abi::{ArgValue, CallData, ReturnValue};
use crate::address::Address;
use crate::context::CallContext;
use crate::contract::{Contract, ContractKind};
use crate::error::VmError;
use crate::snapshot::ContractSnapshot;
use crate::storage::{StorageCell, StorageCounterMap, StorageMap};
use crate::value::Wei;

/// A tiny contract with a per-sender counter, a global total and a
/// deposit box — enough surface to exercise every storage wrapper, gas
/// accounting, revert and events.
#[derive(Debug)]
pub struct CounterContract {
    address: Address,
    counts: StorageMap<Address, u64>,
    total: StorageCounterMap<u8>,
    deposits: StorageCell<u128>,
}

impl CounterContract {
    /// Deploys the counter at `address`.
    pub fn new(address: Address) -> Self {
        let tag = address.to_hex();
        CounterContract {
            address,
            counts: StorageMap::new(&format!("Counter.counts.{tag}")),
            total: StorageCounterMap::new(&format!("Counter.total.{tag}")),
            deposits: StorageCell::new(&format!("Counter.deposits.{tag}"), 0),
        }
    }

    /// Non-transactional view of a sender's count (tests only).
    pub fn count_of(&self, sender: &Address) -> u64 {
        self.counts.peek(sender).unwrap_or(0)
    }

    /// Non-transactional view of the global total (tests only).
    pub fn total(&self) -> u64 {
        self.total.peek(&0)
    }
}

impl Contract for CounterContract {
    fn kind(&self) -> ContractKind {
        ContractKind("Counter")
    }

    fn address(&self) -> Address {
        self.address
    }

    fn call(&self, ctx: &mut CallContext<'_>, call: &CallData) -> Result<ReturnValue, VmError> {
        match call.function.as_str() {
            "increment" => {
                let delta = call.arg(0)?.as_uint()? as u64;
                let sender = ctx.sender();
                self.counts.update_or(ctx, sender, 0, |c| *c += delta)?;
                self.total.add(ctx, 0, delta)?;
                ctx.emit("Incremented", vec![ArgValue::Uint(u128::from(delta))])?;
                Ok(ReturnValue::Uint(u128::from(delta)))
            }
            "increment_then_fail" => {
                let delta = call.arg(0)?.as_uint()? as u64;
                let sender = ctx.sender();
                self.counts.update_or(ctx, sender, 0, |c| *c += delta)?;
                self.total.add(ctx, 0, delta)?;
                ctx.throw("deliberate failure after mutation")
            }
            "get" => {
                let who = call.arg(0)?.as_address()?;
                let count = self.counts.get(ctx, &who)?.unwrap_or(0);
                Ok(ReturnValue::Uint(u128::from(count)))
            }
            "total" => Ok(ReturnValue::Uint(u128::from(self.total.get(ctx, &0)?))),
            "deposit" => {
                let value = ctx.msg().value;
                self.deposits.modify(ctx, |d| *d += value.amount())?;
                Ok(ReturnValue::Amount(Wei::new(self.deposits.get(ctx)?)))
            }
            other => Err(VmError::UnknownFunction {
                function: other.to_string(),
            }),
        }
    }

    fn snapshot(&self) -> ContractSnapshot {
        ContractSnapshot::new(
            "Counter",
            self.address,
            vec![
                self.counts.snapshot_field(),
                self.total.snapshot_field(),
                self.deposits.snapshot_field(),
            ],
        )
    }
}

/// A contract that forwards calls to a [`CounterContract`], used to test
/// nested speculative actions.
#[derive(Debug)]
pub struct ProxyContract {
    address: Address,
    target: Address,
    forwarded: StorageCell<u64>,
}

impl ProxyContract {
    /// Deploys a proxy at `address` pointing at `target`.
    pub fn new(address: Address, target: Address) -> Self {
        ProxyContract {
            address,
            target,
            forwarded: StorageCell::new(&format!("Proxy.forwarded.{}", address.to_hex()), 0),
        }
    }
}

impl Contract for ProxyContract {
    fn kind(&self) -> ContractKind {
        ContractKind("Proxy")
    }

    fn address(&self) -> Address {
        self.address
    }

    fn call(&self, ctx: &mut CallContext<'_>, call: &CallData) -> Result<ReturnValue, VmError> {
        match call.function.as_str() {
            // Forward an increment to the target contract.
            "proxy_increment" => {
                let delta = call.arg(0)?.as_uint()?;
                self.forwarded.modify(ctx, |n| *n += 1)?;
                ctx.call_contract(
                    self.target,
                    &CallData::new("increment", vec![ArgValue::Uint(delta)]),
                    Wei::ZERO,
                )
            }
            // Make two nested calls, the second of which fails; swallow the
            // failure and report how many succeeded. Exercises child-abort
            // without parent-abort.
            "proxy_try_both" => {
                let delta = call.arg(0)?.as_uint()?;
                let mut succeeded = 0u128;
                if ctx
                    .call_contract(
                        self.target,
                        &CallData::new("increment", vec![ArgValue::Uint(delta)]),
                        Wei::ZERO,
                    )
                    .is_ok()
                {
                    succeeded += 1;
                }
                if ctx
                    .call_contract(
                        self.target,
                        &CallData::new("increment_then_fail", vec![ArgValue::Uint(delta)]),
                        Wei::ZERO,
                    )
                    .is_ok()
                {
                    succeeded += 1;
                }
                Ok(ReturnValue::Uint(succeeded))
            }
            other => Err(VmError::UnknownFunction {
                function: other.to_string(),
            }),
        }
    }

    fn snapshot(&self) -> ContractSnapshot {
        ContractSnapshot::new("Proxy", self.address, vec![self.forwarded.snapshot_field()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Msg;
    use crate::world::World;
    use std::sync::Arc;

    #[test]
    fn counter_state_helpers() {
        let world = World::new();
        let addr = Address::from_name("counter-helpers");
        let counter = Arc::new(CounterContract::new(addr));
        world.deploy(counter.clone());

        let sender = Address::from_index(3);
        let txn = world.stm().begin();
        world.call(
            &txn,
            Msg::from_sender(sender),
            addr,
            &CallData::new("increment", vec![ArgValue::Uint(2)]),
            1_000_000,
        );
        world.call(
            &txn,
            Msg::from_sender(sender),
            addr,
            &CallData::new("increment", vec![ArgValue::Uint(5)]),
            1_000_000,
        );
        txn.commit().unwrap();
        assert_eq!(counter.count_of(&sender), 7);
        assert_eq!(counter.total(), 7);
    }

    #[test]
    fn get_and_total_functions() {
        let world = World::new();
        let addr = Address::from_name("counter-get");
        world.deploy(Arc::new(CounterContract::new(addr)));
        let sender = Address::from_index(3);
        let txn = world.stm().begin();
        world.call(
            &txn,
            Msg::from_sender(sender),
            addr,
            &CallData::new("increment", vec![ArgValue::Uint(2)]),
            1_000_000,
        );
        let r = world.call(
            &txn,
            Msg::from_sender(sender),
            addr,
            &CallData::new("get", vec![ArgValue::Addr(sender)]),
            1_000_000,
        );
        assert_eq!(r.output, ReturnValue::Uint(2));
        let t = world.call(
            &txn,
            Msg::from_sender(sender),
            addr,
            &CallData::nullary("total"),
            1_000_000,
        );
        assert_eq!(t.output, ReturnValue::Uint(2));
        txn.commit().unwrap();
    }
}
