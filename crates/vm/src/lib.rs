//! Smart-contract execution substrate.
//!
//! The paper evaluates its concurrency scheme on Solidity contracts running
//! on the Ethereum virtual machine (translated to Scala/JVM in the
//! authors' prototype). This crate provides the equivalent substrate for
//! the Rust reproduction:
//!
//! * [`Address`] and [`Wei`] — account identifiers and currency amounts,
//! * [`Msg`] — the implicit `msg` call context (`msg.sender`, `msg.value`),
//! * [`GasMeter`] / [`GasSchedule`] — per-operation gas accounting with the
//!   Solidity `throw`-style out-of-gas abort,
//! * [`VmError`] — contract-level failure (throw/revert, out of gas, bad
//!   call), distinct from STM-level conflicts,
//! * [`storage`] — `StorageMap` / `StorageCell` / `StorageVec` /
//!   `StorageCounterMap`, thin gas-charging wrappers over the boosted
//!   collections of [`cc_stm`],
//! * [`Contract`] + [`World`] — the contract trait, registry and the entry
//!   point used by miners and validators to execute one call descriptor
//!   inside a speculative (or replay) transaction.
//!
//! # Example
//!
//! ```
//! use cc_vm::{Address, CallData, ArgValue, World, Msg, Wei};
//! use cc_vm::testing::CounterContract;
//! use std::sync::Arc;
//!
//! let world = World::new();
//! let counter_addr = Address::from_index(1);
//! world.deploy(Arc::new(CounterContract::new(counter_addr)));
//!
//! let stm = world.stm().clone();
//! let txn = stm.begin();
//! let receipt = world.call(
//!     &txn,
//!     Msg { sender: Address::from_index(9), value: Wei::ZERO },
//!     counter_addr,
//!     &CallData::new("increment", vec![ArgValue::Uint(5)]),
//!     1_000_000,
//! );
//! txn.commit().unwrap();
//! assert!(receipt.succeeded());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abi;
pub mod address;
pub mod context;
pub mod contract;
pub mod error;
pub mod event;
pub mod gas;
pub mod load;
pub mod msg;
pub mod receipt;
pub mod snapshot;
pub mod storage;
pub mod testing;
pub mod value;
pub mod world;

pub use abi::{ArgValue, CallData, ReturnValue};
pub use address::Address;
pub use context::{CallContext, TxnRef, TxnSavepoint};
pub use contract::{Contract, ContractKind};
pub use error::VmError;
pub use event::Event;
pub use gas::{GasMeter, GasSchedule};
pub use msg::Msg;
pub use receipt::{ExecutionStatus, Receipt};
pub use snapshot::{ContractSnapshot, FieldSnapshot, WorldSnapshot};
pub use storage::{StorageCell, StorageCounterMap, StorageMap, StorageVec};
pub use value::Wei;
pub use world::World;
