//! The contract trait and contract kinds.

use crate::abi::{CallData, ReturnValue};
use crate::address::Address;
use crate::context::CallContext;
use crate::error::VmError;
use crate::snapshot::ContractSnapshot;
use std::fmt;

/// A human-readable contract kind (e.g. `"Ballot"`), used in snapshots and
/// diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContractKind(pub &'static str);

impl fmt::Display for ContractKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// A deployed smart contract.
///
/// Contracts are ordinary Rust structs whose persistent state lives in the
/// [`crate::storage`] wrappers; `call` dispatches a [`CallData`] descriptor
/// to the corresponding function. The paper's prototype translated the
/// Solidity sources into Scala by hand; here they are translated into
/// Rust, with the same function-per-function structure.
///
/// Implementations must be `Send + Sync`: the same contract object is
/// invoked concurrently by the miner's speculative worker threads, with
/// all synchronization provided by the boosted storage underneath.
pub trait Contract: Send + Sync {
    /// The contract kind (used in snapshots and diagnostics).
    fn kind(&self) -> ContractKind;

    /// The address this contract is deployed at.
    fn address(&self) -> Address;

    /// Dispatches one function call.
    ///
    /// # Errors
    ///
    /// * [`VmError::Revert`] for contract-level `throw`;
    /// * [`VmError::UnknownFunction`] / [`VmError::BadArguments`] for
    ///   malformed calls;
    /// * [`VmError::OutOfGas`] when the meter is exhausted;
    /// * [`VmError::Stm`] when the enclosing speculative transaction must
    ///   retry.
    fn call(&self, ctx: &mut CallContext<'_>, call: &CallData) -> Result<ReturnValue, VmError>;

    /// A canonical snapshot of the contract's entire persistent state,
    /// used for state-root computation and cross-execution equality
    /// checks.
    fn snapshot(&self) -> ContractSnapshot;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(ContractKind("Ballot").to_string(), "Ballot");
    }
}
