//! Contract-level execution errors.

use cc_stm::StmError;
use std::fmt;

/// Failure of one contract invocation.
///
/// A `VmError` terminates and reverts the *contract call* (Solidity
/// `throw`), but — unlike an STM conflict — it does **not** mean the
/// speculative transaction must retry: a reverted call is a legitimate
/// outcome that is recorded in the receipt and re-produced by validators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Explicit `throw`/`revert` by contract logic (e.g. double vote).
    Revert {
        /// Human-readable reason, recorded in the receipt.
        reason: String,
    },
    /// The gas limit was exhausted.
    OutOfGas {
        /// The limit that was in force.
        limit: u64,
        /// The amount that would have been needed.
        needed: u64,
    },
    /// The call named a function the contract does not export.
    UnknownFunction {
        /// The requested function name.
        function: String,
    },
    /// The call's arguments did not match the function signature.
    BadArguments {
        /// Description of the mismatch.
        expected: String,
    },
    /// The call targeted an address with no deployed contract.
    UnknownContract,
    /// The speculative runtime aborted the enclosing transaction (deadlock
    /// victim). Propagated so the miner can retry the whole transaction.
    Stm(StmError),
}

impl VmError {
    /// Convenience constructor for contract `throw`.
    pub fn revert(reason: impl Into<String>) -> Self {
        VmError::Revert {
            reason: reason.into(),
        }
    }

    /// Whether the error is an STM-level conflict that warrants retrying
    /// the whole speculative transaction (as opposed to a contract-level
    /// failure that simply reverts the call).
    pub fn is_stm_retry(&self) -> bool {
        matches!(self, VmError::Stm(e) if e.is_retryable())
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Revert { reason } => write!(f, "contract reverted: {reason}"),
            VmError::OutOfGas { limit, needed } => {
                write!(f, "out of gas: needed {needed} with limit {limit}")
            }
            VmError::UnknownFunction { function } => write!(f, "unknown function `{function}`"),
            VmError::BadArguments { expected } => write!(f, "bad arguments: expected {expected}"),
            VmError::UnknownContract => f.write_str("no contract deployed at target address"),
            VmError::Stm(e) => write!(f, "speculative execution aborted: {e}"),
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Stm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StmError> for VmError {
    fn from(value: StmError) -> Self {
        VmError::Stm(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_stm::{LockSpace, TxnId};

    #[test]
    fn retry_classification() {
        let deadlock = VmError::Stm(StmError::Deadlock {
            victim: TxnId(1),
            lock: LockSpace::new("x").whole(),
        });
        assert!(deadlock.is_stm_retry());
        assert!(!VmError::revert("double vote").is_stm_retry());
        assert!(!VmError::OutOfGas {
            limit: 1,
            needed: 2
        }
        .is_stm_retry());
    }

    #[test]
    fn display_strings() {
        assert!(VmError::revert("nope").to_string().contains("nope"));
        assert!(VmError::UnknownFunction {
            function: "vote".into()
        }
        .to_string()
        .contains("vote"));
        assert!(VmError::UnknownContract.to_string().contains("contract"));
        assert!(VmError::BadArguments {
            expected: "uint".into()
        }
        .to_string()
        .contains("uint"));
    }

    #[test]
    fn stm_error_converts() {
        let e: VmError = StmError::TransactionClosed.into();
        assert!(matches!(e, VmError::Stm(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
