//! The per-call execution context handed to contract code.

use crate::abi::{ArgValue, CallData, ReturnValue};
use crate::address::Address;
use crate::error::VmError;
use crate::event::Event;
use crate::gas::GasMeter;
use crate::msg::Msg;
use crate::world::{ContractRegistry, World};
use cc_mvcc::{MvccSavepoint, MvccTxn};
use cc_stm::{Savepoint, Transaction};
use parking_lot::Mutex;
use std::sync::Arc;

/// Maximum depth of nested contract calls (Ethereum's limit is 1024; a
/// small bound is plenty for the reproduced workloads and keeps runaway
/// recursion from overflowing the stack).
pub const MAX_CALL_DEPTH: usize = 64;

/// The concurrency-control seam: a borrowed handle to whichever
/// transaction flavor the block is being executed under.
///
/// Contract code never sees this distinction — the storage wrappers
/// dispatch each operation to the pessimistic boosted collection
/// ([`cc_stm::Transaction`]) or the optimistic versioned overlay
/// ([`cc_mvcc::MvccTxn`]) behind the same gas-charging API, and both
/// flavors support the savepoint/nested-action semantics the VM relies on
/// for Solidity `throw` handling.
#[derive(Clone, Copy)]
pub enum TxnRef<'a> {
    /// A pessimistic transactional-boosting transaction (abstract locks,
    /// in-place writes, typed undo log).
    Stm(&'a Transaction),
    /// An optimistic multi-version transaction (snapshot reads, buffered
    /// writes, first-committer-wins validation).
    Mvcc(&'a MvccTxn<'a>),
}

/// A rollback point valid for the transaction flavor it was taken from.
#[derive(Debug, Clone, Copy)]
pub enum TxnSavepoint {
    /// Position in a pessimistic transaction's undo log.
    Stm(Savepoint),
    /// Position in an optimistic transaction's write-buffer journal.
    Mvcc(MvccSavepoint),
}

impl<'a> TxnRef<'a> {
    /// Marks a rollback point: storage effects after it can be undone
    /// while the transaction keeps its footprint (locks taken, keys read).
    pub fn savepoint(self) -> TxnSavepoint {
        match self {
            TxnRef::Stm(txn) => TxnSavepoint::Stm(txn.savepoint()),
            TxnRef::Mvcc(txn) => TxnSavepoint::Mvcc(txn.savepoint()),
        }
    }

    /// Rolls tentative storage effects back to `savepoint`.
    ///
    /// # Panics
    ///
    /// Panics if the savepoint came from the other transaction flavor.
    pub fn rollback_to(self, savepoint: TxnSavepoint) {
        match (self, savepoint) {
            (TxnRef::Stm(txn), TxnSavepoint::Stm(sp)) => txn.rollback_to(sp),
            (TxnRef::Mvcc(txn), TxnSavepoint::Mvcc(sp)) => txn.rollback_to(sp),
            _ => panic!("savepoint taken under a different concurrency-control flavor"),
        }
    }

    /// Runs `body` as a nested speculative action: when it fails, its
    /// storage effects are rolled back (and, under pessimistic control,
    /// the locks it newly acquired are released) without aborting the
    /// enclosing transaction.
    ///
    /// # Errors
    ///
    /// Propagates `body`'s error after undoing its effects.
    pub fn nested<R, E>(self, body: impl FnOnce(TxnRef<'_>) -> Result<R, E>) -> Result<R, E> {
        match self {
            TxnRef::Stm(txn) => txn.nested(|child| body(TxnRef::Stm(child))),
            TxnRef::Mvcc(txn) => txn.nested(|child| body(TxnRef::Mvcc(child))),
        }
    }
}

impl std::fmt::Debug for TxnRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnRef::Stm(_) => f.write_str("TxnRef::Stm"),
            TxnRef::Mvcc(txn) => write!(f, "TxnRef::Mvcc@{}", txn.begin_ts()),
        }
    }
}

/// Everything a contract function needs while executing: the enclosing
/// speculative transaction, the `msg` context, the gas meter, the event
/// sink and the ability to call other contracts.
///
/// Contract code receives `&mut CallContext` and uses
/// [`crate::StorageMap`]-style wrappers (which charge gas and go through
/// the boosted collections) for all persistent state.
pub struct CallContext<'a> {
    txn: TxnRef<'a>,
    world: &'a World,
    /// Frozen registry snapshot shared by the whole call tree: nested
    /// calls resolve contracts with a lock-free hash lookup instead of
    /// re-locking the world's registry on every hop.
    contracts: ContractRegistry,
    msg: Msg,
    this: Address,
    gas: Arc<Mutex<GasMeter>>,
    events: Vec<Event>,
    depth: usize,
}

impl<'a> CallContext<'a> {
    /// Creates the root context for one transaction. Normally called only
    /// by [`World::call`].
    pub(crate) fn root(
        txn: TxnRef<'a>,
        world: &'a World,
        contracts: ContractRegistry,
        msg: Msg,
        this: Address,
        gas: GasMeter,
    ) -> Self {
        CallContext {
            txn,
            world,
            contracts,
            msg,
            this,
            gas: Arc::new(Mutex::new(gas)),
            events: Vec::new(),
            depth: 0,
        }
    }

    /// The enclosing speculative (or replay) transaction.
    pub fn txn(&self) -> TxnRef<'a> {
        self.txn
    }

    /// The invocation context (`msg.sender`, `msg.value`).
    pub fn msg(&self) -> Msg {
        self.msg
    }

    /// Shorthand for `msg().sender`.
    pub fn sender(&self) -> Address {
        self.msg.sender
    }

    /// The address of the currently executing contract (`this`).
    pub fn this(&self) -> Address {
        self.this
    }

    /// Current nested-call depth (0 for the outermost call).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Gas consumed so far by the whole transaction (across nested calls).
    pub fn gas_used(&self) -> u64 {
        self.gas.lock().used()
    }

    /// Performs the synthetic interpretation work associated with `gas`
    /// units of contract execution (see [`crate::load`]).
    fn interpret(&self, gas: u64) {
        let factor = self.gas.lock().schedule().work_per_gas;
        if factor > 0 {
            crate::load::synthetic_load(gas.saturating_mul(factor));
        }
    }

    /// Charges `amount` gas.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] when the limit is exceeded.
    pub fn charge(&mut self, amount: u64) -> Result<(), VmError> {
        self.gas.lock().charge(amount)?;
        self.interpret(amount);
        Ok(())
    }

    /// Charges the base cost of a transaction. The base charge represents
    /// intrinsic per-transaction overhead (calldata handling, signature
    /// checking); it carries a reduced interpretation load (one quarter of
    /// its gas) since most of it is not contract-body execution.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] when the limit is exceeded.
    pub fn charge_tx_base(&mut self) -> Result<(), VmError> {
        let cost = {
            let mut gas = self.gas.lock();
            gas.charge_tx_base()?;
            gas.schedule().tx_base / 4
        };
        self.interpret(cost);
        Ok(())
    }

    /// Charges a storage read.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] when the limit is exceeded.
    pub fn charge_sload(&mut self) -> Result<(), VmError> {
        let cost = {
            let mut gas = self.gas.lock();
            gas.charge_sload()?;
            gas.schedule().sload
        };
        self.interpret(cost);
        Ok(())
    }

    /// Charges a storage write.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] when the limit is exceeded.
    pub fn charge_sstore(&mut self) -> Result<(), VmError> {
        let cost = {
            let mut gas = self.gas.lock();
            gas.charge_sstore()?;
            gas.schedule().sstore
        };
        self.interpret(cost);
        Ok(())
    }

    /// Charges `n` computation steps.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] when the limit is exceeded.
    pub fn charge_steps(&mut self, n: u64) -> Result<(), VmError> {
        let cost = {
            let mut gas = self.gas.lock();
            gas.charge_steps(n)?;
            gas.schedule().step.saturating_mul(n)
        };
        self.interpret(cost);
        Ok(())
    }

    /// Emits an event. Events are attached to the receipt only if the call
    /// (and its ancestors) complete successfully.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] when charging the log cost exceeds the
    /// limit.
    pub fn emit(&mut self, name: &str, data: Vec<ArgValue>) -> Result<(), VmError> {
        let cost = {
            let mut gas = self.gas.lock();
            gas.charge_log()?;
            gas.schedule().log
        };
        self.interpret(cost);
        self.events.push(Event::new(self.this, name, data));
        Ok(())
    }

    /// Takes the events accumulated so far (used by [`World::call`] when
    /// building the receipt).
    pub(crate) fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Aborts the current call with a `throw`, exactly like Solidity's
    /// `throw` statement: the caller of [`World::call`] rolls back all
    /// tentative storage changes of this call.
    ///
    /// # Errors
    ///
    /// Always returns [`VmError::Revert`]; provided so contract code can
    /// write `return ctx.throw("reason")`.
    pub fn throw<T>(&self, reason: &str) -> Result<T, VmError> {
        Err(VmError::revert(reason))
    }

    /// Calls another contract as a **nested speculative action** (paper
    /// §3): if the callee throws, its storage effects are rolled back and
    /// the locks it acquired are released, without aborting this (parent)
    /// call — the parent decides whether to propagate the failure.
    ///
    /// # Errors
    ///
    /// * [`VmError::UnknownContract`] if no contract is deployed at `to`;
    /// * [`VmError::OutOfGas`] if the call cost cannot be paid;
    /// * whatever error the callee produced (after its effects were undone);
    /// * STM conflicts are propagated untouched so the whole transaction
    ///   can retry.
    pub fn call_contract(
        &mut self,
        to: Address,
        call: &CallData,
        value: crate::value::Wei,
    ) -> Result<ReturnValue, VmError> {
        if self.depth + 1 >= MAX_CALL_DEPTH {
            return Err(VmError::revert("max call depth exceeded"));
        }
        let call_cost = {
            let mut gas = self.gas.lock();
            gas.charge_call()?;
            gas.schedule().call
        };
        self.interpret(call_cost);
        // Lock-free resolution against the call tree's frozen snapshot.
        let callee = self
            .contracts
            .get(&to)
            .cloned()
            .ok_or(VmError::UnknownContract)?;

        let mut child = CallContext {
            txn: self.txn,
            world: self.world,
            contracts: Arc::clone(&self.contracts),
            msg: Msg {
                sender: self.this,
                value,
            },
            this: to,
            gas: Arc::clone(&self.gas),
            events: Vec::new(),
            depth: self.depth + 1,
        };

        let result = self.txn.nested(|_| callee.call(&mut child, call));
        match result {
            Ok(ret) => {
                // Child events become visible only through the parent.
                self.events.append(&mut child.events);
                Ok(ret)
            }
            Err(err) => Err(err),
        }
    }
}

impl std::fmt::Debug for CallContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CallContext")
            .field("this", &self.this)
            .field("sender", &self.msg.sender)
            .field("depth", &self.depth)
            .field("gas_used", &self.gas_used())
            .field("events", &self.events.len())
            .finish()
    }
}
