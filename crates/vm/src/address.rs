//! Account and contract addresses.

use cc_primitives::{codec::Encoder, hex, sha256};
use std::fmt;

/// A 20-byte account identifier, analogous to an Ethereum address.
///
/// Addresses identify both externally-owned accounts (clients submitting
/// transactions) and deployed contracts.
///
/// # Example
///
/// ```
/// use cc_vm::Address;
/// let alice = Address::from_index(1);
/// let bob = Address::from_index(2);
/// assert_ne!(alice, bob);
/// assert_eq!(alice, Address::from_index(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The zero address (Solidity `address(0)`), used as "no delegate" /
    /// "no owner" sentinel.
    pub const ZERO: Address = Address([0u8; 20]);

    /// Derives a deterministic address from a small index. Convenient for
    /// workload generation and tests ("account #7").
    pub fn from_index(index: u64) -> Self {
        let digest = sha256(&{
            let mut enc = Encoder::with_capacity(16);
            enc.put_str("account");
            enc.put_u64(index);
            enc.into_bytes()
        });
        let mut bytes = [0u8; 20];
        bytes.copy_from_slice(&digest.as_bytes()[..20]);
        Address(bytes)
    }

    /// Derives a deterministic contract address from a human-readable name
    /// (e.g. `"Ballot"`).
    pub fn from_name(name: &str) -> Self {
        let digest = sha256(&{
            let mut enc = Encoder::with_capacity(name.len() + 9);
            enc.put_str("contract");
            enc.put_str(name);
            enc.into_bytes()
        });
        let mut bytes = [0u8; 20];
        bytes.copy_from_slice(&digest.as_bytes()[..20]);
        Address(bytes)
    }

    /// Raw bytes of the address.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Whether this is the zero address.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 20]
    }

    /// Hex rendering (40 characters, no `0x` prefix).
    pub fn to_hex(&self) -> String {
        hex::encode(&self.0)
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address(0x{}..)", &self.to_hex()[..8])
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<[u8; 20]> for Address {
    fn from(value: [u8; 20]) -> Self {
        Address(value)
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derived_addresses_are_deterministic_and_distinct() {
        assert_eq!(Address::from_index(3), Address::from_index(3));
        assert_ne!(Address::from_index(3), Address::from_index(4));
        assert_ne!(
            Address::from_name("Ballot"),
            Address::from_name("SimpleAuction")
        );
        assert_ne!(Address::from_index(1), Address::from_name("1"));
    }

    #[test]
    fn no_collisions_in_small_range() {
        let set: HashSet<Address> = (0..10_000).map(Address::from_index).collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn zero_address() {
        assert!(Address::ZERO.is_zero());
        assert!(!Address::from_index(0).is_zero());
        assert_eq!(Address::default(), Address::ZERO);
    }

    #[test]
    fn display_and_debug() {
        let a = Address::from_index(1);
        assert!(format!("{a}").starts_with("0x"));
        assert_eq!(format!("{a}").len(), 42);
        assert!(!format!("{a:?}").is_empty());
    }
}
