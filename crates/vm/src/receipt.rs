//! Transaction receipts.

use crate::abi::ReturnValue;
use crate::error::VmError;
use crate::event::Event;
use cc_primitives::codec::{DecodeError, Decoder, Encoder};
use std::fmt;

/// The outcome of executing one transaction's contract call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutionStatus {
    /// The call completed and its effects are included in the block state.
    Succeeded,
    /// The call reverted (`throw`); its tentative effects were rolled back.
    Reverted {
        /// Reason recorded at the revert site.
        reason: String,
    },
    /// The call ran out of gas; effects rolled back.
    OutOfGas,
    /// The call was malformed (unknown contract/function, bad arguments).
    Invalid {
        /// Description of the problem.
        reason: String,
    },
}

impl ExecutionStatus {
    /// Classifies a contract-level error into a receipt status.
    pub fn from_error(err: &VmError) -> ExecutionStatus {
        match err {
            VmError::Revert { reason } => ExecutionStatus::Reverted {
                reason: reason.clone(),
            },
            VmError::OutOfGas { .. } => ExecutionStatus::OutOfGas,
            VmError::Stm(e) => ExecutionStatus::Invalid {
                reason: format!("stm: {e}"),
            },
            other => ExecutionStatus::Invalid {
                reason: other.to_string(),
            },
        }
    }

    /// Stable one-byte discriminant for hashing.
    pub fn discriminant(&self) -> u8 {
        match self {
            ExecutionStatus::Succeeded => 0,
            ExecutionStatus::Reverted { .. } => 1,
            ExecutionStatus::OutOfGas => 2,
            ExecutionStatus::Invalid { .. } => 3,
        }
    }
}

impl fmt::Display for ExecutionStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionStatus::Succeeded => f.write_str("succeeded"),
            ExecutionStatus::Reverted { reason } => write!(f, "reverted: {reason}"),
            ExecutionStatus::OutOfGas => f.write_str("out of gas"),
            ExecutionStatus::Invalid { reason } => write!(f, "invalid: {reason}"),
        }
    }
}

/// The receipt of one executed transaction.
///
/// Validators re-derive receipts during replay and compare them against
/// the block's published receipts; any divergence rejects the block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// Index of the transaction within its block.
    pub tx_index: usize,
    /// Outcome of the call.
    pub status: ExecutionStatus,
    /// Gas consumed (also consumed when the call reverted).
    pub gas_used: u64,
    /// The function's return value (Unit for reverted calls).
    pub output: ReturnValue,
    /// Events emitted by the call (empty for reverted calls).
    pub events: Vec<Event>,
}

impl Receipt {
    /// Whether the call succeeded.
    pub fn succeeded(&self) -> bool {
        matches!(self.status, ExecutionStatus::Succeeded)
    }

    /// Canonical encoding for receipt-root hashing. Event payloads are
    /// included so a validator cannot silently drop them.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.tx_index as u64);
        enc.put_u8(self.status.discriminant());
        if let ExecutionStatus::Reverted { reason } | ExecutionStatus::Invalid { reason } =
            &self.status
        {
            enc.put_str(reason);
        }
        enc.put_u64(self.gas_used);
        self.output.encode(enc);
        enc.put_u64(self.events.len() as u64);
        for event in &self.events {
            event.encode(enc);
        }
    }

    /// Decodes a receipt written by [`Receipt::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Receipt, DecodeError> {
        let tx_index = dec.get_u64()? as usize;
        let status = match dec.get_u8()? {
            0 => ExecutionStatus::Succeeded,
            1 => ExecutionStatus::Reverted {
                reason: dec.get_string()?,
            },
            2 => ExecutionStatus::OutOfGas,
            3 => ExecutionStatus::Invalid {
                reason: dec.get_string()?,
            },
            _ => {
                return Err(DecodeError {
                    context: "unknown ExecutionStatus discriminant",
                })
            }
        };
        let gas_used = dec.get_u64()?;
        let output = ReturnValue::decode(dec)?;
        let n = dec.get_u64()? as usize;
        let mut events = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            events.push(Event::decode(dec)?);
        }
        Ok(Receipt {
            tx_index,
            status,
            gas_used,
            output,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::ArgValue;
    use crate::address::Address;

    fn receipt(status: ExecutionStatus) -> Receipt {
        Receipt {
            tx_index: 3,
            status,
            gas_used: 21_000,
            output: ReturnValue::Uint(1),
            events: vec![Event::new(
                Address::from_index(1),
                "E",
                vec![ArgValue::Bool(true)],
            )],
        }
    }

    #[test]
    fn status_classification() {
        assert_eq!(
            ExecutionStatus::from_error(&VmError::revert("double vote")),
            ExecutionStatus::Reverted {
                reason: "double vote".into()
            }
        );
        assert_eq!(
            ExecutionStatus::from_error(&VmError::OutOfGas {
                limit: 1,
                needed: 2
            }),
            ExecutionStatus::OutOfGas
        );
        assert!(matches!(
            ExecutionStatus::from_error(&VmError::UnknownContract),
            ExecutionStatus::Invalid { .. }
        ));
    }

    #[test]
    fn succeeded_flag() {
        assert!(receipt(ExecutionStatus::Succeeded).succeeded());
        assert!(!receipt(ExecutionStatus::OutOfGas).succeeded());
    }

    #[test]
    fn encoding_distinguishes_statuses() {
        let variants = [
            ExecutionStatus::Succeeded,
            ExecutionStatus::Reverted { reason: "x".into() },
            ExecutionStatus::OutOfGas,
            ExecutionStatus::Invalid { reason: "y".into() },
        ];
        let mut encodings = Vec::new();
        for v in variants {
            let mut enc = Encoder::new();
            receipt(v).encode(&mut enc);
            encodings.push(enc.into_bytes());
        }
        for i in 0..encodings.len() {
            for j in (i + 1)..encodings.len() {
                assert_ne!(encodings[i], encodings[j]);
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip_all_statuses() {
        let variants = [
            ExecutionStatus::Succeeded,
            ExecutionStatus::Reverted {
                reason: "double vote".into(),
            },
            ExecutionStatus::OutOfGas,
            ExecutionStatus::Invalid {
                reason: "unknown fn".into(),
            },
        ];
        for v in variants {
            let r = receipt(v);
            let mut enc = Encoder::new();
            r.encode(&mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(Receipt::decode(&mut dec).unwrap(), r);
            assert!(dec.is_empty());
        }
    }

    #[test]
    fn decode_rejects_unknown_status() {
        let mut enc = Encoder::new();
        enc.put_u64(0);
        enc.put_u8(9);
        let bytes = enc.into_bytes();
        assert!(Receipt::decode(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn discriminants_are_stable() {
        assert_eq!(ExecutionStatus::Succeeded.discriminant(), 0);
        assert_eq!(
            ExecutionStatus::Reverted {
                reason: String::new()
            }
            .discriminant(),
            1
        );
        assert_eq!(ExecutionStatus::OutOfGas.discriminant(), 2);
        assert_eq!(
            ExecutionStatus::Invalid {
                reason: String::new()
            }
            .discriminant(),
            3
        );
    }

    #[test]
    fn display() {
        assert_eq!(ExecutionStatus::Succeeded.to_string(), "succeeded");
        assert!(ExecutionStatus::Reverted { reason: "r".into() }
            .to_string()
            .contains('r'));
    }
}
