//! Contract events (Solidity `event` / `emit`).

use crate::abi::ArgValue;
use crate::address::Address;
use cc_primitives::codec::{DecodeError, Decoder, Encoder};
use std::fmt;

/// An event emitted during contract execution.
///
/// Events are collected in the [`crate::CallContext`] and surfaced in the
/// transaction [`crate::Receipt`]. Because they live in the call context
/// (not in shared storage) they are discarded automatically when a call
/// reverts, mirroring EVM semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The contract that emitted the event.
    pub contract: Address,
    /// Event name (e.g. `"HighestBidIncreased"`).
    pub name: String,
    /// Event payload.
    pub data: Vec<ArgValue>,
}

impl Event {
    /// Creates an event.
    pub fn new(contract: Address, name: impl Into<String>, data: Vec<ArgValue>) -> Self {
        Event {
            contract,
            name: name.into(),
            data,
        }
    }

    /// Canonical encoding. This is the exact byte layout receipts have
    /// always hashed inline, so receipt roots are unchanged by routing
    /// through this method.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_raw(self.contract.as_bytes());
        enc.put_str(&self.name);
        enc.put_u64(self.data.len() as u64);
        for arg in &self.data {
            arg.encode(enc);
        }
    }

    /// Decodes an event written by [`Event::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Event, DecodeError> {
        let raw = dec.get_raw(20)?;
        let mut bytes = [0u8; 20];
        bytes.copy_from_slice(raw);
        let contract = Address(bytes);
        let name = dec.get_string()?;
        let n = dec.get_u64()? as usize;
        let mut data = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            data.push(ArgValue::decode(dec)?);
        }
        Ok(Event {
            contract,
            name,
            data,
        })
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}::{}({} args)",
            self.contract,
            self.name,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let e = Event::new(Address::from_index(1), "Voted", vec![ArgValue::Uint(2)]);
        assert_eq!(e.name, "Voted");
        assert_eq!(e.data.len(), 1);
        assert!(format!("{e}").contains("Voted"));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let e = Event::new(
            Address::from_index(3),
            "HighestBidIncreased",
            vec![
                ArgValue::Addr(Address::from_index(4)),
                ArgValue::Uint(999),
                ArgValue::Str("note".into()),
            ],
        );
        let mut enc = Encoder::new();
        e.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Event::decode(&mut dec).unwrap(), e);
        assert!(dec.is_empty());
    }
}
