//! Contract events (Solidity `event` / `emit`).

use crate::abi::ArgValue;
use crate::address::Address;
use std::fmt;

/// An event emitted during contract execution.
///
/// Events are collected in the [`crate::CallContext`] and surfaced in the
/// transaction [`crate::Receipt`]. Because they live in the call context
/// (not in shared storage) they are discarded automatically when a call
/// reverts, mirroring EVM semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The contract that emitted the event.
    pub contract: Address,
    /// Event name (e.g. `"HighestBidIncreased"`).
    pub name: String,
    /// Event payload.
    pub data: Vec<ArgValue>,
}

impl Event {
    /// Creates an event.
    pub fn new(contract: Address, name: impl Into<String>, data: Vec<ArgValue>) -> Self {
        Event {
            contract,
            name: name.into(),
            data,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}::{}({} args)",
            self.contract,
            self.name,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let e = Event::new(Address::from_index(1), "Voted", vec![ArgValue::Uint(2)]);
        assert_eq!(e.name, "Voted");
        assert_eq!(e.data.len(), 1);
        assert!(format!("{e}").contains("Voted"));
    }
}
