//! Call descriptors: function names, argument values and return values.
//!
//! Transactions in a block are *data* — they must be stored, hashed and
//! replayed by validators — so calls are described by a small dynamic
//! value type rather than native Rust method calls.

use crate::address::Address;
use crate::error::VmError;
use crate::value::Wei;
use cc_primitives::codec::{DecodeError, Decoder, Encoder};
use std::fmt;

/// A dynamically-typed argument value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ArgValue {
    /// An unsigned integer (covers Solidity `uint`).
    Uint(u128),
    /// A boolean.
    Bool(bool),
    /// An account or contract address.
    Addr(Address),
    /// A 32-byte opaque value (Solidity `bytes32`), e.g. a document hash
    /// or proposal name.
    Bytes32([u8; 32]),
    /// A UTF-8 string.
    Str(String),
}

impl ArgValue {
    /// Interprets the value as `u128`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadArguments`] if the variant is not `Uint`.
    pub fn as_uint(&self) -> Result<u128, VmError> {
        match self {
            ArgValue::Uint(v) => Ok(*v),
            other => Err(VmError::BadArguments {
                expected: format!("uint, got {other:?}"),
            }),
        }
    }

    /// Interprets the value as an address.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadArguments`] if the variant is not `Addr`.
    pub fn as_address(&self) -> Result<Address, VmError> {
        match self {
            ArgValue::Addr(a) => Ok(*a),
            other => Err(VmError::BadArguments {
                expected: format!("address, got {other:?}"),
            }),
        }
    }

    /// Interprets the value as a bool.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadArguments`] if the variant is not `Bool`.
    pub fn as_bool(&self) -> Result<bool, VmError> {
        match self {
            ArgValue::Bool(b) => Ok(*b),
            other => Err(VmError::BadArguments {
                expected: format!("bool, got {other:?}"),
            }),
        }
    }

    /// Interprets the value as 32 opaque bytes.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadArguments`] if the variant is not `Bytes32`.
    pub fn as_bytes32(&self) -> Result<[u8; 32], VmError> {
        match self {
            ArgValue::Bytes32(b) => Ok(*b),
            other => Err(VmError::BadArguments {
                expected: format!("bytes32, got {other:?}"),
            }),
        }
    }

    /// Interprets the value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadArguments`] if the variant is not `Str`.
    pub fn as_str(&self) -> Result<&str, VmError> {
        match self {
            ArgValue::Str(s) => Ok(s),
            other => Err(VmError::BadArguments {
                expected: format!("string, got {other:?}"),
            }),
        }
    }

    /// Canonical encoding (used when hashing transactions into blocks).
    pub fn encode(&self, enc: &mut Encoder) {
        match self {
            ArgValue::Uint(v) => {
                enc.put_u8(0);
                enc.put_u128(*v);
            }
            ArgValue::Bool(b) => {
                enc.put_u8(1);
                enc.put_bool(*b);
            }
            ArgValue::Addr(a) => {
                enc.put_u8(2);
                enc.put_raw(a.as_bytes());
            }
            ArgValue::Bytes32(b) => {
                enc.put_u8(3);
                enc.put_raw(b);
            }
            ArgValue::Str(s) => {
                enc.put_u8(4);
                enc.put_str(s);
            }
        }
    }

    /// Decodes a value previously written by [`ArgValue::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<ArgValue, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(ArgValue::Uint(dec.get_u128()?)),
            1 => Ok(ArgValue::Bool(dec.get_bool()?)),
            2 => {
                let raw = dec.get_raw(20)?;
                let mut bytes = [0u8; 20];
                bytes.copy_from_slice(raw);
                Ok(ArgValue::Addr(Address(bytes)))
            }
            3 => {
                let raw = dec.get_raw(32)?;
                let mut bytes = [0u8; 32];
                bytes.copy_from_slice(raw);
                Ok(ArgValue::Bytes32(bytes))
            }
            4 => Ok(ArgValue::Str(dec.get_string()?)),
            _ => Err(DecodeError {
                context: "unknown ArgValue tag",
            }),
        }
    }
}

impl From<u128> for ArgValue {
    fn from(value: u128) -> Self {
        ArgValue::Uint(value)
    }
}

impl From<u64> for ArgValue {
    fn from(value: u64) -> Self {
        ArgValue::Uint(u128::from(value))
    }
}

impl From<bool> for ArgValue {
    fn from(value: bool) -> Self {
        ArgValue::Bool(value)
    }
}

impl From<Address> for ArgValue {
    fn from(value: Address) -> Self {
        ArgValue::Addr(value)
    }
}

impl From<&str> for ArgValue {
    fn from(value: &str) -> Self {
        ArgValue::Str(value.to_string())
    }
}

/// The value returned by a contract function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ReturnValue {
    /// Function returned nothing.
    #[default]
    Unit,
    /// An unsigned integer.
    Uint(u128),
    /// A boolean.
    Bool(bool),
    /// An address.
    Addr(Address),
    /// 32 opaque bytes.
    Bytes32([u8; 32]),
    /// An amount of currency.
    Amount(Wei),
}

impl ReturnValue {
    /// Interprets the return value as `u128`, or 0 for `Unit`.
    pub fn as_uint(&self) -> Option<u128> {
        match self {
            ReturnValue::Uint(v) => Some(*v),
            ReturnValue::Amount(w) => Some(w.amount()),
            _ => None,
        }
    }

    /// Interprets the return value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ReturnValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Canonical encoding (used when hashing receipts).
    pub fn encode(&self, enc: &mut Encoder) {
        match self {
            ReturnValue::Unit => enc.put_u8(0),
            ReturnValue::Uint(v) => {
                enc.put_u8(1);
                enc.put_u128(*v);
            }
            ReturnValue::Bool(b) => {
                enc.put_u8(2);
                enc.put_bool(*b);
            }
            ReturnValue::Addr(a) => {
                enc.put_u8(3);
                enc.put_raw(a.as_bytes());
            }
            ReturnValue::Bytes32(b) => {
                enc.put_u8(4);
                enc.put_raw(b);
            }
            ReturnValue::Amount(w) => {
                enc.put_u8(5);
                enc.put_u128(w.amount());
            }
        }
    }

    /// Decodes a value previously written by [`ReturnValue::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<ReturnValue, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(ReturnValue::Unit),
            1 => Ok(ReturnValue::Uint(dec.get_u128()?)),
            2 => Ok(ReturnValue::Bool(dec.get_bool()?)),
            3 => {
                let raw = dec.get_raw(20)?;
                let mut bytes = [0u8; 20];
                bytes.copy_from_slice(raw);
                Ok(ReturnValue::Addr(Address(bytes)))
            }
            4 => {
                let raw = dec.get_raw(32)?;
                let mut bytes = [0u8; 32];
                bytes.copy_from_slice(raw);
                Ok(ReturnValue::Bytes32(bytes))
            }
            5 => Ok(ReturnValue::Amount(Wei::new(dec.get_u128()?))),
            _ => Err(DecodeError {
                context: "unknown ReturnValue tag",
            }),
        }
    }
}

/// A call descriptor: the function to invoke and its arguments.
///
/// # Example
///
/// ```
/// use cc_vm::{CallData, ArgValue};
/// let call = CallData::new("vote", vec![ArgValue::Uint(2)]);
/// assert_eq!(call.function, "vote");
/// assert_eq!(call.arg(0).unwrap().as_uint().unwrap(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallData {
    /// Name of the contract function.
    pub function: String,
    /// Positional arguments.
    pub args: Vec<ArgValue>,
}

impl CallData {
    /// Creates a call descriptor.
    pub fn new(function: impl Into<String>, args: Vec<ArgValue>) -> Self {
        CallData {
            function: function.into(),
            args,
        }
    }

    /// A call with no arguments.
    pub fn nullary(function: impl Into<String>) -> Self {
        CallData::new(function, Vec::new())
    }

    /// Returns the `i`-th argument.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadArguments`] if the argument is missing.
    pub fn arg(&self, i: usize) -> Result<&ArgValue, VmError> {
        self.args.get(i).ok_or_else(|| VmError::BadArguments {
            expected: format!("at least {} argument(s) to `{}`", i + 1, self.function),
        })
    }

    /// Canonical encoding used for transaction hashing.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.function);
        enc.put_u64(self.args.len() as u64);
        for a in &self.args {
            a.encode(enc);
        }
    }

    /// Decodes a call descriptor written by [`CallData::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<CallData, DecodeError> {
        let function = dec.get_string()?;
        let n = dec.get_u64()? as usize;
        let mut args = Vec::with_capacity(n);
        for _ in 0..n {
            args.push(ArgValue::decode(dec)?);
        }
        Ok(CallData { function, args })
    }
}

impl fmt::Display for CallData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.function)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a:?}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_accessors() {
        assert_eq!(ArgValue::Uint(9).as_uint().unwrap(), 9);
        assert!(ArgValue::Bool(true).as_bool().unwrap());
        let a = Address::from_index(1);
        assert_eq!(ArgValue::Addr(a).as_address().unwrap(), a);
        assert_eq!(ArgValue::Bytes32([7; 32]).as_bytes32().unwrap(), [7; 32]);
        assert_eq!(ArgValue::Str("hi".into()).as_str().unwrap(), "hi");
        assert!(ArgValue::Uint(1).as_bool().is_err());
        assert!(ArgValue::Bool(false).as_uint().is_err());
        assert!(ArgValue::Uint(1).as_address().is_err());
        assert!(ArgValue::Uint(1).as_bytes32().is_err());
        assert!(ArgValue::Uint(1).as_str().is_err());
    }

    #[test]
    fn from_impls() {
        assert_eq!(ArgValue::from(5u64), ArgValue::Uint(5));
        assert_eq!(ArgValue::from(5u128), ArgValue::Uint(5));
        assert_eq!(ArgValue::from(true), ArgValue::Bool(true));
        assert_eq!(ArgValue::from("x"), ArgValue::Str("x".into()));
    }

    #[test]
    fn calldata_encode_decode_roundtrip() {
        let call = CallData::new(
            "delegate",
            vec![
                ArgValue::Addr(Address::from_index(7)),
                ArgValue::Uint(3),
                ArgValue::Bool(false),
                ArgValue::Bytes32([9; 32]),
                ArgValue::Str("memo".into()),
            ],
        );
        let mut enc = Encoder::new();
        call.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let decoded = CallData::decode(&mut dec).unwrap();
        assert_eq!(decoded, call);
        assert!(dec.is_empty());
    }

    #[test]
    fn missing_argument_is_reported() {
        let call = CallData::nullary("withdraw");
        assert!(matches!(call.arg(0), Err(VmError::BadArguments { .. })));
    }

    #[test]
    fn return_value_accessors() {
        assert_eq!(ReturnValue::Uint(4).as_uint(), Some(4));
        assert_eq!(ReturnValue::Amount(Wei::new(6)).as_uint(), Some(6));
        assert_eq!(ReturnValue::Unit.as_uint(), None);
        assert_eq!(ReturnValue::Bool(true).as_bool(), Some(true));
        assert_eq!(ReturnValue::Uint(1).as_bool(), None);
        assert_eq!(ReturnValue::default(), ReturnValue::Unit);
    }

    #[test]
    fn return_value_encoding_is_disjoint() {
        let variants = [
            ReturnValue::Unit,
            ReturnValue::Uint(1),
            ReturnValue::Bool(true),
            ReturnValue::Addr(Address::from_index(1)),
            ReturnValue::Bytes32([1; 32]),
            ReturnValue::Amount(Wei::new(1)),
        ];
        let encodings: Vec<Vec<u8>> = variants
            .iter()
            .map(|v| {
                let mut e = Encoder::new();
                v.encode(&mut e);
                e.into_bytes()
            })
            .collect();
        for i in 0..encodings.len() {
            for j in (i + 1)..encodings.len() {
                assert_ne!(encodings[i], encodings[j]);
            }
        }
    }

    #[test]
    fn return_value_encode_decode_roundtrip() {
        let variants = [
            ReturnValue::Unit,
            ReturnValue::Uint(77),
            ReturnValue::Bool(false),
            ReturnValue::Addr(Address::from_index(9)),
            ReturnValue::Bytes32([3; 32]),
            ReturnValue::Amount(Wei::new(1_000)),
        ];
        for v in variants {
            let mut enc = Encoder::new();
            v.encode(&mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(ReturnValue::decode(&mut dec).unwrap(), v);
            assert!(dec.is_empty());
        }

        let mut enc = Encoder::new();
        enc.put_u8(99);
        let bytes = enc.into_bytes();
        assert!(ReturnValue::decode(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn display_calldata() {
        let call = CallData::new("vote", vec![ArgValue::Uint(2)]);
        let s = format!("{call}");
        assert!(s.starts_with("vote("));
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut enc = Encoder::new();
        enc.put_u8(250);
        let bytes = enc.into_bytes();
        assert!(ArgValue::decode(&mut Decoder::new(&bytes)).is_err());
    }
}
