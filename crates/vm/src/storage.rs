//! Gas-charging storage wrappers over the interchangeable concurrency
//! backends.
//!
//! Contracts declare persistent state with these types. Every operation
//! takes the [`CallContext`]: it charges gas and then performs the
//! corresponding collection operation inside the enclosing transaction, so
//! state access is simultaneously metered and speculative.
//!
//! Each wrapper owns a **pessimistic** boosted collection (the
//! authoritative single-version state, used by [`TxnRef::Stm`]
//! transactions, seeding, snapshots and state roots) plus a lazily built
//! **optimistic** versioned overlay (used by [`TxnRef::Mvcc`]
//! transactions). The overlay treats the boosted collection as its
//! backing store via the small `*Base` adapter traits, shares its lock
//! space so both flavors report identical lock footprints, and is
//! registered with the world's [`cc_mvcc::MvccRuntime`] on first use so
//! block finalization flattens committed versions back into the boosted
//! base.

use crate::context::{CallContext, TxnRef};
use crate::error::VmError;
use crate::snapshot::{FieldSnapshot, ToBytes};
use cc_mvcc::{
    CellBase, MapBase, MvccTxn, TallyBase, VecBase, VersionedCell, VersionedCounterMap,
    VersionedMap, VersionedVec,
};
use cc_stm::{BoostedCell, BoostedCounterMap, BoostedMap, BoostedVec};
use std::hash::Hash;
use std::sync::{Arc, OnceLock};

/// Adapter: a boosted map as the single-version base of a versioned map.
struct MapBackend<K, V>(BoostedMap<K, V>);

impl<K, V> MapBase<K, V> for MapBackend<K, V>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn load(&self, key: &K) -> Option<V> {
        self.0.peek(key)
    }

    fn store(&self, key: &K, value: Option<V>) {
        match value {
            Some(v) => self.0.seed(key.clone(), v),
            None => self.0.seed_remove(key),
        }
    }
}

/// Adapter: a boosted cell as the single-version base of a versioned cell.
struct CellBackend<T>(BoostedCell<T>);

impl<T> CellBase<T> for CellBackend<T>
where
    T: Clone + Send + Sync + 'static,
{
    fn load(&self) -> T {
        self.0.peek()
    }

    fn store(&self, value: T) {
        self.0.seed(value);
    }
}

/// Adapter: a boosted vector as the single-version base of a versioned
/// vector.
struct VecBackend<T>(BoostedVec<T>);

impl<T> VecBase<T> for VecBackend<T>
where
    T: Clone + Send + Sync + 'static,
{
    fn len(&self) -> usize {
        self.0.snapshot_len()
    }

    fn load(&self, i: usize) -> Option<T> {
        self.0.peek(i)
    }

    fn store(&self, items: Vec<T>) {
        self.0.restore(items);
    }
}

/// Adapter: a boosted tally map as the single-version base of a versioned
/// counter map.
struct TallyBackend<K>(BoostedCounterMap<K>);

impl<K> TallyBase<K> for TallyBackend<K>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
{
    fn load(&self, key: &K) -> u64 {
        self.0.peek(key)
    }

    fn store(&self, key: &K, value: u64) {
        self.0.seed(key.clone(), value);
    }
}

/// A persistent `mapping(K => V)` state variable.
#[derive(Debug, Clone)]
pub struct StorageMap<K, V> {
    inner: BoostedMap<K, V>,
    overlay: Arc<OnceLock<VersionedMap<K, V>>>,
}

impl<K, V> StorageMap<K, V>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Declares a mapping with a stable, globally unique name
    /// (`"Ballot.voters"`).
    pub fn new(name: &str) -> Self {
        StorageMap {
            inner: BoostedMap::new(name),
            overlay: Arc::new(OnceLock::new()),
        }
    }

    /// The versioned overlay, built (and registered with the transaction's
    /// runtime) on the first optimistic access.
    fn versioned(&self, txn: &MvccTxn<'_>) -> &VersionedMap<K, V> {
        self.overlay.get_or_init(|| {
            let map = VersionedMap::new(self.inner.lock_space(), MapBackend(self.inner.clone()));
            txn.runtime().register(map.handle());
            map
        })
    }

    /// Reads the value bound to `key` (charges one `sload`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn get(&self, ctx: &mut CallContext<'_>, key: &K) -> Result<Option<V>, VmError> {
        ctx.charge_sload()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.get(txn, key)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).get(txn, key)),
        }
    }

    /// Reads the value bound to `key` **by reference** (charges one
    /// `sload`): `f` observes the binding in place and only its result is
    /// materialized. Use when the caller compares or projects the value —
    /// it skips the per-read `V: Clone` of [`StorageMap::get`].
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn get_with<R>(
        &self,
        ctx: &mut CallContext<'_>,
        key: &K,
        f: impl FnOnce(Option<&V>) -> R,
    ) -> Result<R, VmError> {
        ctx.charge_sload()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.get_with(txn, key, f)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).get_with(txn, key, f)),
        }
    }

    /// Whether `key` is bound (charges one `sload`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn contains_key(&self, ctx: &mut CallContext<'_>, key: &K) -> Result<bool, VmError> {
        ctx.charge_sload()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.contains_key(txn, key)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).contains_key(txn, key)),
        }
    }

    /// Binds `key` to `value` (charges one `sstore`). The prior binding
    /// moves into the undo log; use [`StorageMap::replace`] when it is
    /// needed.
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn insert(&self, ctx: &mut CallContext<'_>, key: K, value: V) -> Result<(), VmError> {
        ctx.charge_sstore()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.insert(txn, key, value)?),
            TxnRef::Mvcc(txn) => {
                self.versioned(txn).insert(txn, key, value);
                Ok(())
            }
        }
    }

    /// Binds `key` to `value` and returns the previous binding (charges
    /// one `sstore`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn replace(
        &self,
        ctx: &mut CallContext<'_>,
        key: K,
        value: V,
    ) -> Result<Option<V>, VmError> {
        ctx.charge_sstore()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.replace(txn, key, value)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).replace(txn, key, value)),
        }
    }

    /// Removes the binding for `key`, reporting whether one existed
    /// (charges one `sstore`). Use [`StorageMap::take`] to get the removed
    /// value back.
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn remove(&self, ctx: &mut CallContext<'_>, key: &K) -> Result<bool, VmError> {
        ctx.charge_sstore()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.remove(txn, key)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).remove(txn, key)),
        }
    }

    /// Removes and returns the binding for `key` (charges one `sstore`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn take(&self, ctx: &mut CallContext<'_>, key: &K) -> Result<Option<V>, VmError> {
        ctx.charge_sstore()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.take(txn, key)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).take(txn, key)),
        }
    }

    /// Read-modify-write of the value bound to `key`, inserting `default`
    /// first when absent (charges an `sload` plus an `sstore`). Performed
    /// in place in a single storage pass.
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn update_or(
        &self,
        ctx: &mut CallContext<'_>,
        key: K,
        default: V,
        f: impl FnOnce(&mut V),
    ) -> Result<(), VmError> {
        ctx.charge_sload()?;
        ctx.charge_sstore()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.update_or(txn, key, default, f)?),
            TxnRef::Mvcc(txn) => {
                self.versioned(txn).update_or(txn, key, default, f);
                Ok(())
            }
        }
    }

    /// Non-transactional write used while constructing initial state.
    pub fn seed(&self, key: K, value: V) {
        self.inner.seed(key, value);
    }

    /// Non-transactional read for tests and diagnostics.
    pub fn peek(&self, key: &K) -> Option<V> {
        self.inner.peek(key)
    }

    /// Number of bindings (non-transactional).
    pub fn len(&self) -> usize {
        self.inner.snapshot_len()
    }

    /// Whether the map has no bindings (non-transactional).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time copy of the map contents.
    pub fn entries(&self) -> Vec<(K, V)> {
        self.inner.snapshot()
    }
}

impl<K, V> StorageMap<K, V>
where
    K: Hash + Eq + Clone + Send + Sync + ToBytes + 'static,
    V: Clone + Send + Sync + ToBytes + 'static,
{
    /// Canonical snapshot of the field for state-root computation.
    pub fn snapshot_field(&self) -> FieldSnapshot {
        FieldSnapshot::from_typed(self.inner.name(), self.inner.snapshot())
    }
}

/// A persistent scalar state variable.
#[derive(Debug, Clone)]
pub struct StorageCell<T> {
    inner: BoostedCell<T>,
    overlay: Arc<OnceLock<VersionedCell<T>>>,
}

impl<T> StorageCell<T>
where
    T: Clone + Send + Sync + 'static,
{
    /// Declares a scalar with a stable name and initial value.
    pub fn new(name: &str, initial: T) -> Self {
        StorageCell {
            inner: BoostedCell::new(name, initial),
            overlay: Arc::new(OnceLock::new()),
        }
    }

    /// The versioned overlay, built (and registered with the transaction's
    /// runtime) on the first optimistic access.
    fn versioned(&self, txn: &MvccTxn<'_>) -> &VersionedCell<T> {
        self.overlay.get_or_init(|| {
            let cell = VersionedCell::new(self.inner.lock_id(), CellBackend(self.inner.clone()));
            txn.runtime().register(cell.handle());
            cell
        })
    }

    /// Reads the value (charges one `sload`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn get(&self, ctx: &mut CallContext<'_>) -> Result<T, VmError> {
        ctx.charge_sload()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.get(txn)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).get(txn)),
        }
    }

    /// Reads the value **by reference** (charges one `sload`): `f`
    /// observes it in place and only its result is materialized. Use when
    /// the caller compares or discards the value — it skips the per-read
    /// `T: Clone` of [`StorageCell::get`].
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn with<R>(
        &self,
        ctx: &mut CallContext<'_>,
        f: impl FnOnce(&T) -> R,
    ) -> Result<R, VmError> {
        ctx.charge_sload()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.with(txn, f)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).with(txn, f)),
        }
    }

    /// Overwrites the value (charges one `sstore`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn set(&self, ctx: &mut CallContext<'_>, value: T) -> Result<(), VmError> {
        ctx.charge_sstore()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.set(txn, value)?),
            TxnRef::Mvcc(txn) => {
                self.versioned(txn).set(txn, value);
                Ok(())
            }
        }
    }

    /// Read-modify-write (charges an `sload` plus an `sstore`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn modify(&self, ctx: &mut CallContext<'_>, f: impl FnOnce(&mut T)) -> Result<T, VmError> {
        ctx.charge_sload()?;
        ctx.charge_sstore()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.modify(txn, f)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).modify(txn, f)),
        }
    }

    /// Non-transactional write used while constructing initial state.
    pub fn seed(&self, value: T) {
        self.inner.seed(value);
    }

    /// Non-transactional read for tests and diagnostics.
    pub fn peek(&self) -> T {
        self.inner.peek()
    }
}

impl<T> StorageCell<T>
where
    T: Clone + Send + Sync + ToBytes + 'static,
{
    /// Canonical snapshot of the scalar for state-root computation.
    pub fn snapshot_field(&self) -> FieldSnapshot {
        FieldSnapshot::scalar(self.inner.name(), &self.inner.peek())
    }
}

/// A persistent dynamically-sized array.
#[derive(Debug, Clone)]
pub struct StorageVec<T> {
    inner: BoostedVec<T>,
    overlay: Arc<OnceLock<VersionedVec<T>>>,
}

impl<T> StorageVec<T>
where
    T: Clone + Send + Sync + 'static,
{
    /// Declares an array with a stable name.
    pub fn new(name: &str) -> Self {
        StorageVec {
            inner: BoostedVec::new(name),
            overlay: Arc::new(OnceLock::new()),
        }
    }

    /// The versioned overlay, built (and registered with the transaction's
    /// runtime) on the first optimistic access.
    fn versioned(&self, txn: &MvccTxn<'_>) -> &VersionedVec<T> {
        self.overlay.get_or_init(|| {
            let vec = VersionedVec::new(self.inner.lock_space(), VecBackend(self.inner.clone()));
            txn.runtime().register(vec.handle());
            vec
        })
    }

    /// Number of elements (charges one `sload`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn len(&self, ctx: &mut CallContext<'_>) -> Result<usize, VmError> {
        ctx.charge_sload()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.len(txn)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).len(txn)),
        }
    }

    /// Whether the array is empty (charges one `sload`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn is_empty(&self, ctx: &mut CallContext<'_>) -> Result<bool, VmError> {
        Ok(self.len(ctx)? == 0)
    }

    /// Reads element `i` (charges one `sload`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn get(&self, ctx: &mut CallContext<'_>, i: usize) -> Result<Option<T>, VmError> {
        ctx.charge_sload()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.get(txn, i)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).get(txn, i)),
        }
    }

    /// Reads element `i` **by reference** (charges one `sload`): `f`
    /// observes the element in place (or `None` when out of bounds) and
    /// only its result is materialized — no per-read `T: Clone`.
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn get_with<R>(
        &self,
        ctx: &mut CallContext<'_>,
        i: usize,
        f: impl FnOnce(Option<&T>) -> R,
    ) -> Result<R, VmError> {
        ctx.charge_sload()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.get_with(txn, i, f)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).get_with(txn, i, f)),
        }
    }

    /// Overwrites element `i` (charges one `sstore`); `Ok(false)` if out of
    /// bounds.
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn set(&self, ctx: &mut CallContext<'_>, i: usize, value: T) -> Result<bool, VmError> {
        ctx.charge_sstore()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.set(txn, i, value)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).set(txn, i, value)),
        }
    }

    /// Read-modify-write of element `i` (charges an `sload` + `sstore`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn modify(
        &self,
        ctx: &mut CallContext<'_>,
        i: usize,
        f: impl FnOnce(&mut T),
    ) -> Result<Option<T>, VmError> {
        ctx.charge_sload()?;
        ctx.charge_sstore()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.modify(txn, i, f)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).modify(txn, i, f)),
        }
    }

    /// Appends an element, returning its index (charges one `sstore`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn push(&self, ctx: &mut CallContext<'_>, value: T) -> Result<usize, VmError> {
        ctx.charge_sstore()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.push(txn, value)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).push(txn, value)),
        }
    }

    /// Non-transactional append used while constructing initial state.
    pub fn seed_push(&self, value: T) {
        self.inner.seed_push(value);
    }

    /// Non-transactional element read for tests and diagnostics.
    pub fn peek(&self, i: usize) -> Option<T> {
        self.inner.peek(i)
    }

    /// Non-transactional length.
    pub fn snapshot_len(&self) -> usize {
        self.inner.snapshot_len()
    }

    /// Point-in-time copy of the contents.
    pub fn items(&self) -> Vec<T> {
        self.inner.snapshot()
    }
}

impl<T> StorageVec<T>
where
    T: Clone + Send + Sync + ToBytes + 'static,
{
    /// Canonical snapshot of the array for state-root computation.
    pub fn snapshot_field(&self) -> FieldSnapshot {
        FieldSnapshot::from_typed(
            self.inner.name(),
            self.inner
                .snapshot()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (i as u64, v)),
        )
    }
}

/// A persistent tally map with a commutative `add` (used for vote counts
/// and similar accumulators).
#[derive(Debug, Clone)]
pub struct StorageCounterMap<K> {
    inner: BoostedCounterMap<K>,
    overlay: Arc<OnceLock<VersionedCounterMap<K>>>,
}

impl<K> StorageCounterMap<K>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
{
    /// Declares a tally map with a stable name.
    pub fn new(name: &str) -> Self {
        StorageCounterMap {
            inner: BoostedCounterMap::new(name),
            overlay: Arc::new(OnceLock::new()),
        }
    }

    /// The versioned overlay, built (and registered with the transaction's
    /// runtime) on the first optimistic access.
    fn versioned(&self, txn: &MvccTxn<'_>) -> &VersionedCounterMap<K> {
        self.overlay.get_or_init(|| {
            let map =
                VersionedCounterMap::new(self.inner.lock_space(), TallyBackend(self.inner.clone()));
            txn.runtime().register(map.handle());
            map
        })
    }

    /// Adds `delta` to the tally for `key` (charges one `sstore`);
    /// commutes with concurrent adds to the same key.
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn add(&self, ctx: &mut CallContext<'_>, key: K, delta: u64) -> Result<(), VmError> {
        ctx.charge_sstore()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.add(txn, key, delta)?),
            TxnRef::Mvcc(txn) => {
                self.versioned(txn).add(txn, key, delta);
                Ok(())
            }
        }
    }

    /// Reads the tally for `key` (charges one `sload`); orders against
    /// concurrent adds.
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn get(&self, ctx: &mut CallContext<'_>, key: &K) -> Result<u64, VmError> {
        ctx.charge_sload()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.get(txn, key)?),
            TxnRef::Mvcc(txn) => Ok(self.versioned(txn).get(txn, key)),
        }
    }

    /// Overwrites the tally for `key` (charges one `sstore`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn set(&self, ctx: &mut CallContext<'_>, key: K, value: u64) -> Result<(), VmError> {
        ctx.charge_sstore()?;
        match ctx.txn() {
            TxnRef::Stm(txn) => Ok(self.inner.set(txn, key, value)?),
            TxnRef::Mvcc(txn) => {
                self.versioned(txn).set(txn, key, value);
                Ok(())
            }
        }
    }

    /// Non-transactional write used while constructing initial state.
    pub fn seed(&self, key: K, value: u64) {
        self.inner.seed(key, value);
    }

    /// Non-transactional read for tests and diagnostics.
    pub fn peek(&self, key: &K) -> u64 {
        self.inner.peek(key)
    }
}

impl<K> StorageCounterMap<K>
where
    K: Hash + Eq + Clone + Send + Sync + ToBytes + 'static,
{
    /// Canonical snapshot of the tallies for state-root computation.
    pub fn snapshot_field(&self) -> FieldSnapshot {
        FieldSnapshot::from_typed(self.inner.name(), self.inner.snapshot())
    }
}
