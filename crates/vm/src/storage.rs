//! Gas-charging storage wrappers over the boosted collections.
//!
//! Contracts declare persistent state with these types. Every operation
//! takes the [`CallContext`]: it charges gas and then performs the
//! corresponding boosted operation inside the enclosing transaction, so
//! state access is simultaneously metered and speculative.

use crate::context::CallContext;
use crate::error::VmError;
use crate::snapshot::{FieldSnapshot, ToBytes};
use cc_stm::{BoostedCell, BoostedCounterMap, BoostedMap, BoostedVec};
use std::hash::Hash;

/// A persistent `mapping(K => V)` state variable.
#[derive(Debug, Clone)]
pub struct StorageMap<K, V> {
    inner: BoostedMap<K, V>,
}

impl<K, V> StorageMap<K, V>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Declares a mapping with a stable, globally unique name
    /// (`"Ballot.voters"`).
    pub fn new(name: &str) -> Self {
        StorageMap {
            inner: BoostedMap::new(name),
        }
    }

    /// Reads the value bound to `key` (charges one `sload`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn get(&self, ctx: &mut CallContext<'_>, key: &K) -> Result<Option<V>, VmError> {
        ctx.charge_sload()?;
        Ok(self.inner.get(ctx.txn(), key)?)
    }

    /// Reads the value bound to `key` **by reference** (charges one
    /// `sload`): `f` observes the binding in place and only its result is
    /// materialized. Use when the caller compares or projects the value —
    /// it skips the per-read `V: Clone` of [`StorageMap::get`].
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn get_with<R>(
        &self,
        ctx: &mut CallContext<'_>,
        key: &K,
        f: impl FnOnce(Option<&V>) -> R,
    ) -> Result<R, VmError> {
        ctx.charge_sload()?;
        Ok(self.inner.get_with(ctx.txn(), key, f)?)
    }

    /// Whether `key` is bound (charges one `sload`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn contains_key(&self, ctx: &mut CallContext<'_>, key: &K) -> Result<bool, VmError> {
        ctx.charge_sload()?;
        Ok(self.inner.contains_key(ctx.txn(), key)?)
    }

    /// Binds `key` to `value` (charges one `sstore`). The prior binding
    /// moves into the undo log; use [`StorageMap::replace`] when it is
    /// needed.
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn insert(&self, ctx: &mut CallContext<'_>, key: K, value: V) -> Result<(), VmError> {
        ctx.charge_sstore()?;
        Ok(self.inner.insert(ctx.txn(), key, value)?)
    }

    /// Binds `key` to `value` and returns the previous binding (charges
    /// one `sstore`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn replace(
        &self,
        ctx: &mut CallContext<'_>,
        key: K,
        value: V,
    ) -> Result<Option<V>, VmError> {
        ctx.charge_sstore()?;
        Ok(self.inner.replace(ctx.txn(), key, value)?)
    }

    /// Removes the binding for `key`, reporting whether one existed
    /// (charges one `sstore`). Use [`StorageMap::take`] to get the removed
    /// value back.
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn remove(&self, ctx: &mut CallContext<'_>, key: &K) -> Result<bool, VmError> {
        ctx.charge_sstore()?;
        Ok(self.inner.remove(ctx.txn(), key)?)
    }

    /// Removes and returns the binding for `key` (charges one `sstore`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn take(&self, ctx: &mut CallContext<'_>, key: &K) -> Result<Option<V>, VmError> {
        ctx.charge_sstore()?;
        Ok(self.inner.take(ctx.txn(), key)?)
    }

    /// Read-modify-write of the value bound to `key`, inserting `default`
    /// first when absent (charges an `sload` plus an `sstore`). Performed
    /// in place in a single storage pass.
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn update_or(
        &self,
        ctx: &mut CallContext<'_>,
        key: K,
        default: V,
        f: impl FnOnce(&mut V),
    ) -> Result<(), VmError> {
        ctx.charge_sload()?;
        ctx.charge_sstore()?;
        Ok(self.inner.update_or(ctx.txn(), key, default, f)?)
    }

    /// Non-transactional write used while constructing initial state.
    pub fn seed(&self, key: K, value: V) {
        self.inner.seed(key, value);
    }

    /// Non-transactional read for tests and diagnostics.
    pub fn peek(&self, key: &K) -> Option<V> {
        self.inner.peek(key)
    }

    /// Number of bindings (non-transactional).
    pub fn len(&self) -> usize {
        self.inner.snapshot_len()
    }

    /// Whether the map has no bindings (non-transactional).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time copy of the map contents.
    pub fn entries(&self) -> Vec<(K, V)> {
        self.inner.snapshot()
    }
}

impl<K, V> StorageMap<K, V>
where
    K: Hash + Eq + Clone + Send + Sync + ToBytes + 'static,
    V: Clone + Send + Sync + ToBytes + 'static,
{
    /// Canonical snapshot of the field for state-root computation.
    pub fn snapshot_field(&self) -> FieldSnapshot {
        FieldSnapshot::from_typed(self.inner.name(), self.inner.snapshot())
    }
}

/// A persistent scalar state variable.
#[derive(Debug, Clone)]
pub struct StorageCell<T> {
    inner: BoostedCell<T>,
}

impl<T> StorageCell<T>
where
    T: Clone + Send + Sync + 'static,
{
    /// Declares a scalar with a stable name and initial value.
    pub fn new(name: &str, initial: T) -> Self {
        StorageCell {
            inner: BoostedCell::new(name, initial),
        }
    }

    /// Reads the value (charges one `sload`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn get(&self, ctx: &mut CallContext<'_>) -> Result<T, VmError> {
        ctx.charge_sload()?;
        Ok(self.inner.get(ctx.txn())?)
    }

    /// Reads the value **by reference** (charges one `sload`): `f`
    /// observes it in place and only its result is materialized. Use when
    /// the caller compares or discards the value — it skips the per-read
    /// `T: Clone` of [`StorageCell::get`].
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn with<R>(
        &self,
        ctx: &mut CallContext<'_>,
        f: impl FnOnce(&T) -> R,
    ) -> Result<R, VmError> {
        ctx.charge_sload()?;
        Ok(self.inner.with(ctx.txn(), f)?)
    }

    /// Overwrites the value (charges one `sstore`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn set(&self, ctx: &mut CallContext<'_>, value: T) -> Result<(), VmError> {
        ctx.charge_sstore()?;
        Ok(self.inner.set(ctx.txn(), value)?)
    }

    /// Read-modify-write (charges an `sload` plus an `sstore`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn modify(&self, ctx: &mut CallContext<'_>, f: impl FnOnce(&mut T)) -> Result<T, VmError> {
        ctx.charge_sload()?;
        ctx.charge_sstore()?;
        Ok(self.inner.modify(ctx.txn(), f)?)
    }

    /// Non-transactional write used while constructing initial state.
    pub fn seed(&self, value: T) {
        self.inner.seed(value);
    }

    /// Non-transactional read for tests and diagnostics.
    pub fn peek(&self) -> T {
        self.inner.peek()
    }
}

impl<T> StorageCell<T>
where
    T: Clone + Send + Sync + ToBytes + 'static,
{
    /// Canonical snapshot of the scalar for state-root computation.
    pub fn snapshot_field(&self) -> FieldSnapshot {
        FieldSnapshot::scalar(self.inner.name(), &self.inner.peek())
    }
}

/// A persistent dynamically-sized array.
#[derive(Debug, Clone)]
pub struct StorageVec<T> {
    inner: BoostedVec<T>,
}

impl<T> StorageVec<T>
where
    T: Clone + Send + Sync + 'static,
{
    /// Declares an array with a stable name.
    pub fn new(name: &str) -> Self {
        StorageVec {
            inner: BoostedVec::new(name),
        }
    }

    /// Number of elements (charges one `sload`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn len(&self, ctx: &mut CallContext<'_>) -> Result<usize, VmError> {
        ctx.charge_sload()?;
        Ok(self.inner.len(ctx.txn())?)
    }

    /// Whether the array is empty (charges one `sload`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn is_empty(&self, ctx: &mut CallContext<'_>) -> Result<bool, VmError> {
        Ok(self.len(ctx)? == 0)
    }

    /// Reads element `i` (charges one `sload`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn get(&self, ctx: &mut CallContext<'_>, i: usize) -> Result<Option<T>, VmError> {
        ctx.charge_sload()?;
        Ok(self.inner.get(ctx.txn(), i)?)
    }

    /// Reads element `i` **by reference** (charges one `sload`): `f`
    /// observes the element in place (or `None` when out of bounds) and
    /// only its result is materialized — no per-read `T: Clone`.
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn get_with<R>(
        &self,
        ctx: &mut CallContext<'_>,
        i: usize,
        f: impl FnOnce(Option<&T>) -> R,
    ) -> Result<R, VmError> {
        ctx.charge_sload()?;
        Ok(self.inner.get_with(ctx.txn(), i, f)?)
    }

    /// Overwrites element `i` (charges one `sstore`); `Ok(false)` if out of
    /// bounds.
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn set(&self, ctx: &mut CallContext<'_>, i: usize, value: T) -> Result<bool, VmError> {
        ctx.charge_sstore()?;
        Ok(self.inner.set(ctx.txn(), i, value)?)
    }

    /// Read-modify-write of element `i` (charges an `sload` + `sstore`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn modify(
        &self,
        ctx: &mut CallContext<'_>,
        i: usize,
        f: impl FnOnce(&mut T),
    ) -> Result<Option<T>, VmError> {
        ctx.charge_sload()?;
        ctx.charge_sstore()?;
        Ok(self.inner.modify(ctx.txn(), i, f)?)
    }

    /// Appends an element, returning its index (charges one `sstore`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn push(&self, ctx: &mut CallContext<'_>, value: T) -> Result<usize, VmError> {
        ctx.charge_sstore()?;
        Ok(self.inner.push(ctx.txn(), value)?)
    }

    /// Non-transactional append used while constructing initial state.
    pub fn seed_push(&self, value: T) {
        self.inner.seed_push(value);
    }

    /// Non-transactional element read for tests and diagnostics.
    pub fn peek(&self, i: usize) -> Option<T> {
        self.inner.peek(i)
    }

    /// Non-transactional length.
    pub fn snapshot_len(&self) -> usize {
        self.inner.snapshot_len()
    }

    /// Point-in-time copy of the contents.
    pub fn items(&self) -> Vec<T> {
        self.inner.snapshot()
    }
}

impl<T> StorageVec<T>
where
    T: Clone + Send + Sync + ToBytes + 'static,
{
    /// Canonical snapshot of the array for state-root computation.
    pub fn snapshot_field(&self) -> FieldSnapshot {
        FieldSnapshot::from_typed(
            self.inner.name(),
            self.inner
                .snapshot()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (i as u64, v)),
        )
    }
}

/// A persistent tally map with a commutative `add` (used for vote counts
/// and similar accumulators).
#[derive(Debug, Clone)]
pub struct StorageCounterMap<K> {
    inner: BoostedCounterMap<K>,
}

impl<K> StorageCounterMap<K>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
{
    /// Declares a tally map with a stable name.
    pub fn new(name: &str) -> Self {
        StorageCounterMap {
            inner: BoostedCounterMap::new(name),
        }
    }

    /// Adds `delta` to the tally for `key` (charges one `sstore`);
    /// commutes with concurrent adds to the same key.
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn add(&self, ctx: &mut CallContext<'_>, key: K, delta: u64) -> Result<(), VmError> {
        ctx.charge_sstore()?;
        Ok(self.inner.add(ctx.txn(), key, delta)?)
    }

    /// Reads the tally for `key` (charges one `sload`); orders against
    /// concurrent adds.
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn get(&self, ctx: &mut CallContext<'_>, key: &K) -> Result<u64, VmError> {
        ctx.charge_sload()?;
        Ok(self.inner.get(ctx.txn(), key)?)
    }

    /// Overwrites the tally for `key` (charges one `sstore`).
    ///
    /// # Errors
    ///
    /// Out-of-gas or speculative-conflict errors.
    pub fn set(&self, ctx: &mut CallContext<'_>, key: K, value: u64) -> Result<(), VmError> {
        ctx.charge_sstore()?;
        Ok(self.inner.set(ctx.txn(), key, value)?)
    }

    /// Non-transactional write used while constructing initial state.
    pub fn seed(&self, key: K, value: u64) {
        self.inner.seed(key, value);
    }

    /// Non-transactional read for tests and diagnostics.
    pub fn peek(&self, key: &K) -> u64 {
        self.inner.peek(key)
    }
}

impl<K> StorageCounterMap<K>
where
    K: Hash + Eq + Clone + Send + Sync + ToBytes + 'static,
{
    /// Canonical snapshot of the tallies for state-root computation.
    pub fn snapshot_field(&self) -> FieldSnapshot {
        FieldSnapshot::from_typed(self.inner.name(), self.inner.snapshot())
    }
}
