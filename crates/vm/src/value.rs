//! Currency amounts.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An amount of currency in the smallest unit (analogous to Ethereum wei).
///
/// Arithmetic is checked: overflowing additions and underflowing
/// subtractions panic in debug terms via the checked constructors below,
/// while the `+`/`-` operators saturate nowhere — contracts use
/// [`Wei::checked_add`] / [`Wei::checked_sub`] and treat `None` as a
/// `throw`.
///
/// # Example
///
/// ```
/// use cc_vm::Wei;
/// let a = Wei::new(100);
/// let b = Wei::new(42);
/// assert_eq!((a + b).amount(), 142);
/// assert_eq!(a.checked_sub(b), Some(Wei::new(58)));
/// assert_eq!(b.checked_sub(a), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Wei(u128);

impl Wei {
    /// Zero currency.
    pub const ZERO: Wei = Wei(0);

    /// Creates an amount from a raw integer.
    pub const fn new(amount: u128) -> Self {
        Wei(amount)
    }

    /// The raw integer amount.
    pub const fn amount(&self) -> u128 {
        self.0
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: Wei) -> Option<Wei> {
        self.0.checked_add(other.0).map(Wei)
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, other: Wei) -> Option<Wei> {
        self.0.checked_sub(other.0).map(Wei)
    }

    /// Whether the amount is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl Add for Wei {
    type Output = Wei;

    fn add(self, rhs: Wei) -> Wei {
        Wei(self.0.checked_add(rhs.0).expect("wei overflow"))
    }
}

impl AddAssign for Wei {
    fn add_assign(&mut self, rhs: Wei) {
        *self = *self + rhs;
    }
}

impl Sub for Wei {
    type Output = Wei;

    fn sub(self, rhs: Wei) -> Wei {
        Wei(self.0.checked_sub(rhs.0).expect("wei underflow"))
    }
}

impl SubAssign for Wei {
    fn sub_assign(&mut self, rhs: Wei) {
        *self = *self - rhs;
    }
}

impl Sum for Wei {
    fn sum<I: Iterator<Item = Wei>>(iter: I) -> Wei {
        iter.fold(Wei::ZERO, |acc, w| acc + w)
    }
}

impl From<u128> for Wei {
    fn from(value: u128) -> Self {
        Wei(value)
    }
}

impl From<u64> for Wei {
    fn from(value: u64) -> Self {
        Wei(u128::from(value))
    }
}

impl fmt::Display for Wei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} wei", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Wei::new(10);
        let b = Wei::new(3);
        assert_eq!(a + b, Wei::new(13));
        assert_eq!(a - b, Wei::new(7));
        let mut c = a;
        c += b;
        c -= Wei::new(1);
        assert_eq!(c, Wei::new(12));
    }

    #[test]
    fn checked_paths() {
        assert_eq!(Wei::new(u128::MAX).checked_add(Wei::new(1)), None);
        assert_eq!(Wei::new(0).checked_sub(Wei::new(1)), None);
        assert_eq!(Wei::new(5).checked_sub(Wei::new(5)), Some(Wei::ZERO));
    }

    #[test]
    #[should_panic(expected = "wei underflow")]
    fn underflow_panics() {
        let _ = Wei::new(1) - Wei::new(2);
    }

    #[test]
    fn sum_and_conversions() {
        let total: Wei = vec![Wei::new(1), Wei::new(2), Wei::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Wei::new(6));
        assert_eq!(Wei::from(7u64), Wei::new(7));
        assert_eq!(Wei::from(7u128), Wei::new(7));
        assert!(Wei::ZERO.is_zero());
        assert_eq!(format!("{}", Wei::new(9)), "9 wei");
    }
}
