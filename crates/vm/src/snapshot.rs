//! Deterministic state snapshots and state roots.
//!
//! A block commits to the post-state of its transactions via a *state
//! root*. The reproduction computes it by snapshotting every contract's
//! storage into a canonical byte form, hashing each contract, and hashing
//! the sorted list of per-contract digests. Any divergence between the
//! miner's and a validator's final state therefore changes the root and
//! causes the block to be rejected.

use crate::address::Address;
use crate::value::Wei;
use cc_primitives::codec::{DecodeError, Decoder, Encoder};
use cc_primitives::hash::{Hash256, Sha256};

/// Conversion into canonical bytes for state commitment.
///
/// Implemented for the primitive field types contracts use; contract
/// crates implement it for their own structs (e.g. `Voter`).
pub trait ToBytes {
    /// Canonical byte encoding of the value.
    fn to_bytes(&self) -> Vec<u8>;
}

impl ToBytes for u64 {
    fn to_bytes(&self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }
}

impl ToBytes for u128 {
    fn to_bytes(&self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }
}

impl ToBytes for u32 {
    fn to_bytes(&self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }
}

impl ToBytes for u8 {
    fn to_bytes(&self) -> Vec<u8> {
        vec![*self]
    }
}

impl ToBytes for u16 {
    fn to_bytes(&self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }
}

impl ToBytes for usize {
    fn to_bytes(&self) -> Vec<u8> {
        (*self as u64).to_le_bytes().to_vec()
    }
}

impl ToBytes for bool {
    fn to_bytes(&self) -> Vec<u8> {
        vec![u8::from(*self)]
    }
}

impl ToBytes for String {
    fn to_bytes(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }
}

impl ToBytes for [u8; 32] {
    fn to_bytes(&self) -> Vec<u8> {
        self.to_vec()
    }
}

impl ToBytes for Address {
    fn to_bytes(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }
}

impl ToBytes for Wei {
    fn to_bytes(&self) -> Vec<u8> {
        self.amount().to_le_bytes().to_vec()
    }
}

/// Snapshot of one storage field (one boosted collection or cell): a
/// sorted list of `(encoded key, encoded value)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSnapshot {
    /// The field's stable name (e.g. `"Ballot.voters"`).
    pub name: String,
    /// Entries sorted by encoded key.
    pub entries: Vec<(Vec<u8>, Vec<u8>)>,
}

impl FieldSnapshot {
    /// Builds a snapshot from unsorted entries, sorting them canonically.
    pub fn new(name: impl Into<String>, mut entries: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        entries.sort();
        FieldSnapshot {
            name: name.into(),
            entries,
        }
    }

    /// Builds a snapshot of a single scalar value.
    pub fn scalar(name: impl Into<String>, value: &impl ToBytes) -> Self {
        FieldSnapshot {
            name: name.into(),
            entries: vec![(Vec::new(), value.to_bytes())],
        }
    }

    /// Builds a snapshot from typed entries.
    pub fn from_typed<K: ToBytes, V: ToBytes>(
        name: impl Into<String>,
        entries: impl IntoIterator<Item = (K, V)>,
    ) -> Self {
        FieldSnapshot::new(
            name,
            entries
                .into_iter()
                .map(|(k, v)| (k.to_bytes(), v.to_bytes()))
                .collect(),
        )
    }

    /// Canonical encoding, used both for contract digests and for
    /// serializing snapshot files.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name);
        enc.put_u64(self.entries.len() as u64);
        for (k, v) in &self.entries {
            enc.put_bytes(k);
            enc.put_bytes(v);
        }
    }

    /// Decodes a field snapshot written by [`FieldSnapshot::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<FieldSnapshot, DecodeError> {
        let name = dec.get_string()?;
        let n = dec.get_u64()? as usize;
        let mut entries = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let k = dec.get_bytes()?;
            let v = dec.get_bytes()?;
            entries.push((k, v));
        }
        Ok(FieldSnapshot { name, entries })
    }
}

/// Snapshot of one contract's entire persistent state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractSnapshot {
    /// The contract kind (e.g. `"Ballot"`).
    pub kind: String,
    /// The contract's address.
    pub address: Address,
    /// All storage fields, in declaration order.
    pub fields: Vec<FieldSnapshot>,
}

impl ContractSnapshot {
    /// Creates a snapshot.
    pub fn new(kind: impl Into<String>, address: Address, fields: Vec<FieldSnapshot>) -> Self {
        ContractSnapshot {
            kind: kind.into(),
            address,
            fields,
        }
    }

    /// Canonical digest of this contract's state.
    pub fn digest(&self) -> Hash256 {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        cc_primitives::sha256(enc.as_slice())
    }

    /// Canonical encoding; the digest hashes exactly these bytes.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.kind);
        enc.put_raw(self.address.as_bytes());
        enc.put_u64(self.fields.len() as u64);
        for field in &self.fields {
            field.encode(enc);
        }
    }

    /// Decodes a contract snapshot written by [`ContractSnapshot::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<ContractSnapshot, DecodeError> {
        let kind = dec.get_string()?;
        let raw = dec.get_raw(20)?;
        let mut bytes = [0u8; 20];
        bytes.copy_from_slice(raw);
        let address = Address(bytes);
        let n = dec.get_u64()? as usize;
        let mut fields = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            fields.push(FieldSnapshot::decode(dec)?);
        }
        Ok(ContractSnapshot {
            kind,
            address,
            fields,
        })
    }
}

/// Snapshot of every contract in a [`crate::World`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorldSnapshot {
    /// Per-contract snapshots sorted by address.
    pub contracts: Vec<ContractSnapshot>,
}

impl WorldSnapshot {
    /// Builds a world snapshot, sorting contracts by address.
    pub fn new(mut contracts: Vec<ContractSnapshot>) -> Self {
        contracts.sort_by_key(|c| c.address);
        WorldSnapshot { contracts }
    }

    /// The state root committed to in block headers.
    pub fn state_root(&self) -> Hash256 {
        let mut hasher = Sha256::new();
        hasher.update_u64(self.contracts.len() as u64);
        for contract in &self.contracts {
            hasher.update(contract.digest().as_bytes());
        }
        hasher.finalize()
    }

    /// Serializes the full snapshot to canonical bytes. Recovery compares
    /// these bytes bit-for-bit against a re-executed world, so the
    /// encoding must stay deterministic.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Canonical encoding of the snapshot.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.contracts.len() as u64);
        for contract in &self.contracts {
            contract.encode(enc);
        }
    }

    /// Decodes a world snapshot written by [`WorldSnapshot::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<WorldSnapshot, DecodeError> {
        let n = dec.get_u64()? as usize;
        let mut contracts = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            contracts.push(ContractSnapshot::decode(dec)?);
        }
        Ok(WorldSnapshot { contracts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_snapshot_sorts_entries() {
        let f = FieldSnapshot::new("m", vec![(vec![2], vec![20]), (vec![1], vec![10])]);
        assert_eq!(f.entries[0].0, vec![1]);
    }

    #[test]
    fn typed_and_scalar_snapshots() {
        let f = FieldSnapshot::from_typed("counts", vec![(2u64, 20u64), (1u64, 10u64)]);
        assert_eq!(f.entries.len(), 2);
        let s = FieldSnapshot::scalar("highest", &42u64);
        assert_eq!(s.entries.len(), 1);
        assert!(s.entries[0].0.is_empty());
    }

    #[test]
    fn digest_changes_with_content() {
        let a = ContractSnapshot::new(
            "Ballot",
            Address::from_index(1),
            vec![FieldSnapshot::from_typed("votes", vec![(1u64, 5u64)])],
        );
        let mut b = a.clone();
        b.fields = vec![FieldSnapshot::from_typed("votes", vec![(1u64, 6u64)])];
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn state_root_independent_of_insertion_order() {
        let c1 = ContractSnapshot::new("A", Address::from_index(1), vec![]);
        let c2 = ContractSnapshot::new("B", Address::from_index(2), vec![]);
        let w1 = WorldSnapshot::new(vec![c1.clone(), c2.clone()]);
        let w2 = WorldSnapshot::new(vec![c2, c1]);
        assert_eq!(w1.state_root(), w2.state_root());
    }

    #[test]
    fn state_root_sensitive_to_state() {
        let base = WorldSnapshot::new(vec![ContractSnapshot::new(
            "A",
            Address::from_index(1),
            vec![FieldSnapshot::from_typed("m", vec![(1u64, 1u64)])],
        )]);
        let changed = WorldSnapshot::new(vec![ContractSnapshot::new(
            "A",
            Address::from_index(1),
            vec![FieldSnapshot::from_typed("m", vec![(1u64, 2u64)])],
        )]);
        assert_ne!(base.state_root(), changed.state_root());
    }

    #[test]
    fn world_snapshot_roundtrip() {
        let w = WorldSnapshot::new(vec![
            ContractSnapshot::new(
                "Ballot",
                Address::from_index(2),
                vec![
                    FieldSnapshot::from_typed("votes", vec![(1u64, 5u64)]),
                    FieldSnapshot::scalar("chair", &7u64),
                ],
            ),
            ContractSnapshot::new("Auction", Address::from_index(1), vec![]),
        ]);
        let bytes = w.to_bytes();
        let mut dec = Decoder::new(&bytes);
        let decoded = WorldSnapshot::decode(&mut dec).unwrap();
        assert!(dec.is_empty());
        assert_eq!(decoded, w);
        assert_eq!(decoded.state_root(), w.state_root());
        assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn to_bytes_primitives() {
        assert_eq!(7u64.to_bytes().len(), 8);
        assert_eq!(7u32.to_bytes().len(), 4);
        assert_eq!(7u128.to_bytes().len(), 16);
        assert_eq!(7usize.to_bytes().len(), 8);
        assert_eq!(true.to_bytes(), vec![1]);
        assert_eq!("ab".to_string().to_bytes(), b"ab".to_vec());
        assert_eq!([1u8; 32].to_bytes().len(), 32);
        assert_eq!(Address::from_index(1).to_bytes().len(), 20);
        assert_eq!(Wei::new(9).to_bytes().len(), 16);
    }
}
