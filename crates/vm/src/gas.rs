//! Gas metering.
//!
//! Smart-contract languages are Turing-complete; Ethereum bounds execution
//! by charging *gas* for every virtual-machine step and aborting the call
//! when the limit is exhausted. The paper relies on this bound in its
//! correctness argument (§5: "the Ethereum gas restriction ensures this
//! sequence is finite"), and the block-size sweep in the evaluation is
//! framed in terms of the per-block gas limit (~200 transactions). The
//! reproduction therefore meters gas for every storage operation and call.

use crate::error::VmError;
use std::fmt;

/// Per-operation gas prices, loosely modelled on the Ethereum fee schedule
/// (exact values are irrelevant to the concurrency results; what matters
/// is that execution cost is dominated by storage operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GasSchedule {
    /// Base charge for any transaction (Ethereum: 21 000).
    pub tx_base: u64,
    /// Reading a storage slot.
    pub sload: u64,
    /// Writing a storage slot.
    pub sstore: u64,
    /// Calling another contract.
    pub call: u64,
    /// Emitting an event.
    pub log: u64,
    /// A unit of plain computation (arithmetic, branching).
    pub step: u64,
    /// Synthetic interpretation work (mix-loop iterations) charged per unit
    /// of non-base gas, standing in for the cost of interpreting contract
    /// byte code on the paper's JVM substrate. See [`crate::load`].
    pub work_per_gas: u64,
}

impl Default for GasSchedule {
    fn default() -> Self {
        GasSchedule {
            tx_base: 21_000,
            sload: 200,
            sstore: 5_000,
            call: 700,
            log: 375,
            step: 3,
            work_per_gas: 2,
        }
    }
}

impl GasSchedule {
    /// A schedule where everything costs zero; useful in unit tests that
    /// are not about gas.
    pub fn free() -> Self {
        GasSchedule {
            tx_base: 0,
            sload: 0,
            sstore: 0,
            call: 0,
            log: 0,
            step: 0,
            work_per_gas: 0,
        }
    }

    /// The default fee schedule with the synthetic interpretation load
    /// disabled (micro-tests of pure bookkeeping).
    pub fn without_synthetic_load() -> Self {
        GasSchedule {
            work_per_gas: 0,
            ..GasSchedule::default()
        }
    }
}

/// Tracks gas consumption for one transaction and enforces the limit.
///
/// # Example
///
/// ```
/// use cc_vm::{GasMeter, GasSchedule};
/// let mut meter = GasMeter::new(30_000, GasSchedule::default());
/// meter.charge_tx_base().unwrap();
/// meter.charge_sload().unwrap();
/// assert_eq!(meter.used(), 21_200);
/// assert!(meter.remaining() < 9_000);
/// ```
#[derive(Debug, Clone)]
pub struct GasMeter {
    limit: u64,
    used: u64,
    schedule: GasSchedule,
}

impl GasMeter {
    /// Creates a meter with the given limit and schedule.
    pub fn new(limit: u64, schedule: GasSchedule) -> Self {
        GasMeter {
            limit,
            used: 0,
            schedule,
        }
    }

    /// The gas limit of this execution.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Gas consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Gas still available.
    pub fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.used)
    }

    /// The schedule in force.
    pub fn schedule(&self) -> &GasSchedule {
        &self.schedule
    }

    /// Charges an arbitrary amount.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] when the limit would be exceeded; the
    /// caller must abort the contract call (the overdrawn amount remains
    /// recorded as used, mirroring Ethereum's "all gas consumed" rule for
    /// `throw`).
    pub fn charge(&mut self, amount: u64) -> Result<(), VmError> {
        self.used = self.used.saturating_add(amount);
        if self.used > self.limit {
            return Err(VmError::OutOfGas {
                limit: self.limit,
                needed: self.used,
            });
        }
        Ok(())
    }

    /// Charges the per-transaction base cost.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] when the limit is exceeded.
    pub fn charge_tx_base(&mut self) -> Result<(), VmError> {
        self.charge(self.schedule.tx_base)
    }

    /// Charges one storage read.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] when the limit is exceeded.
    pub fn charge_sload(&mut self) -> Result<(), VmError> {
        self.charge(self.schedule.sload)
    }

    /// Charges one storage write.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] when the limit is exceeded.
    pub fn charge_sstore(&mut self) -> Result<(), VmError> {
        self.charge(self.schedule.sstore)
    }

    /// Charges one cross-contract call.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] when the limit is exceeded.
    pub fn charge_call(&mut self) -> Result<(), VmError> {
        self.charge(self.schedule.call)
    }

    /// Charges one event emission.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] when the limit is exceeded.
    pub fn charge_log(&mut self) -> Result<(), VmError> {
        self.charge(self.schedule.log)
    }

    /// Charges `n` units of plain computation.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfGas`] when the limit is exceeded.
    pub fn charge_steps(&mut self, n: u64) -> Result<(), VmError> {
        self.charge(self.schedule.step.saturating_mul(n))
    }
}

impl fmt::Display for GasMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gas {}/{}", self.used, self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut m = GasMeter::new(100_000, GasSchedule::default());
        m.charge_tx_base().unwrap();
        m.charge_sload().unwrap();
        m.charge_sstore().unwrap();
        m.charge_call().unwrap();
        m.charge_log().unwrap();
        m.charge_steps(10).unwrap();
        assert_eq!(m.used(), 21_000 + 200 + 5_000 + 700 + 375 + 30);
        assert_eq!(m.remaining(), 100_000 - m.used());
    }

    #[test]
    fn out_of_gas_is_detected() {
        let mut m = GasMeter::new(21_100, GasSchedule::default());
        m.charge_tx_base().unwrap();
        let err = m.charge_sstore().unwrap_err();
        assert!(matches!(err, VmError::OutOfGas { .. }));
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn free_schedule_never_runs_out() {
        let mut m = GasMeter::new(0, GasSchedule::free());
        for _ in 0..100 {
            m.charge_sstore().unwrap();
        }
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn display() {
        let m = GasMeter::new(10, GasSchedule::free());
        assert_eq!(format!("{m}"), "gas 0/10");
    }
}
