//! The contract registry and transaction execution entry point.

use crate::abi::CallData;
use crate::address::Address;
use crate::context::{CallContext, TxnRef};
use crate::contract::Contract;
use crate::error::VmError;
use crate::gas::{GasMeter, GasSchedule};
use crate::msg::Msg;
use crate::receipt::{ExecutionStatus, Receipt};
use crate::snapshot::WorldSnapshot;
use cc_mvcc::MvccRuntime;
use cc_primitives::fx::FxHashMap;
use cc_primitives::hash::Hash256;
use cc_stm::{Stm, StmError, Transaction};
use parking_lot::RwLock;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable point-in-time view of the deployed-contract registry,
/// shared by every call frame of a transaction so nested contract calls
/// resolve their callee with a plain hash lookup — no registry lock, no
/// `BTreeMap` walk per hop.
pub type ContractRegistry = Arc<FxHashMap<Address, Arc<dyn Contract>>>;

/// The set of deployed contracts plus the speculative runtime they execute
/// under — the "ledger state" a miner starts from when assembling a block.
///
/// `World` is shared by reference across the miner's worker threads; all
/// mutation happens through contract storage inside transactions.
///
/// The registry is **read-mostly**: deploys (rare, setup-time) rebuild a
/// frozen [`ContractRegistry`] snapshot, and execution reads only the
/// snapshot.
pub struct World {
    stm: Stm,
    mvcc: MvccRuntime,
    gas_schedule: GasSchedule,
    /// Authoritative registry, ordered for deterministic snapshots.
    contracts: RwLock<BTreeMap<Address, Arc<dyn Contract>>>,
    /// Frozen lookup table rebuilt on every deploy.
    resolved: RwLock<ContractRegistry>,
    /// Identity of this world in the per-thread registry cache.
    world_id: u64,
    /// Bumped (with `Release`) after each deploy swaps in a new frozen
    /// snapshot, so [`World::registry`] can detect staleness with one
    /// atomic load instead of crossing the `resolved` lock.
    registry_generation: AtomicU64,
}

/// Source of unique [`World::world_id`] values.
static NEXT_WORLD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The last `(world_id, generation, registry)` this thread resolved.
    ///
    /// Deploys happen at setup time; during a block the generation never
    /// moves, so every [`World::registry`] call after the first — one per
    /// executed transaction — is an atomic load plus an `Arc` clone, with
    /// **zero** lock crossings. Keyed by `world_id` so tests running many
    /// worlds on one thread never see each other's snapshots.
    static REGISTRY_CACHE: RefCell<Option<(u64, u64, ContractRegistry)>> =
        const { RefCell::new(None) };
}

impl Default for World {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("contracts", &self.contracts.read().len())
            .finish()
    }
}

impl World {
    /// Creates an empty world with a fresh speculative runtime and the
    /// default gas schedule.
    pub fn new() -> Self {
        World {
            stm: Stm::new(),
            mvcc: MvccRuntime::new(),
            gas_schedule: GasSchedule::default(),
            contracts: RwLock::new(BTreeMap::new()),
            resolved: RwLock::new(Arc::new(FxHashMap::default())),
            world_id: NEXT_WORLD_ID.fetch_add(1, Ordering::Relaxed),
            registry_generation: AtomicU64::new(0),
        }
    }

    /// Creates a world with an explicit gas schedule.
    pub fn with_gas_schedule(gas_schedule: GasSchedule) -> Self {
        World {
            gas_schedule,
            ..World::new()
        }
    }

    /// The pessimistic (transactional-boosting) runtime of this world.
    pub fn stm(&self) -> &Stm {
        &self.stm
    }

    /// The optimistic (multi-version) runtime of this world. Storage
    /// wrappers lazily register their versioned overlays here on first
    /// MVCC access; an optimistic miner uses it to begin transactions,
    /// garbage-collect old versions and finalize the block's versions
    /// into the boosted base state.
    pub fn mvcc(&self) -> &MvccRuntime {
        &self.mvcc
    }

    /// The gas schedule in force.
    pub fn gas_schedule(&self) -> GasSchedule {
        self.gas_schedule
    }

    /// Deploys a contract at its self-reported address.
    ///
    /// # Panics
    ///
    /// Panics if a contract is already deployed at that address (deploying
    /// twice is always a harness bug).
    pub fn deploy(&self, contract: Arc<dyn Contract>) {
        let address = contract.address();
        let mut contracts = self.contracts.write();
        assert!(
            !contracts.contains_key(&address),
            "contract already deployed at {address}"
        );
        contracts.insert(address, contract);
        // Rebuild the frozen lookup snapshot (deploys are rare; lookups
        // are the hot path), then publish the new generation. The store
        // is `Release` so a thread that observes the bumped generation
        // and misses its cache is guaranteed to read the new snapshot.
        *self.resolved.write() = Arc::new(
            contracts
                .iter()
                .map(|(addr, c)| (*addr, Arc::clone(c)))
                .collect(),
        );
        self.registry_generation.fetch_add(1, Ordering::Release);
    }

    /// Looks up the contract deployed at `address`.
    pub fn contract(&self, address: Address) -> Option<Arc<dyn Contract>> {
        self.resolved.read().get(&address).cloned()
    }

    /// The frozen registry snapshot used for contract resolution during
    /// execution. Lookups on the snapshot take no lock at all, and the
    /// snapshot itself comes from a per-thread `(world, generation)`
    /// cache: in steady state (no deploy since this thread last asked)
    /// this is one atomic load and an `Arc` clone — zero lock crossings
    /// per transaction, however deep its nested calls go.
    pub fn registry(&self) -> ContractRegistry {
        let generation = self.registry_generation.load(Ordering::Acquire);
        REGISTRY_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((id, cached_generation, registry)) = cache.as_ref() {
                if *id == self.world_id && *cached_generation == generation {
                    return Arc::clone(registry);
                }
            }
            let fresh = Arc::clone(&self.resolved.read());
            *cache = Some((self.world_id, generation, Arc::clone(&fresh)));
            fresh
        })
    }

    /// Addresses of all deployed contracts (sorted).
    pub fn addresses(&self) -> Vec<Address> {
        self.contracts.read().keys().copied().collect()
    }

    /// Number of deployed contracts.
    pub fn contract_count(&self) -> usize {
        self.contracts.read().len()
    }

    /// Executes one contract call inside the given transaction and returns
    /// its receipt.
    ///
    /// Contract-level failures (`throw`, out of gas, bad call) roll back
    /// the call's tentative storage changes via the transaction's undo log
    /// — while keeping its abstract locks, so the failed call still
    /// participates in the block's happens-before order — and produce a
    /// non-successful receipt.
    ///
    /// The transaction itself is *not* committed or aborted here; that is
    /// the caller's (miner's / validator's) decision.
    ///
    /// # Errors
    ///
    /// Returns an [`StmError`] only when the speculative runtime requires
    /// the whole transaction to abort and retry (deadlock victim).
    pub fn execute(
        &self,
        txn: &Transaction,
        tx_index: usize,
        msg: Msg,
        to: Address,
        call: &CallData,
        gas_limit: u64,
    ) -> Result<Receipt, StmError> {
        self.execute_in(TxnRef::Stm(txn), tx_index, msg, to, call, gas_limit)
    }

    /// [`World::execute`] generalized over the concurrency-control seam:
    /// runs the call under whichever transaction flavor `txn` carries.
    /// Optimistic transactions cannot fail mid-execution (conflicts only
    /// surface when the miner commits), so under [`TxnRef::Mvcc`] this
    /// always returns `Ok`.
    ///
    /// # Errors
    ///
    /// Returns an [`StmError`] only when a pessimistic transaction is
    /// chosen as a deadlock victim and must retry.
    pub fn execute_in(
        &self,
        txn: TxnRef<'_>,
        tx_index: usize,
        msg: Msg,
        to: Address,
        call: &CallData,
        gas_limit: u64,
    ) -> Result<Receipt, StmError> {
        let meter = GasMeter::new(gas_limit, self.gas_schedule);
        let registry = self.registry();
        let callee = registry.get(&to).cloned();
        let mut ctx = CallContext::root(txn, self, registry, msg, to, meter);
        let savepoint = txn.savepoint();

        let outcome = ctx.charge_tx_base().and_then(|_| match callee {
            Some(contract) => contract.call(&mut ctx, call),
            None => Err(VmError::UnknownContract),
        });

        match outcome {
            Ok(output) => {
                debug_assert!(
                    ctx.gas_used() <= gas_limit,
                    "gas meter reported {} used against a limit of {gas_limit}",
                    ctx.gas_used()
                );
                Ok(Receipt {
                    tx_index,
                    status: ExecutionStatus::Succeeded,
                    // Clamped like the failure path: a meter bug must never
                    // produce a successful receipt with gas_used > limit.
                    gas_used: ctx.gas_used().min(gas_limit),
                    output,
                    events: ctx.take_events(),
                })
            }
            Err(err) => {
                if let VmError::Stm(stm_err) = &err {
                    if stm_err.is_retryable() {
                        return Err(stm_err.clone());
                    }
                }
                // Contract-level failure: discard tentative effects but keep
                // the locks (Solidity `throw` semantics under boosting).
                txn.rollback_to(savepoint);
                Ok(Receipt {
                    tx_index,
                    status: ExecutionStatus::from_error(&err),
                    gas_used: ctx.gas_used().min(gas_limit),
                    output: Default::default(),
                    events: Vec::new(),
                })
            }
        }
    }

    /// Convenience wrapper around [`World::execute`] for callers that do
    /// not track a block position (doctests, examples).
    ///
    /// # Panics
    ///
    /// Panics if the speculative runtime demands a retry; use
    /// [`World::execute`] in miner code.
    pub fn call(
        &self,
        txn: &Transaction,
        msg: Msg,
        to: Address,
        call: &CallData,
        gas_limit: u64,
    ) -> Receipt {
        self.execute(txn, 0, msg, to, call, gas_limit)
            .expect("unexpected speculative conflict in direct call")
    }

    /// Snapshot of every deployed contract's state.
    pub fn snapshot(&self) -> WorldSnapshot {
        WorldSnapshot::new(
            self.contracts
                .read()
                .values()
                .map(|c| c.snapshot())
                .collect(),
        )
    }

    /// The state root committing to the current world state.
    pub fn state_root(&self) -> Hash256 {
        self.snapshot().state_root()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::{ArgValue, ReturnValue};
    use crate::testing::{CounterContract, ProxyContract};
    use crate::value::Wei;

    fn world_with_counter() -> (World, Address) {
        let world = World::new();
        let addr = Address::from_name("counter");
        world.deploy(Arc::new(CounterContract::new(addr)));
        (world, addr)
    }

    #[test]
    fn successful_call_produces_receipt_and_state() {
        let (world, addr) = world_with_counter();
        let txn = world.stm().begin();
        let receipt = world
            .execute(
                &txn,
                0,
                Msg::from_sender(Address::from_index(1)),
                addr,
                &CallData::new("increment", vec![ArgValue::Uint(3)]),
                1_000_000,
            )
            .unwrap();
        txn.commit().unwrap();
        assert!(receipt.succeeded());
        assert!(receipt.gas_used >= 21_000);
        let counter = world.contract(addr).unwrap();
        let snap = counter.snapshot();
        assert_eq!(snap.kind, "Counter");
    }

    #[test]
    fn revert_rolls_back_but_keeps_receipt() {
        let (world, addr) = world_with_counter();
        let root_before = world.state_root();
        let txn = world.stm().begin();
        let receipt = world
            .execute(
                &txn,
                1,
                Msg::from_sender(Address::from_index(1)),
                addr,
                &CallData::new("increment_then_fail", vec![ArgValue::Uint(3)]),
                1_000_000,
            )
            .unwrap();
        txn.commit().unwrap();
        assert!(matches!(receipt.status, ExecutionStatus::Reverted { .. }));
        assert_eq!(
            world.state_root(),
            root_before,
            "state unchanged after revert"
        );
    }

    #[test]
    fn unknown_contract_and_function() {
        let (world, addr) = world_with_counter();
        let txn = world.stm().begin();
        let r1 = world
            .execute(
                &txn,
                0,
                Msg::from_sender(Address::from_index(1)),
                Address::from_index(99),
                &CallData::nullary("anything"),
                1_000_000,
            )
            .unwrap();
        assert!(matches!(r1.status, ExecutionStatus::Invalid { .. }));
        let r2 = world
            .execute(
                &txn,
                1,
                Msg::from_sender(Address::from_index(1)),
                addr,
                &CallData::nullary("not_a_function"),
                1_000_000,
            )
            .unwrap();
        assert!(matches!(r2.status, ExecutionStatus::Invalid { .. }));
        txn.commit().unwrap();
    }

    #[test]
    fn out_of_gas_is_reported_and_rolled_back() {
        let (world, addr) = world_with_counter();
        let txn = world.stm().begin();
        let receipt = world
            .execute(
                &txn,
                0,
                Msg::from_sender(Address::from_index(1)),
                addr,
                &CallData::new("increment", vec![ArgValue::Uint(3)]),
                21_100, // enough for the base charge but not the stores
            )
            .unwrap();
        txn.commit().unwrap();
        assert_eq!(receipt.status, ExecutionStatus::OutOfGas);
        let counter = world.contract(addr).unwrap();
        assert!(counter
            .snapshot()
            .fields
            .iter()
            .all(|f| f.entries.iter().all(|(_, v)| v.iter().all(|&b| b == 0))));
    }

    #[test]
    fn cross_contract_call_through_proxy() {
        let (world, counter_addr) = world_with_counter();
        let proxy_addr = Address::from_name("proxy");
        world.deploy(Arc::new(ProxyContract::new(proxy_addr, counter_addr)));

        let txn = world.stm().begin();
        let receipt = world
            .execute(
                &txn,
                0,
                Msg::from_sender(Address::from_index(5)),
                proxy_addr,
                &CallData::new("proxy_increment", vec![ArgValue::Uint(4)]),
                1_000_000,
            )
            .unwrap();
        txn.commit().unwrap();
        assert!(receipt.succeeded());
        assert_eq!(receipt.output, ReturnValue::Uint(4));
    }

    #[test]
    fn nested_failure_does_not_abort_parent() {
        let (world, counter_addr) = world_with_counter();
        let proxy_addr = Address::from_name("proxy2");
        world.deploy(Arc::new(ProxyContract::new(proxy_addr, counter_addr)));

        let txn = world.stm().begin();
        let receipt = world
            .execute(
                &txn,
                0,
                Msg::from_sender(Address::from_index(5)),
                proxy_addr,
                // The proxy swallows the callee's failure and reports how
                // many nested calls succeeded.
                &CallData::new("proxy_try_both", vec![ArgValue::Uint(4)]),
                1_000_000,
            )
            .unwrap();
        txn.commit().unwrap();
        assert!(receipt.succeeded());
        assert_eq!(receipt.output, ReturnValue::Uint(1));
    }

    #[test]
    fn optimistic_execution_matches_pessimistic_state() {
        let (world, addr) = world_with_counter();
        let msg = Msg::from_sender(Address::from_index(1));
        let call = CallData::new("increment", vec![ArgValue::Uint(3)]);

        let txn = world.mvcc().begin();
        let receipt = world
            .execute_in(TxnRef::Mvcc(&txn), 0, msg, addr, &call, 1_000_000)
            .unwrap();
        let commit = txn.commit().unwrap();
        assert!(!commit.read_only);
        world.mvcc().finalize_block();

        // A pessimistic twin world executing the same call lands on the
        // same state root and gas usage.
        let (twin, twin_addr) = world_with_counter();
        let stm_txn = twin.stm().begin();
        let twin_receipt = twin
            .execute(&stm_txn, 0, msg, twin_addr, &call, 1_000_000)
            .unwrap();
        stm_txn.commit().unwrap();

        assert!(receipt.succeeded());
        assert_eq!(receipt.gas_used, twin_receipt.gas_used);
        assert_eq!(receipt.output, twin_receipt.output);
        assert_eq!(world.state_root(), twin.state_root());
    }

    #[test]
    fn optimistic_revert_rolls_back_buffered_writes() {
        let (world, addr) = world_with_counter();
        let root_before = world.state_root();
        let txn = world.mvcc().begin();
        let receipt = world
            .execute_in(
                TxnRef::Mvcc(&txn),
                0,
                Msg::from_sender(Address::from_index(1)),
                addr,
                &CallData::new("increment_then_fail", vec![ArgValue::Uint(3)]),
                1_000_000,
            )
            .unwrap();
        let commit = txn.commit().unwrap();
        assert!(matches!(receipt.status, ExecutionStatus::Reverted { .. }));
        assert!(
            commit.read_only,
            "a fully rolled-back optimistic transaction commits as a reader"
        );
        world.mvcc().finalize_block();
        assert_eq!(world.state_root(), root_before);
    }

    #[test]
    #[should_panic(expected = "already deployed")]
    fn double_deploy_panics() {
        let (world, addr) = world_with_counter();
        world.deploy(Arc::new(CounterContract::new(addr)));
    }

    #[test]
    fn value_transfer_is_visible_to_callee() {
        let (world, addr) = world_with_counter();
        let txn = world.stm().begin();
        let receipt = world
            .execute(
                &txn,
                0,
                Msg::with_value(Address::from_index(1), Wei::new(250)),
                addr,
                &CallData::nullary("deposit"),
                1_000_000,
            )
            .unwrap();
        txn.commit().unwrap();
        assert!(receipt.succeeded());
        assert_eq!(receipt.output, ReturnValue::Amount(Wei::new(250)));
    }

    #[test]
    fn registry_cache_sees_later_deploys() {
        let (world, counter_addr) = world_with_counter();
        // Warm this thread's cache, then deploy another contract.
        assert_eq!(world.registry().len(), 1);
        let proxy_addr = Address::from_name("late-proxy");
        world.deploy(Arc::new(ProxyContract::new(proxy_addr, counter_addr)));
        // The generation bump invalidates the cached snapshot.
        let registry = world.registry();
        assert_eq!(registry.len(), 2);
        assert!(registry.contains_key(&proxy_addr));
        // A different world on the same thread gets its own snapshot.
        let (other, other_addr) = world_with_counter();
        assert_eq!(other.registry().len(), 1);
        assert!(other.registry().contains_key(&other_addr));
        assert_eq!(world.registry().len(), 2);
    }

    /// With the registry cache warm, executing a transaction — nested
    /// calls included — crosses zero `RwLock`s: contract resolution is an
    /// atomic generation check and storage is boosted (raw tables guarded
    /// by abstract locks). Uses the debug-only acquisition counter the
    /// `parking_lot` shim exposes.
    #[cfg(debug_assertions)]
    #[test]
    fn steady_state_execution_crosses_zero_rwlocks() {
        let (world, counter_addr) = world_with_counter();
        let proxy_addr = Address::from_name("proxy-lockfree");
        world.deploy(Arc::new(ProxyContract::new(proxy_addr, counter_addr)));

        let run = |i: usize| {
            let txn = world.stm().begin();
            let receipt = world
                .execute(
                    &txn,
                    i,
                    Msg::from_sender(Address::from_index(1)),
                    proxy_addr,
                    &CallData::new("proxy_increment", vec![ArgValue::Uint(1)]),
                    1_000_000,
                )
                .unwrap();
            txn.commit().unwrap();
            assert!(receipt.succeeded());
        };
        // First execution warms the thread-local registry cache (and any
        // lazily-initialized storage overlays).
        run(0);
        let before = parking_lot::rwlock_acquisition_count();
        run(1);
        run(2);
        assert_eq!(
            parking_lot::rwlock_acquisition_count() - before,
            0,
            "steady-state execution must not acquire any RwLock"
        );
    }

    #[test]
    fn addresses_and_counts() {
        let (world, addr) = world_with_counter();
        assert_eq!(world.addresses(), vec![addr]);
        assert_eq!(world.contract_count(), 1);
        assert!(world.contract(Address::ZERO).is_none());
    }
}
