//! A convenience full node: mine, append, validate.

use crate::error::CoreError;
use crate::miner::{MinedBlock, Miner};
use crate::stats::ValidationReport;
use crate::validator::Validator;
use cc_ledger::{Block, Blockchain, ChainError, Transaction};
use cc_vm::World;

/// A node that owns a world and a chain and keeps them consistent.
///
/// `Node` is a thin orchestration layer used by the examples and the
/// benchmark harness:
///
/// * a **mining node** calls [`Node::mine_and_append`] to execute client
///   transactions with whatever [`Miner`] it was given and extend its
///   chain;
/// * a **validating node** calls [`Node::validate_and_append`] with blocks
///   received from the network; its world is advanced only when the block
///   is accepted.
#[derive(Debug)]
pub struct Node {
    world: World,
    chain: Blockchain,
}

impl Node {
    /// Creates a node over an already-populated world (deployed contracts,
    /// seeded state). The genesis block commits to that initial state.
    pub fn new(world: World) -> Self {
        let genesis_root = world.state_root();
        Node {
            world,
            chain: Blockchain::with_genesis_state(genesis_root),
        }
    }

    /// The node's world (current state).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The node's chain.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// Mines a block of `transactions` with `miner` on top of the current
    /// head and appends it to the chain.
    ///
    /// # Errors
    ///
    /// Returns the miner's error, or a [`CoreError::BlockRejected`] if the
    /// assembled block unexpectedly fails structural chain checks.
    pub fn mine_and_append(
        &mut self,
        miner: &dyn Miner,
        transactions: Vec<Transaction>,
    ) -> Result<MinedBlock, CoreError> {
        let parent_hash = self.chain.head_hash();
        let number = self.chain.head().header.number + 1;
        let mined = miner.mine_on(&self.world, transactions, parent_hash, number)?;
        self.chain
            .append(mined.block.clone())
            .map_err(|e: ChainError| CoreError::rejected(e.to_string()))?;
        Ok(mined)
    }

    /// Validates a block received from another node with `validator` and
    /// appends it on success.
    ///
    /// # Errors
    ///
    /// Propagates the validator's rejection, or rejects blocks that do not
    /// extend this node's chain.
    pub fn validate_and_append(
        &mut self,
        validator: &dyn Validator,
        block: &Block,
    ) -> Result<ValidationReport, CoreError> {
        if block.header.parent_hash != self.chain.head_hash() {
            return Err(CoreError::rejected("block does not extend this node's head"));
        }
        let report = validator.validate(&self.world, block)?;
        self.chain
            .append(block.clone())
            .map_err(|e| CoreError::rejected(e.to_string()))?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::ParallelMiner;
    use crate::validator::ParallelValidator;
    use cc_vm::testing::CounterContract;
    use cc_vm::{Address, ArgValue, CallData};
    use std::sync::Arc;

    fn fresh_world() -> World {
        let world = World::new();
        world.deploy(Arc::new(CounterContract::new(Address::from_name("counter-node"))));
        world
    }

    fn block_txs(base: u64, n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| {
                Transaction::new(
                    base + i,
                    Address::from_index(i),
                    Address::from_name("counter-node"),
                    CallData::new("increment", vec![ArgValue::Uint(1)]),
                    1_000_000,
                )
            })
            .collect()
    }

    #[test]
    fn miner_node_and_validator_node_stay_in_sync() {
        let mut miner_node = Node::new(fresh_world());
        let mut validator_node = Node::new(fresh_world());
        let miner = ParallelMiner::new(3);
        let validator = ParallelValidator::new(3);

        for block_number in 0..3u64 {
            let mined = miner_node
                .mine_and_append(&miner, block_txs(block_number * 100, 12))
                .unwrap();
            let report = validator_node
                .validate_and_append(&validator, &mined.block)
                .unwrap();
            assert_eq!(report.state_root, mined.block.header.state_root);
        }
        assert_eq!(miner_node.chain().len(), 4);
        assert_eq!(validator_node.chain().len(), 4);
        assert_eq!(
            miner_node.world().state_root(),
            validator_node.world().state_root()
        );
        assert!(miner_node.chain().verify_structure());
    }

    #[test]
    fn validator_node_rejects_blocks_that_do_not_extend_its_head() {
        let mut miner_node = Node::new(fresh_world());
        let mut validator_node = Node::new(fresh_world());
        let miner = ParallelMiner::new(2);
        let validator = ParallelValidator::new(2);

        let first = miner_node.mine_and_append(&miner, block_txs(0, 4)).unwrap();
        let second = miner_node.mine_and_append(&miner, block_txs(100, 4)).unwrap();
        // Skipping the first block: the second does not extend genesis.
        let err = validator_node
            .validate_and_append(&validator, &second.block)
            .unwrap_err();
        assert!(err.to_string().contains("does not extend"));
        validator_node.validate_and_append(&validator, &first.block).unwrap();
        validator_node.validate_and_append(&validator, &second.block).unwrap();
    }
}
