//! A convenience full node: an [`Engine`], a world and a chain.

use crate::engine::{Engine, EngineConfig};
use crate::error::CoreError;
use crate::miner::{MinedBlock, Miner};
use crate::stats::ValidationReport;
use crate::validator::Validator;
use cc_ledger::{Block, Blockchain, ChainError, Transaction};
use cc_vm::World;

/// A node that owns a world, a chain and the [`Engine`] that executes
/// blocks, keeping all three consistent.
///
/// `Node` is a thin orchestration layer used by the examples and the
/// benchmark harness:
///
/// * a **mining node** calls [`Node::mine_and_append`] to execute client
///   transactions with its engine's miner and extend its chain;
/// * a **validating node** calls [`Node::validate_and_append`] with blocks
///   received from the network; its world is advanced only when the block
///   is accepted.
///
/// Build one with [`Node::builder`]:
///
/// ```
/// use cc_core::engine::EngineConfig;
/// use cc_core::node::Node;
/// use cc_vm::World;
///
/// let node = Node::builder()
///     .world(World::new())
///     .config(EngineConfig::new().threads(2))
///     .build()
///     .expect("valid config");
/// assert_eq!(node.engine().threads(), 2);
/// ```
#[derive(Debug)]
pub struct Node {
    world: World,
    chain: Blockchain,
    engine: Engine,
    /// Set when a validation rejected a block *after* replaying it: the
    /// world then holds effects of a block that was never appended and
    /// every later result would silently diverge. A stale node refuses
    /// further work; rebuild it from a trusted state.
    stale: bool,
}

/// Builder for [`Node`]: a world (deployed contracts, seeded state) plus
/// either a ready [`Engine`] or an [`EngineConfig`] to build one from.
#[derive(Debug, Default)]
pub struct NodeBuilder {
    world: Option<World>,
    engine: Option<Engine>,
    config: Option<EngineConfig>,
}

impl NodeBuilder {
    /// Sets the node's initial world. The genesis block commits to this
    /// world's state root. Defaults to an empty [`World`].
    pub fn world(mut self, world: World) -> Self {
        self.world = Some(world);
        self
    }

    /// Uses an already-built engine (e.g. one shared with other nodes).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Builds the node's engine from a configuration. Overridden by
    /// [`NodeBuilder::engine`] if both are given.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Constructs the node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the supplied configuration
    /// is rejected by [`EngineConfig::build`].
    pub fn build(self) -> Result<Node, CoreError> {
        let engine = match (self.engine, self.config) {
            (Some(engine), _) => engine,
            (None, Some(config)) => config.build()?,
            (None, None) => Engine::default(),
        };
        Ok(Node::new(self.world.unwrap_or_default(), engine))
    }
}

impl Node {
    /// Starts building a node.
    pub fn builder() -> NodeBuilder {
        NodeBuilder::default()
    }

    /// Creates a node over an already-populated world (deployed contracts,
    /// seeded state) executing blocks with `engine`. The genesis block
    /// commits to that initial state.
    pub fn new(world: World, engine: Engine) -> Self {
        let genesis_root = world.state_root();
        Node {
            world,
            chain: Blockchain::with_genesis_state(genesis_root),
            engine,
            stale: false,
        }
    }

    /// Whether this node's world has been corrupted by a rejected
    /// validation (see [`Node::validate_and_append`]). A stale node
    /// refuses to mine or validate; rebuild it from a trusted state.
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    fn ensure_fresh(&self) -> Result<(), CoreError> {
        if self.stale {
            return Err(CoreError::rejected(
                "node world is stale after a rejected validation; rebuild the node from a trusted state",
            ));
        }
        Ok(())
    }

    /// The node's world (current state).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The node's chain.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// The engine executing this node's blocks.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mines a block of `transactions` with the node's engine on top of
    /// the current head and appends it to the chain.
    ///
    /// # Errors
    ///
    /// Returns the miner's error, or a [`CoreError::BlockRejected`] if the
    /// assembled block unexpectedly fails structural chain checks.
    pub fn mine_and_append(
        &mut self,
        transactions: Vec<Transaction>,
    ) -> Result<MinedBlock, CoreError> {
        let miner = self.engine.clone();
        self.mine_and_append_with(miner.miner(), transactions)
    }

    /// Like [`Node::mine_and_append`] but with an explicit miner — the
    /// escape hatch for driving one node with several strategies (e.g.
    /// the interoperability tests alternating serial and parallel blocks).
    ///
    /// # Errors
    ///
    /// Same as [`Node::mine_and_append`].
    pub fn mine_and_append_with(
        &mut self,
        miner: &dyn Miner,
        transactions: Vec<Transaction>,
    ) -> Result<MinedBlock, CoreError> {
        self.ensure_fresh()?;
        let parent_hash = self.chain.head_hash();
        let number = self.chain.head().header.number + 1;
        let mined = miner.mine_on(&self.world, transactions, parent_hash, number)?;
        self.chain
            .append(mined.block.clone())
            .map_err(|e: ChainError| CoreError::rejected(e.to_string()))?;
        Ok(mined)
    }

    /// Validates a block received from another node with the node's
    /// engine and appends it on success.
    ///
    /// # Errors
    ///
    /// Propagates the validator's rejection, or rejects blocks that do not
    /// extend this node's chain.
    ///
    /// A rejection may leave the world holding effects of the rejected
    /// block (validation mutates the world; see
    /// [`crate::validator::Validator`]), so the node conservatively
    /// marks itself stale on *any* validator rejection and every
    /// subsequent call fails fast — a real node discards that state and
    /// resynchronizes, and so must callers of this API (rebuild the node
    /// from a trusted world). Blocks turned away before the validator
    /// runs (wrong parent) do not stale the node.
    pub fn validate_and_append(&mut self, block: &Block) -> Result<ValidationReport, CoreError> {
        let engine = self.engine.clone();
        self.validate_and_append_with(engine.validator(), block)
    }

    /// Like [`Node::validate_and_append`] but with an explicit validator
    /// (e.g. a legacy replay validator for schedule-less blocks).
    ///
    /// # Errors
    ///
    /// Same as [`Node::validate_and_append`].
    pub fn validate_and_append_with(
        &mut self,
        validator: &dyn Validator,
        block: &Block,
    ) -> Result<ValidationReport, CoreError> {
        self.ensure_fresh()?;
        if block.header.parent_hash != self.chain.head_hash() {
            return Err(CoreError::rejected(
                "block does not extend this node's head",
            ));
        }
        let report = match validator.validate(&self.world, block) {
            Ok(report) => report,
            Err(err) => {
                // The replay already mutated this node's world; nothing
                // built on it can be trusted any more.
                self.stale = true;
                return Err(err);
            }
        };
        self.chain
            .append(block.clone())
            .map_err(|e| CoreError::rejected(e.to_string()))?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecutionStrategy;
    use cc_vm::testing::CounterContract;
    use cc_vm::{Address, ArgValue, CallData};
    use std::sync::Arc;

    fn fresh_world() -> World {
        let world = World::new();
        world.deploy(Arc::new(CounterContract::new(Address::from_name(
            "counter-node",
        ))));
        world
    }

    fn engine_node(threads: usize) -> Node {
        Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(threads))
            .build()
            .expect("valid config")
    }

    fn block_txs(base: u64, n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| {
                Transaction::new(
                    base + i,
                    Address::from_index(i),
                    Address::from_name("counter-node"),
                    CallData::new("increment", vec![ArgValue::Uint(1)]),
                    1_000_000,
                )
            })
            .collect()
    }

    #[test]
    fn miner_node_and_validator_node_stay_in_sync() {
        let mut miner_node = engine_node(3);
        let mut validator_node = engine_node(3);

        for block_number in 0..3u64 {
            let mined = miner_node
                .mine_and_append(block_txs(block_number * 100, 12))
                .unwrap();
            let report = validator_node.validate_and_append(&mined.block).unwrap();
            assert_eq!(report.state_root, mined.block.header.state_root);
        }
        assert_eq!(miner_node.chain().len(), 4);
        assert_eq!(validator_node.chain().len(), 4);
        assert_eq!(
            miner_node.world().state_root(),
            validator_node.world().state_root()
        );
        assert!(miner_node.chain().verify_structure());
    }

    #[test]
    fn validator_node_rejects_blocks_that_do_not_extend_its_head() {
        let mut miner_node = engine_node(2);
        let mut validator_node = engine_node(2);

        let first = miner_node.mine_and_append(block_txs(0, 4)).unwrap();
        let second = miner_node.mine_and_append(block_txs(100, 4)).unwrap();
        // Skipping the first block: the second does not extend genesis.
        let err = validator_node
            .validate_and_append(&second.block)
            .unwrap_err();
        assert!(err.to_string().contains("does not extend"));
        validator_node.validate_and_append(&first.block).unwrap();
        validator_node.validate_and_append(&second.block).unwrap();
    }

    #[test]
    fn rejected_validation_stales_the_node() {
        let mut miner_node = engine_node(2);
        let mut validator_node = engine_node(2);

        let mined = miner_node.mine_and_append(block_txs(0, 6)).unwrap();
        let mut forged = mined.block.clone();
        forged.header.state_root = cc_primitives::sha256(b"forged");
        assert!(validator_node.validate_and_append(&forged).is_err());
        assert!(validator_node.is_stale());

        // The replay mutated the validator's world; the node now refuses
        // all further work instead of silently diverging.
        let err = validator_node
            .validate_and_append(&mined.block)
            .unwrap_err();
        assert!(err.to_string().contains("stale"), "got: {err}");
        let err = validator_node
            .mine_and_append(block_txs(100, 2))
            .unwrap_err();
        assert!(err.to_string().contains("stale"), "got: {err}");

        // A wrong-parent rejection happens before the validator runs and
        // does not stale the node.
        let mut fresh = engine_node(2);
        let second = miner_node.mine_and_append(block_txs(100, 2)).unwrap();
        assert!(fresh.validate_and_append(&second.block).is_err());
        assert!(!fresh.is_stale());
        fresh.validate_and_append(&mined.block).unwrap();
        fresh.validate_and_append(&second.block).unwrap();
    }

    #[test]
    fn builder_defaults_and_shared_engines() {
        // No world, no config: an empty world and the default engine.
        let node = Node::builder().build().unwrap();
        assert_eq!(node.engine().threads(), EngineConfig::DEFAULT_THREADS);
        assert_eq!(node.chain().len(), 1);

        // A bad config is rejected at build time.
        assert!(Node::builder()
            .config(EngineConfig::new().threads(0))
            .build()
            .is_err());

        // Two nodes can share one engine.
        let engine = Engine::serial();
        let mut a = Node::builder()
            .world(fresh_world())
            .engine(engine.clone())
            .build()
            .unwrap();
        let mut b = Node::builder()
            .world(fresh_world())
            .engine(engine)
            .build()
            .unwrap();
        assert_eq!(a.engine().strategy(), ExecutionStrategy::Serial);
        let mined = a.mine_and_append(block_txs(0, 5)).unwrap();
        b.validate_and_append(&mined.block).unwrap();
        assert_eq!(a.world().state_root(), b.world().state_root());
    }

    #[test]
    fn explicit_miner_and_validator_escape_hatches() {
        let mut node = engine_node(2);
        let serial = Engine::serial();
        let mined = node
            .mine_and_append_with(serial.miner(), block_txs(0, 6))
            .unwrap();
        assert_eq!(mined.stats.threads, 1);
        // The serially-mined block has no lock profiles, so replaying it
        // with the node's strict fork-join validator fails — the lenient
        // one accepts it.
        let lenient = Engine::builder().check_traces(false).build().unwrap();
        // Note the fresh node per attempt: a rejected validation leaves
        // the world in an unspecified state, so it must be discarded.
        assert!(engine_node(2).validate_and_append(&mined.block).is_err());
        engine_node(2)
            .validate_and_append_with(lenient.validator(), &mined.block)
            .unwrap();
    }
}
