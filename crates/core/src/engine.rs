//! The unified engine: one configurable entry point for executing blocks.
//!
//! The paper contributes two algorithms — speculative parallel mining and
//! deterministic fork-join validation — and the repo previously exposed
//! them as four unrelated structs whose constructors every consumer wired
//! up by hand. [`EngineConfig`] replaces that wiring: it names an
//! [`ExecutionStrategy`], a worker-thread count, a retry/backoff budget
//! and the schedule-capture / trace-check toggles, and [`EngineConfig::build`]
//! turns it into an [`Engine`] holding the matching [`Miner`] +
//! [`Validator`] pair. Everything above `cc_stm` — the benchmark harness,
//! the `repro` binary, the examples and the integration tests — goes
//! through this module.
//!
//! The strategy enum is the extension seam for future concurrency
//! back-ends (e.g. OptSmart-style optimistic multi-version execution):
//! adding a variant plus a `build` arm is all a new strategy needs for
//! every consumer to be able to select and benchmark it.
//!
//! # Example
//!
//! ```
//! use cc_core::engine::{Engine, EngineConfig, ExecutionStrategy};
//! use cc_ledger::Transaction;
//! use cc_vm::{Address, ArgValue, CallData, World, testing::CounterContract};
//! use std::sync::Arc;
//!
//! let build_world = || {
//!     let world = World::new();
//!     world.deploy(Arc::new(CounterContract::new(Address::from_name("counter"))));
//!     world
//! };
//! let txs: Vec<Transaction> = (0..16)
//!     .map(|i| Transaction::new(i, Address::from_index(i), Address::from_name("counter"),
//!          CallData::new("increment", vec![ArgValue::Uint(1)]), 1_000_000))
//!     .collect();
//!
//! // The default engine: the paper's speculative miner + fork-join
//! // validator with a fixed pool of three threads.
//! let engine = Engine::default();
//! let mined = engine.mine(&build_world(), txs.clone()).expect("mining succeeds");
//!
//! // A serial engine executes the same block the way Ethereum does today.
//! let serial = EngineConfig::new()
//!     .strategy(ExecutionStrategy::Serial)
//!     .build()
//!     .expect("valid config");
//! let baseline = serial.mine(&build_world(), txs).expect("serial mining succeeds");
//! assert_eq!(mined.block.header.state_root, baseline.block.header.state_root);
//!
//! // The engine's validator replays the published schedule and checks
//! // every commitment.
//! let report = engine.validate(&build_world(), &mined.block).expect("honest block");
//! assert_eq!(report.state_root, mined.block.header.state_root);
//! ```

use crate::error::CoreError;
use crate::miner::{MinedBlock, Miner, MvccMiner, ParallelMiner, SerialMiner};
use crate::stats::ValidationReport;
use crate::validator::{ParallelValidator, SerialValidator, Validator};
use cc_ledger::{Block, Transaction};
use cc_primitives::hash::Hash256;
use cc_stm::RetryPolicy;
use cc_vm::World;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Which concurrency back-end executes blocks.
///
/// Marked non-exhaustive: more back-ends may follow, and consumers
/// should be ready for new variants.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionStrategy {
    /// One transaction at a time, in block order — today's Ethereum
    /// behaviour and the baseline all the paper's speedups are measured
    /// against.
    Serial,
    /// The paper's pair: speculative STM mining (Algorithm 1) plus
    /// deterministic fork-join validation of the published schedule
    /// (Algorithm 2).
    #[default]
    SpeculativeStm,
    /// OptSmart-style optimistic multi-version execution (Anjana et al.):
    /// transactions read consistent snapshots from timestamped version
    /// lists, buffer writes privately, and validate their read sets at
    /// commit (first committer wins). Read-only transactions never abort.
    /// The miner synthesizes the same schedule metadata as the
    /// speculative strategy, so validation stays fork-join.
    OptimisticMvcc,
}

impl fmt::Display for ExecutionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionStrategy::Serial => f.write_str("serial"),
            ExecutionStrategy::SpeculativeStm => f.write_str("speculative-stm"),
            ExecutionStrategy::OptimisticMvcc => f.write_str("optimistic-mvcc"),
        }
    }
}

impl FromStr for ExecutionStrategy {
    type Err = CoreError;

    /// Parses the canonical names printed by [`fmt::Display`]
    /// (`serial`, `speculative-stm`, `optimistic-mvcc`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "serial" => Ok(ExecutionStrategy::Serial),
            "speculative-stm" => Ok(ExecutionStrategy::SpeculativeStm),
            "optimistic-mvcc" => Ok(ExecutionStrategy::OptimisticMvcc),
            other => Err(CoreError::InvalidConfig {
                reason: format!(
                    "unknown execution strategy {other:?} \
                     (expected serial, speculative-stm or optimistic-mvcc)"
                ),
            }),
        }
    }
}

/// Builder-style configuration for an [`Engine`].
///
/// Fields are public so code can *inspect* a configuration (the
/// benchmark harness prints them); construction reads best through the
/// fluent setters, which share names with the fields:
///
/// ```
/// use cc_core::engine::{EngineConfig, ExecutionStrategy};
/// let config = EngineConfig::new()
///     .strategy(ExecutionStrategy::SpeculativeStm)
///     .threads(4)
///     .capture_schedule(true);
/// assert_eq!(config.threads, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// The concurrency back-end to construct.
    pub strategy: ExecutionStrategy,
    /// Worker threads for parallel strategies (ignored by
    /// [`ExecutionStrategy::Serial`], which always runs one).
    pub threads: usize,
    /// Retry/backoff budget for speculative deadlock victims.
    pub retry: RetryPolicy,
    /// Whether the miner publishes schedule metadata (happens-before
    /// graph + lock profiles) in the block. Disabling is benchmark-only:
    /// without a schedule the fork-join validator must reject the block.
    pub capture_schedule: bool,
    /// Whether the validator replays and cross-checks lock traces
    /// (rejecting hidden data races). Disabling is ablation-only.
    pub check_traces: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            strategy: ExecutionStrategy::default(),
            threads: EngineConfig::DEFAULT_THREADS,
            retry: RetryPolicy::default(),
            capture_schedule: true,
            check_traces: true,
        }
    }
}

impl EngineConfig {
    /// The paper's evaluation runs "a fixed pool of three threads"; this
    /// is the single place that number lives.
    pub const DEFAULT_THREADS: usize = 3;

    /// The default configuration: speculative STM, three threads,
    /// default retry budget, schedule capture and trace checks on.
    pub fn new() -> Self {
        EngineConfig::default()
    }

    /// A configuration for the serial baseline.
    pub fn serial() -> Self {
        EngineConfig::new().strategy(ExecutionStrategy::Serial)
    }

    /// A configuration for the paper's speculative strategy (explicit
    /// form of [`EngineConfig::new`]).
    pub fn speculative() -> Self {
        EngineConfig::new().strategy(ExecutionStrategy::SpeculativeStm)
    }

    /// A configuration for the optimistic multi-version strategy.
    pub fn optimistic() -> Self {
        EngineConfig::new().strategy(ExecutionStrategy::OptimisticMvcc)
    }

    /// Selects the concurrency back-end.
    pub fn strategy(mut self, strategy: ExecutionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the worker-thread count for parallel strategies.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the full retry/backoff policy for speculative execution.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Caps how many times a deadlock victim is retried before the block
    /// fails to mine (keeps the rest of the retry policy unchanged).
    pub fn max_retries(mut self, max_attempts: u32) -> Self {
        self.retry.max_attempts = max_attempts;
        self
    }

    /// Toggles publication of schedule metadata by the miner.
    pub fn capture_schedule(mut self, capture: bool) -> Self {
        self.capture_schedule = capture;
        self
    }

    /// Toggles the validator's lock-trace / data-race checks.
    pub fn check_traces(mut self, check: bool) -> Self {
        self.check_traces = check;
        self
    }

    /// Validates the configuration and constructs the engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `threads` is zero or the
    /// retry budget allows no attempts at all.
    pub fn build(self) -> Result<Engine, CoreError> {
        if self.threads == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "worker thread count must be at least 1".into(),
            });
        }
        if self.retry.max_attempts == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "retry budget must allow at least one attempt".into(),
            });
        }
        let (miner, validator): (
            Arc<dyn Miner + Send + Sync>,
            Arc<dyn Validator + Send + Sync>,
        ) = match self.strategy {
            ExecutionStrategy::Serial => (
                Arc::new(SerialMiner::new().with_schedule_capture(self.capture_schedule)),
                Arc::new(SerialValidator::new()),
            ),
            ExecutionStrategy::SpeculativeStm => (
                Arc::new(
                    ParallelMiner::new(self.threads)
                        .with_retry_policy(self.retry)
                        .with_schedule_capture(self.capture_schedule),
                ),
                Arc::new(ParallelValidator::new(self.threads).with_trace_checks(self.check_traces)),
            ),
            ExecutionStrategy::OptimisticMvcc => (
                Arc::new(
                    MvccMiner::new(self.threads)
                        .with_retry_policy(self.retry)
                        .with_schedule_capture(self.capture_schedule),
                ),
                // The optimistic miner publishes the same schedule
                // metadata (profiles + happens-before edges) as the
                // speculative one, so the fork-join validator is reused
                // unchanged — validators stay strategy-agnostic.
                Arc::new(ParallelValidator::new(self.threads).with_trace_checks(self.check_traces)),
            ),
        };
        Ok(Engine {
            config: self,
            miner,
            validator,
        })
    }
}

/// A miner + validator pair constructed from one [`EngineConfig`].
///
/// The engine is cheap to clone (the strategy internals are shared) and
/// is the only execution entry point the benches, examples and
/// integration tests use.
#[derive(Clone)]
pub struct Engine {
    config: EngineConfig,
    miner: Arc<dyn Miner + Send + Sync>,
    validator: Arc<dyn Validator + Send + Sync>,
}

impl Default for Engine {
    fn default() -> Self {
        EngineConfig::default()
            .build()
            .expect("the default config is valid")
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts a configuration (alias for [`EngineConfig::new`], so call
    /// sites can read `Engine::builder().threads(4).build()`).
    pub fn builder() -> EngineConfig {
        EngineConfig::new()
    }

    /// A serial-baseline engine.
    pub fn serial() -> Engine {
        EngineConfig::serial()
            .build()
            .expect("the serial config is valid")
    }

    /// A speculative engine with `threads` workers and defaults for
    /// everything else.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `threads` is zero.
    pub fn speculative(threads: usize) -> Result<Engine, CoreError> {
        EngineConfig::speculative().threads(threads).build()
    }

    /// An optimistic multi-version engine with `threads` workers and
    /// defaults for everything else.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `threads` is zero.
    pub fn optimistic(threads: usize) -> Result<Engine, CoreError> {
        EngineConfig::optimistic().threads(threads).build()
    }

    /// The configuration this engine was built from.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's concurrency back-end.
    pub fn strategy(&self) -> ExecutionStrategy {
        self.config.strategy
    }

    /// Worker threads actually used when executing blocks (1 for the
    /// serial strategy regardless of the configured count).
    pub fn threads(&self) -> usize {
        match self.config.strategy {
            ExecutionStrategy::Serial => 1,
            ExecutionStrategy::SpeculativeStm | ExecutionStrategy::OptimisticMvcc => {
                self.config.threads
            }
        }
    }

    /// The strategy's miner, for call sites that need the raw trait
    /// object (e.g. driving someone else's [`crate::node::Node`]).
    pub fn miner(&self) -> &dyn Miner {
        self.miner.as_ref()
    }

    /// The strategy's validator.
    pub fn validator(&self) -> &dyn Validator {
        self.validator.as_ref()
    }

    /// Executes `transactions` against `world` and assembles a block at
    /// height 1 (see [`Miner::mine`]).
    ///
    /// # Errors
    ///
    /// Propagates the miner's [`CoreError::MiningFailed`].
    pub fn mine(
        &self,
        world: &World,
        transactions: Vec<Transaction>,
    ) -> Result<MinedBlock, CoreError> {
        self.miner.mine(world, transactions)
    }

    /// Mines on top of an explicit parent (see [`Miner::mine_on`]).
    ///
    /// # Errors
    ///
    /// Propagates the miner's [`CoreError::MiningFailed`].
    pub fn mine_on(
        &self,
        world: &World,
        transactions: Vec<Transaction>,
        parent_hash: Hash256,
        number: u64,
    ) -> Result<MinedBlock, CoreError> {
        self.miner.mine_on(world, transactions, parent_hash, number)
    }

    /// Replays `block` on `world` and checks every commitment (see
    /// [`Validator::validate`]).
    ///
    /// # Errors
    ///
    /// Propagates the validator's rejection.
    pub fn validate(&self, world: &World, block: &Block) -> Result<ValidationReport, CoreError> {
        self.validator.validate(world, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vm::testing::CounterContract;
    use cc_vm::{Address, ArgValue, CallData};

    fn counter_world() -> World {
        let world = World::new();
        world.deploy(Arc::new(CounterContract::new(Address::from_name(
            "counter-engine",
        ))));
        world
    }

    fn counter_txs(n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| {
                Transaction::new(
                    i,
                    Address::from_index(i % 3),
                    Address::from_name("counter-engine"),
                    CallData::new("increment", vec![ArgValue::Uint(1)]),
                    1_000_000,
                )
            })
            .collect()
    }

    #[test]
    fn default_config_matches_the_paper() {
        let config = EngineConfig::default();
        assert_eq!(config.strategy, ExecutionStrategy::SpeculativeStm);
        assert_eq!(config.threads, EngineConfig::DEFAULT_THREADS);
        assert_eq!(config.threads, 3, "the paper's fixed pool of three threads");
        assert!(config.capture_schedule);
        assert!(config.check_traces);
    }

    #[test]
    fn zero_threads_and_zero_retries_are_rejected() {
        assert!(matches!(
            EngineConfig::new().threads(0).build(),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            EngineConfig::new().max_retries(0).build(),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert!(Engine::speculative(0).is_err());
    }

    #[test]
    fn engines_mine_and_validate() {
        let engine = Engine::default();
        let mined = engine.mine(&counter_world(), counter_txs(20)).unwrap();
        let report = engine.validate(&counter_world(), &mined.block).unwrap();
        assert_eq!(report.state_root, mined.block.header.state_root);
        assert_eq!(report.threads, 3);
    }

    #[test]
    fn serial_and_speculative_agree() {
        let serial = Engine::serial();
        let speculative = Engine::speculative(4).unwrap();
        let a = serial.mine(&counter_world(), counter_txs(25)).unwrap();
        let b = speculative.mine(&counter_world(), counter_txs(25)).unwrap();
        assert_eq!(a.block.header.state_root, b.block.header.state_root);
        assert_eq!(serial.threads(), 1);
        assert_eq!(speculative.threads(), 4);
    }

    #[test]
    fn capture_toggle_removes_the_schedule() {
        let engine = Engine::builder().capture_schedule(false).build().unwrap();
        let mined = engine.mine(&counter_world(), counter_txs(8)).unwrap();
        assert!(mined.block.schedule.is_none());
        assert!(mined.block.is_well_formed());
        // Without a published schedule the fork-join validator must
        // reject the block.
        assert!(matches!(
            engine.validate(&counter_world(), &mined.block),
            Err(CoreError::MissingSchedule)
        ));
        // A serial engine without capture also mines schedule-less blocks
        // and its validator still accepts them (block-order replay).
        let serial = EngineConfig::serial()
            .capture_schedule(false)
            .build()
            .unwrap();
        let mined = serial.mine(&counter_world(), counter_txs(8)).unwrap();
        assert!(mined.block.schedule.is_none());
        serial.validate(&counter_world(), &mined.block).unwrap();
    }

    #[test]
    fn trace_check_toggle_reaches_the_validator() {
        // A serially-mined block has no lock profiles; the speculative
        // validator accepts it only with trace checks disabled.
        let serial_block = Engine::serial()
            .mine(&counter_world(), counter_txs(6))
            .unwrap();
        let strict = Engine::default();
        assert!(strict
            .validate(&counter_world(), &serial_block.block)
            .is_err());
        let lenient = Engine::builder().check_traces(false).build().unwrap();
        lenient
            .validate(&counter_world(), &serial_block.block)
            .unwrap();
    }

    #[test]
    fn engine_is_cloneable_and_debuggable() {
        let engine = Engine::default();
        let clone = engine.clone();
        let mined = clone.mine(&counter_world(), counter_txs(4)).unwrap();
        engine.validate(&counter_world(), &mined.block).unwrap();
        assert!(format!("{engine:?}").contains("SpeculativeStm"));
        assert!(ExecutionStrategy::Serial.to_string().contains("serial"));
    }

    #[test]
    fn strategy_names_round_trip_through_from_str() {
        for strategy in [
            ExecutionStrategy::Serial,
            ExecutionStrategy::SpeculativeStm,
            ExecutionStrategy::OptimisticMvcc,
        ] {
            let parsed: ExecutionStrategy = strategy.to_string().parse().unwrap();
            assert_eq!(parsed, strategy);
        }
        assert!(matches!(
            "mvcc".parse::<ExecutionStrategy>(),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert!("Serial".parse::<ExecutionStrategy>().is_err());
    }

    #[test]
    fn optimistic_engine_mines_and_validates() {
        let optimistic = Engine::optimistic(3).unwrap();
        assert_eq!(optimistic.strategy(), ExecutionStrategy::OptimisticMvcc);
        assert_eq!(optimistic.threads(), 3);
        let mined = optimistic.mine(&counter_world(), counter_txs(20)).unwrap();
        let baseline = Engine::serial()
            .mine(&counter_world(), counter_txs(20))
            .unwrap();
        assert_eq!(
            mined.block.header.state_root,
            baseline.block.header.state_root
        );
        // The published schedule validates under the ordinary fork-join
        // validator, exactly like a speculatively-mined block.
        let report = optimistic.validate(&counter_world(), &mined.block).unwrap();
        assert_eq!(report.state_root, mined.block.header.state_root);
    }

    #[test]
    fn custom_retry_policy_is_threaded_through() {
        let config = EngineConfig::new()
            .retry_policy(RetryPolicy::no_backoff(16))
            .max_retries(8);
        assert_eq!(config.retry.max_attempts, 8);
        assert_eq!(config.retry.base_backoff_us, 0);
        let engine = config.build().unwrap();
        let mined = engine.mine(&counter_world(), counter_txs(30)).unwrap();
        assert_eq!(mined.block.len(), 30);
    }
}
