//! A deterministic fork-join executor for dependency DAGs.
//!
//! Paper Algorithm 2 turns the happens-before graph into a fork-join
//! program: each transaction becomes a task that joins on its immediate
//! predecessors before executing. This module provides the equivalent
//! executor: a work-stealing pool (crossbeam deques) that runs each task
//! exactly once, only after all of its predecessors have completed. The
//! validator is free to use any number of threads — the paper notes the
//! validator "is not required to match the miner's level of parallelism".
//!
//! The executor itself is generic over the task body, so it is also reused
//! by tests and the ablation benchmarks.

use crate::schedule::HappensBeforeGraph;
use crossbeam::deque::{Injector, Steal};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `task(i)` for every `i in 0..graph.len()`, never running a task
/// before all of its happens-before predecessors have finished, using
/// `threads` worker threads.
///
/// Tasks with no ordering constraint run concurrently; the wall-clock
/// lower bound is therefore the critical path of the graph, exactly as in
/// a fork-join program built per Algorithm 2.
///
/// The `task` closure is called exactly once per index. Panics in tasks
/// propagate after all workers stop.
pub fn run_fork_join<F>(graph: &HappensBeforeGraph, threads: usize, task: F)
where
    F: Fn(usize) + Sync,
{
    let n = graph.len();
    if n == 0 {
        return;
    }
    let threads = threads.max(1);

    // Remaining-predecessor counters; a task becomes ready when its
    // counter reaches zero.
    let pending: Vec<AtomicUsize> = (0..n)
        .map(|i| AtomicUsize::new(graph.pred_count(i)))
        .collect();
    let completed = AtomicUsize::new(0);
    let injector: Injector<usize> = Injector::new();
    for (i, count) in pending.iter().enumerate() {
        if count.load(Ordering::Relaxed) == 0 {
            injector.push(i);
        }
    }

    let run_one = |i: usize| {
        task(i);
        completed.fetch_add(1, Ordering::Release);
        for succ in graph.successors(i) {
            if pending[succ].fetch_sub(1, Ordering::AcqRel) == 1 {
                injector.push(succ);
            }
        }
    };

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                // Idle workers back off exponentially so that a long
                // dependency chain executed by one worker is not slowed
                // down by the others hammering the injector.
                let mut idle_spins = 0u32;
                loop {
                    match injector.steal() {
                        Steal::Success(i) => {
                            idle_spins = 0;
                            run_one(i);
                        }
                        Steal::Retry => continue,
                        Steal::Empty => {
                            if completed.load(Ordering::Acquire) >= n {
                                break;
                            }
                            idle_spins = idle_spins.saturating_add(1);
                            if idle_spins < 16 {
                                std::hint::spin_loop();
                            } else if idle_spins < 64 {
                                std::thread::yield_now();
                            } else {
                                std::thread::sleep(std::time::Duration::from_micros(20));
                            }
                        }
                    }
                }
            });
        }
    })
    .expect("fork-join worker panicked");
}

/// Runs the tasks strictly in the given serial order on the calling
/// thread. Used by the serial validator baseline and by tests comparing
/// serial and parallel replays.
pub fn run_serial<F>(order: &[usize], task: F)
where
    F: Fn(usize),
{
    for &i in order {
        task(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    fn chain(n: usize) -> HappensBeforeGraph {
        HappensBeforeGraph::from_edges(n, (1..n).map(|i| (i - 1, i)))
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        let g = HappensBeforeGraph::new(100);
        let counts: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        run_fork_join(&g, 4, |i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn chain_preserves_order() {
        let g = chain(50);
        let log = Mutex::new(Vec::new());
        run_fork_join(&g, 4, |i| {
            log.lock().push(i);
        });
        assert_eq!(*log.lock(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn diamond_dependencies_respected() {
        // 0 -> {1, 2} -> 3
        let g = HappensBeforeGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        for _ in 0..20 {
            let log = Mutex::new(Vec::new());
            run_fork_join(&g, 3, |i| {
                log.lock().push(i);
            });
            let order = log.lock().clone();
            let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
            assert_eq!(pos(0), 0);
            assert_eq!(pos(3), 3);
        }
    }

    #[test]
    fn random_dag_respects_all_edges() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 60;
        let mut edges = Vec::new();
        for b in 1..n {
            for a in 0..b {
                if rng.gen_bool(0.08) {
                    edges.push((a, b));
                }
            }
        }
        let g = HappensBeforeGraph::from_edges(n, edges);
        let log = Mutex::new(Vec::new());
        run_fork_join(&g, 5, |i| {
            log.lock().push(i);
        });
        let order = log.lock().clone();
        assert_eq!(order.iter().copied().collect::<HashSet<_>>().len(), n);
        let pos: Vec<usize> = {
            let mut p = vec![0; n];
            for (idx, &v) in order.iter().enumerate() {
                p[v] = idx;
            }
            p
        };
        for (a, b) in g.edges() {
            assert!(pos[a] < pos[b], "edge ({a},{b}) violated");
        }
    }

    #[test]
    fn single_thread_equals_topological_execution() {
        let g = chain(10);
        let log = Mutex::new(Vec::new());
        run_fork_join(&g, 1, |i| log.lock().push(i));
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = HappensBeforeGraph::new(0);
        run_fork_join(&g, 3, |_| panic!("no tasks expected"));
    }

    #[test]
    fn run_serial_follows_given_order() {
        let log = Mutex::new(Vec::new());
        run_serial(&[2, 0, 1], |i| log.lock().push(i));
        assert_eq!(*log.lock(), vec![2, 0, 1]);
    }
}
