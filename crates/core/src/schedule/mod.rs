//! Schedule capture: from lock profiles to a happens-before graph and an
//! equivalent serial order.

mod graph;

pub(crate) use graph::for_each_consecutive_run_pair;
pub use graph::{HappensBeforeGraph, Reachability};
