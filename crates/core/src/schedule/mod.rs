//! Schedule capture: from lock profiles to a happens-before graph and an
//! equivalent serial order.

mod graph;

pub use graph::{HappensBeforeGraph, Reachability};
