//! The happens-before graph over a block's transactions.
//!
//! Paper §4: every abstract lock carries a use counter; a committing
//! speculative action increments the counters of the locks it holds and
//! publishes the resulting lock profile. "If an abstract lock has counter
//! value 1 in A's profile and 2 in C's profile, then C must be scheduled
//! after A." This module reconstructs that ordering.

use crate::error::CoreError;
use cc_ledger::{ProfileRecord, ScheduleMetadata};
use cc_stm::{LockId, LockMode, LockProfile};
use std::collections::{BTreeMap, BTreeSet};

/// A directed acyclic graph whose vertices are the block's transaction
/// indices and whose edges order conflicting transactions according to the
/// miner's commit order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HappensBeforeGraph {
    n: usize,
    succs: Vec<BTreeSet<usize>>,
    preds: Vec<BTreeSet<usize>>,
}

impl HappensBeforeGraph {
    /// Creates a graph over `n` transactions with no edges.
    pub fn new(n: usize) -> Self {
        HappensBeforeGraph {
            n,
            succs: vec![BTreeSet::new(); n],
            preds: vec![BTreeSet::new(); n],
        }
    }

    /// Number of vertices (transactions).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the edge `before → after` (self-edges and duplicates are
    /// ignored).
    pub fn add_edge(&mut self, before: usize, after: usize) {
        if before == after || before >= self.n || after >= self.n {
            return;
        }
        self.succs[before].insert(after);
        self.preds[after].insert(before);
    }

    /// Whether the edge `before → after` is present.
    pub fn has_edge(&self, before: usize, after: usize) -> bool {
        before < self.n && self.succs[before].contains(&after)
    }

    /// Immediate predecessors of `i` (the transactions a fork-join task
    /// for `i` must join on — paper Algorithm 2's `B`).
    pub fn predecessors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.preds[i].iter().copied()
    }

    /// Immediate successors of `i`.
    pub fn successors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.succs[i].iter().copied()
    }

    /// All edges as `(before, after)` pairs, sorted.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (a, succs) in self.succs.iter().enumerate() {
            for &b in succs {
                out.push((a, b));
            }
        }
        out
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(BTreeSet::len).sum()
    }

    /// Builds the happens-before graph from the lock profiles of a block's
    /// committed transactions (`profiles[i]` is transaction `i`'s profile).
    ///
    /// For every abstract lock, the committing transactions that held it
    /// are ordered by their counter values; an edge is added between every
    /// ordered pair whose lock modes do not commute. Two transactions that
    /// only ever held a lock in additive (commutative) mode are left
    /// unordered, preserving the parallelism the miner actually exploited.
    pub fn from_profiles(profiles: &[LockProfile]) -> Self {
        let mut graph = HappensBeforeGraph::new(profiles.len());
        // lock -> [(counter, tx_index, mode)]
        let mut by_lock: BTreeMap<LockId, Vec<(u64, usize, LockMode)>> = BTreeMap::new();
        for (tx_index, profile) in profiles.iter().enumerate() {
            for entry in &profile.locks {
                by_lock
                    .entry(entry.lock)
                    .or_default()
                    .push((entry.counter, tx_index, entry.mode));
            }
        }
        for holders in by_lock.values_mut() {
            holders.sort_unstable();
            for i in 0..holders.len() {
                for j in (i + 1)..holders.len() {
                    let (_, tx_a, mode_a) = holders[i];
                    let (_, tx_b, mode_b) = holders[j];
                    if mode_a.conflicts(mode_b) {
                        graph.add_edge(tx_a, tx_b);
                    }
                }
            }
        }
        graph
    }

    /// A topological order of the vertices, or `None` if the graph has a
    /// cycle (which can only happen for a corrupted schedule — profiles
    /// produced by an actual speculative execution are acyclic because
    /// counter order is commit order).
    pub fn topological_sort(&self) -> Option<Vec<usize>> {
        let mut indegree: Vec<usize> = (0..self.n).map(|i| self.preds[i].len()).collect();
        // Deterministic Kahn's algorithm: always pick the smallest ready
        // index, so the published serial order is reproducible.
        let mut ready: BTreeSet<usize> = (0..self.n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(&next) = ready.iter().next() {
            ready.remove(&next);
            order.push(next);
            for &succ in &self.succs[next] {
                indegree[succ] -= 1;
                if indegree[succ] == 0 {
                    ready.insert(succ);
                }
            }
        }
        if order.len() == self.n {
            Some(order)
        } else {
            None
        }
    }

    /// Length (in vertices) of the longest path — the critical path of the
    /// fork-join program a validator will execute. Zero for an empty
    /// graph.
    pub fn critical_path(&self) -> usize {
        let Some(order) = self.topological_sort() else {
            return self.n; // a cyclic (corrupt) graph is maximally serial
        };
        let mut depth = vec![1usize; self.n];
        for &v in &order {
            for &succ in &self.succs[v] {
                depth[succ] = depth[succ].max(depth[v] + 1);
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Computes reachability (the transitive closure), used by validators
    /// to check that every pair of conflicting transactions is ordered by
    /// the published schedule.
    pub fn reachability(&self) -> Reachability {
        let words = self.n.div_ceil(64);
        let mut reach = vec![vec![0u64; words]; self.n];
        let order = self
            .topological_sort()
            .unwrap_or_else(|| (0..self.n).collect());
        // Process in reverse topological order so each vertex's set is
        // complete before its predecessors use it.
        for &v in order.iter().rev() {
            for &succ in &self.succs[v] {
                // reach[v] |= reach[succ]; reach[v] |= {succ}
                let (head, tail) = reach.split_at_mut(v.max(succ));
                let (a, b) = if v < succ {
                    (&mut head[v], &tail[0])
                } else {
                    (&mut tail[0], &head[succ])
                };
                for (av, bv) in a.iter_mut().zip(b.iter()) {
                    *av |= *bv;
                }
                a[succ / 64] |= 1u64 << (succ % 64);
            }
        }
        Reachability { n: self.n, reach }
    }

    /// Converts the graph plus the per-transaction profiles into the
    /// metadata a miner publishes in the block.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedSchedule`] if the graph is cyclic.
    pub fn to_metadata(&self, profiles: &[LockProfile]) -> Result<ScheduleMetadata, CoreError> {
        let serial_order = self
            .topological_sort()
            .ok_or_else(|| CoreError::MalformedSchedule {
                reason: "happens-before graph contains a cycle".into(),
            })?;
        Ok(ScheduleMetadata {
            serial_order,
            edges: self.edges(),
            profiles: profiles
                .iter()
                .enumerate()
                .map(|(tx_index, profile)| ProfileRecord {
                    tx_index,
                    profile: profile.clone(),
                })
                .collect(),
        })
    }

    /// Reconstructs a graph from published metadata, validating its shape.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedSchedule`] if the serial order is not
    /// a permutation of `0..n`, an edge index is out of range, the edge
    /// set is cyclic, or the serial order is inconsistent with the edges.
    pub fn from_metadata(meta: &ScheduleMetadata, n: usize) -> Result<Self, CoreError> {
        if meta.serial_order.len() != n {
            return Err(CoreError::MalformedSchedule {
                reason: format!(
                    "serial order covers {} transactions, block has {n}",
                    meta.serial_order.len()
                ),
            });
        }
        let mut seen = vec![false; n];
        for &i in &meta.serial_order {
            if i >= n || seen[i] {
                return Err(CoreError::MalformedSchedule {
                    reason: "serial order is not a permutation of the block's transactions".into(),
                });
            }
            seen[i] = true;
        }
        let mut graph = HappensBeforeGraph::new(n);
        for &(a, b) in &meta.edges {
            if a >= n || b >= n || a == b {
                return Err(CoreError::MalformedSchedule {
                    reason: format!("edge ({a}, {b}) is out of range"),
                });
            }
            graph.add_edge(a, b);
        }
        let Some(_) = graph.topological_sort() else {
            return Err(CoreError::MalformedSchedule {
                reason: "published edges contain a cycle".into(),
            });
        };
        // The published serial order must itself respect every edge.
        let mut position = vec![0usize; n];
        for (pos, &tx) in meta.serial_order.iter().enumerate() {
            position[tx] = pos;
        }
        for &(a, b) in &meta.edges {
            if position[a] > position[b] {
                return Err(CoreError::MalformedSchedule {
                    reason: format!("serial order places {b} before its predecessor {a}"),
                });
            }
        }
        Ok(graph)
    }
}

/// Precomputed reachability over a [`HappensBeforeGraph`].
#[derive(Debug, Clone)]
pub struct Reachability {
    n: usize,
    reach: Vec<Vec<u64>>,
}

impl Reachability {
    /// Whether there is a (possibly multi-edge) path `from → … → to`.
    pub fn can_reach(&self, from: usize, to: usize) -> bool {
        if from >= self.n || to >= self.n {
            return false;
        }
        self.reach[from][to / 64] & (1u64 << (to % 64)) != 0
    }

    /// Whether two transactions are ordered one way or the other.
    pub fn ordered(&self, a: usize, b: usize) -> bool {
        self.can_reach(a, b) || self.can_reach(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_stm::{LockSpace, ProfileEntry};

    fn profile(entries: &[(LockId, LockMode, u64)]) -> LockProfile {
        LockProfile::new(
            entries
                .iter()
                .map(|&(lock, mode, counter)| ProfileEntry {
                    lock,
                    mode,
                    counter,
                })
                .collect(),
        )
    }

    #[test]
    fn edges_from_conflicting_profiles_follow_counters() {
        let voters = LockSpace::new("voters");
        let alice = voters.lock_for(&"alice");
        let bob = voters.lock_for(&"bob");
        // tx0 and tx2 both touch alice (counters 1 then 2); tx1 touches bob.
        let profiles = vec![
            profile(&[(alice, LockMode::Exclusive, 1)]),
            profile(&[(bob, LockMode::Exclusive, 1)]),
            profile(&[(alice, LockMode::Exclusive, 2)]),
        ];
        let g = HappensBeforeGraph::from_profiles(&profiles);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.critical_path(), 2);
    }

    #[test]
    fn shared_readers_stay_unordered() {
        // Read-read pairs must create no happens-before edge: three
        // transactions read the same key (counters 1..3), a fourth writes
        // it. Only the write is ordered — after every reader.
        let accounts = LockSpace::new("accounts");
        let key = accounts.lock_for(&"alice");
        let profiles = vec![
            profile(&[(key, LockMode::Shared, 1)]),
            profile(&[(key, LockMode::Shared, 2)]),
            profile(&[(key, LockMode::Shared, 3)]),
            profile(&[(key, LockMode::Exclusive, 4)]),
        ];
        let g = HappensBeforeGraph::from_profiles(&profiles);
        for a in 0..3 {
            for b in 0..3 {
                assert!(!g.has_edge(a, b), "read-read edge {a}->{b} must not exist");
            }
            assert!(g.has_edge(a, 3), "the write is ordered after reader {a}");
        }
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.critical_path(), 2, "all reads run in one parallel step");
    }

    #[test]
    fn additive_holders_stay_unordered() {
        let counts = LockSpace::new("voteCounts");
        let p0 = counts.lock_for(&0u64);
        let profiles = vec![
            profile(&[(p0, LockMode::Additive, 1)]),
            profile(&[(p0, LockMode::Additive, 2)]),
            profile(&[(p0, LockMode::Exclusive, 3)]),
        ];
        let g = HappensBeforeGraph::from_profiles(&profiles);
        assert!(!g.has_edge(0, 1), "commutative increments are unordered");
        assert!(g.has_edge(0, 2), "the exclusive read is ordered after both");
        assert!(g.has_edge(1, 2));
        assert_eq!(g.critical_path(), 2);
    }

    #[test]
    fn topological_sort_respects_edges_and_is_deterministic() {
        let mut g = HappensBeforeGraph::new(4);
        g.add_edge(2, 0);
        g.add_edge(0, 3);
        let order = g.topological_sort().unwrap();
        let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
        assert!(pos(2) < pos(0));
        assert!(pos(0) < pos(3));
        assert_eq!(order, g.topological_sort().unwrap());
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = HappensBeforeGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert!(g.topological_sort().is_none());
        assert!(g
            .to_metadata(&[LockProfile::default(), LockProfile::default()])
            .is_err());
    }

    #[test]
    fn critical_path_of_chain_and_antichain() {
        let mut chain = HappensBeforeGraph::new(5);
        for i in 0..4 {
            chain.add_edge(i, i + 1);
        }
        assert_eq!(chain.critical_path(), 5);
        let antichain = HappensBeforeGraph::new(5);
        assert_eq!(antichain.critical_path(), 1);
        assert_eq!(HappensBeforeGraph::new(0).critical_path(), 0);
    }

    #[test]
    fn reachability_closure() {
        let mut g = HappensBeforeGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        let r = g.reachability();
        assert!(r.can_reach(0, 2));
        assert!(!r.can_reach(2, 0));
        assert!(!r.can_reach(0, 4));
        assert!(r.ordered(0, 2));
        assert!(r.ordered(2, 0));
        assert!(!r.ordered(0, 3));
        assert!(!r.can_reach(0, 99));
    }

    #[test]
    fn metadata_roundtrip() {
        let voters = LockSpace::new("v");
        let a = voters.lock_for(&1u64);
        let profiles = vec![
            profile(&[(a, LockMode::Exclusive, 1)]),
            profile(&[(a, LockMode::Exclusive, 2)]),
        ];
        let g = HappensBeforeGraph::from_profiles(&profiles);
        let meta = g.to_metadata(&profiles).unwrap();
        assert_eq!(meta.serial_order, vec![0, 1]);
        assert_eq!(meta.profiles.len(), 2);
        let g2 = HappensBeforeGraph::from_metadata(&meta, 2).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn malformed_metadata_is_rejected() {
        // Wrong length.
        let meta = ScheduleMetadata::sequential(3);
        assert!(HappensBeforeGraph::from_metadata(&meta, 2).is_err());
        // Not a permutation.
        let meta = ScheduleMetadata {
            serial_order: vec![0, 0],
            edges: vec![],
            profiles: vec![],
        };
        assert!(HappensBeforeGraph::from_metadata(&meta, 2).is_err());
        // Edge out of range.
        let meta = ScheduleMetadata {
            serial_order: vec![0, 1],
            edges: vec![(0, 5)],
            profiles: vec![],
        };
        assert!(HappensBeforeGraph::from_metadata(&meta, 2).is_err());
        // Cyclic edges.
        let meta = ScheduleMetadata {
            serial_order: vec![0, 1],
            edges: vec![(0, 1), (1, 0)],
            profiles: vec![],
        };
        assert!(HappensBeforeGraph::from_metadata(&meta, 2).is_err());
        // Serial order contradicting an edge.
        let meta = ScheduleMetadata {
            serial_order: vec![1, 0],
            edges: vec![(0, 1)],
            profiles: vec![],
        };
        assert!(HappensBeforeGraph::from_metadata(&meta, 2).is_err());
    }

    #[test]
    fn empty_graph_behaviour() {
        let g = HappensBeforeGraph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.topological_sort().unwrap(), Vec::<usize>::new());
        assert_eq!(g.edge_count(), 0);
    }
}
