//! The happens-before graph over a block's transactions.
//!
//! Paper §4: every abstract lock carries a use counter; a committing
//! speculative action increments the counters of the locks it holds and
//! publishes the resulting lock profile. "If an abstract lock has counter
//! value 1 in A's profile and 2 in C's profile, then C must be scheduled
//! after A." This module reconstructs that ordering.
//!
//! Two representation choices keep the schedule pipeline cheap per
//! transaction (schedules ship inside blocks and are re-validated by every
//! node, so their size and build cost are consensus-wide per-op costs):
//!
//! * **Transitively-reduced construction.** [`from_profiles`] does *not*
//!   materialize every ordered conflicting pair per lock (O(h²) edges for
//!   h holders of a hot lock). Each lock's holders, sorted by counter, are
//!   grouped into maximal *runs* of mutually-commuting modes, and edges are
//!   added only between consecutive runs. This is the per-lock transitive
//!   reduction: an exclusive chain of h holders publishes h−1 edges
//!   instead of h(h−1)/2, and mixed modes produce writer→readers→writer
//!   fans. Reachability — and therefore the critical path — is exactly
//!   that of the all-pairs graph (the invariant is
//!   *reachability-preserving*, not edge-preserving; a property test in
//!   `tests/schedule_reduction.rs` checks it against an all-pairs
//!   reference).
//! * **CSR adjacency.** Successors and predecessors are flat sorted arrays
//!   plus per-vertex offsets (compressed sparse row) instead of one
//!   `BTreeSet` per vertex, with duplicate edges removed once at build
//!   time. The topological order is computed **once** per graph and reused
//!   by [`topological_sort`], [`critical_path`], [`reachability`] and
//!   [`into_metadata`] — a mined block used to run Kahn's algorithm three
//!   times and the validator a fourth.
//!
//! [`from_profiles`]: HappensBeforeGraph::from_profiles
//! [`topological_sort`]: HappensBeforeGraph::topological_sort
//! [`critical_path`]: HappensBeforeGraph::critical_path
//! [`reachability`]: HappensBeforeGraph::reachability
//! [`into_metadata`]: HappensBeforeGraph::into_metadata

use crate::error::CoreError;
use cc_ledger::{ProfileRecord, ScheduleMetadata};
use cc_primitives::fx::FxHashMap;
use cc_stm::{LockId, LockMode, LockProfile};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Splits `holders` (already sorted — by counter on the miner side, by
/// serial position on the validator side) into maximal runs of
/// mutually-commuting modes and calls `pair(prev_run, next_run)` for each
/// consecutive pair of runs; `pair` returning `false` stops the walk.
///
/// This is the one definition of a "run" shared by the reduced
/// construction ([`HappensBeforeGraph::from_profiles`]) and the
/// validator's race check — the two consensus-critical sides must agree
/// on run boundaries, so they must share this code.
pub(crate) fn for_each_consecutive_run_pair<T>(
    holders: &[T],
    mode_of: impl Fn(&T) -> LockMode,
    mut pair: impl FnMut(&[T], &[T]) -> bool,
) {
    let mut run_start = 0usize;
    let mut prev_run: Option<(usize, usize)> = None;
    for i in 1..=holders.len() {
        let boundary =
            i == holders.len() || mode_of(&holders[i]).conflicts(mode_of(&holders[run_start]));
        if !boundary {
            continue;
        }
        if let Some((p0, p1)) = prev_run {
            if !pair(&holders[p0..p1], &holders[run_start..i]) {
                return;
            }
        }
        prev_run = Some((run_start, i));
        run_start = i;
    }
}

/// A directed acyclic graph whose vertices are the block's transaction
/// indices and whose edges order conflicting transactions according to the
/// miner's commit order.
///
/// The graph is immutable once built: constructors take the full edge set
/// (or derive it from lock profiles), deduplicate it, lay both adjacency
/// directions out in CSR form and compute the canonical topological order
/// up front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HappensBeforeGraph {
    n: usize,
    /// Successor targets, grouped by source vertex, sorted within a group.
    succs: Vec<u32>,
    /// `succs[succ_offsets[v]..succ_offsets[v+1]]` are `v`'s successors.
    succ_offsets: Vec<u32>,
    /// Predecessor sources, grouped by target vertex, sorted within a group.
    preds: Vec<u32>,
    /// `preds[pred_offsets[v]..pred_offsets[v+1]]` are `v`'s predecessors.
    pred_offsets: Vec<u32>,
    /// The canonical (smallest-ready-index-first) topological order, or
    /// `None` if the edge set is cyclic (possible only for corrupted
    /// input — profiles produced by an actual speculative execution are
    /// acyclic because counter order is commit order).
    topo: Option<Vec<usize>>,
}

impl HappensBeforeGraph {
    /// Creates a graph over `n` transactions with no edges.
    pub fn new(n: usize) -> Self {
        Self::build(n, Vec::new())
    }

    /// Builds a graph over `n` transactions from an explicit edge list.
    /// Self-edges and out-of-range endpoints are ignored; duplicates are
    /// removed.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let list: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|&(a, b)| a != b && a < n && b < n)
            .map(|(a, b)| (a as u32, b as u32))
            .collect();
        Self::build(n, list)
    }

    /// Drops self-edges, deduplicates, lays the edges out in CSR form and
    /// computes the canonical topological order once. (A profile carrying
    /// two entries for the same lock puts one transaction in two adjacent
    /// runs of `from_profiles`, which would otherwise order the
    /// transaction against itself.)
    fn build(n: usize, mut edges: Vec<(u32, u32)>) -> Self {
        debug_assert!(n <= u32::MAX as usize, "blocks index transactions in u32");
        edges.retain(|&(a, b)| a != b);
        edges.sort_unstable();
        edges.dedup();

        let mut succ_offsets = vec![0u32; n + 1];
        for &(a, _) in &edges {
            succ_offsets[a as usize + 1] += 1;
        }
        for v in 0..n {
            succ_offsets[v + 1] += succ_offsets[v];
        }
        // `edges` is sorted by (source, target), so the targets are already
        // grouped by source and sorted within each group.
        let succs: Vec<u32> = edges.iter().map(|&(_, b)| b).collect();

        let mut pred_offsets = vec![0u32; n + 1];
        for &(_, b) in &edges {
            pred_offsets[b as usize + 1] += 1;
        }
        for v in 0..n {
            pred_offsets[v + 1] += pred_offsets[v];
        }
        let mut cursor: Vec<u32> = pred_offsets[..n].to_vec();
        let mut preds = vec![0u32; edges.len()];
        for &(a, b) in &edges {
            let slot = &mut cursor[b as usize];
            preds[*slot as usize] = a;
            *slot += 1;
        }
        // Sources arrive in ascending order (edges are sorted), so each
        // predecessor group is sorted as well.

        let mut graph = HappensBeforeGraph {
            n,
            succs,
            succ_offsets,
            preds,
            pred_offsets,
            topo: None,
        };
        graph.topo = graph.compute_topo();
        graph
    }

    /// Deterministic Kahn's algorithm: always pick the smallest ready
    /// index, so the published serial order is reproducible. Runs once at
    /// build time; every later consumer reuses the cached order.
    fn compute_topo(&self) -> Option<Vec<usize>> {
        let mut indegree: Vec<u32> = (0..self.n).map(|v| self.pred_count(v) as u32).collect();
        let mut ready: BinaryHeap<Reverse<usize>> = (0..self.n)
            .filter(|&v| indegree[v] == 0)
            .map(Reverse)
            .collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(Reverse(v)) = ready.pop() {
            order.push(v);
            for &succ in self.succ_slice(v) {
                indegree[succ as usize] -= 1;
                if indegree[succ as usize] == 0 {
                    ready.push(Reverse(succ as usize));
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }

    /// Number of vertices (transactions).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn succ_slice(&self, v: usize) -> &[u32] {
        &self.succs[self.succ_offsets[v] as usize..self.succ_offsets[v + 1] as usize]
    }

    fn pred_slice(&self, v: usize) -> &[u32] {
        &self.preds[self.pred_offsets[v] as usize..self.pred_offsets[v + 1] as usize]
    }

    /// Whether the edge `before → after` is present.
    pub fn has_edge(&self, before: usize, after: usize) -> bool {
        before < self.n
            && after < self.n
            && self
                .succ_slice(before)
                .binary_search(&(after as u32))
                .is_ok()
    }

    /// Immediate predecessors of `i` (the transactions a fork-join task
    /// for `i` must join on — paper Algorithm 2's `B`).
    pub fn predecessors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.pred_slice(i).iter().map(|&v| v as usize)
    }

    /// Immediate successors of `i`.
    pub fn successors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.succ_slice(i).iter().map(|&v| v as usize)
    }

    /// Number of immediate predecessors of `i` (O(1) — used by the
    /// fork-join executor to size its join counters).
    pub fn pred_count(&self, i: usize) -> usize {
        (self.pred_offsets[i + 1] - self.pred_offsets[i]) as usize
    }

    /// All edges as `(before, after)` pairs, sorted.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.succs.len());
        for v in 0..self.n {
            for &succ in self.succ_slice(v) {
                out.push((v, succ as usize));
            }
        }
        out
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.len()
    }

    /// Builds the happens-before graph from the lock profiles of a block's
    /// committed transactions (`profiles[i]` is transaction `i`'s profile).
    ///
    /// For every abstract lock, the committing transactions that held it
    /// are sorted by counter value and grouped into maximal **runs** of
    /// mutually-commuting modes (a run of shared readers, a run of
    /// additive updaters, or a single exclusive holder — exclusive does
    /// not commute even with itself). Edges are added only between
    /// consecutive runs: every member of a run happens-before every member
    /// of the next. Transactions inside one run are left unordered,
    /// preserving the parallelism the miner actually exploited; members of
    /// non-adjacent runs either commute (same mode, nothing to order) or
    /// are ordered transitively through the runs between them. The result
    /// is the per-lock transitive reduction of the all-ordered-pairs
    /// graph: same reachability, same critical path, h−1 edges instead of
    /// h(h−1)/2 for an exclusive chain of h holders.
    pub fn from_profiles(profiles: &[LockProfile]) -> Self {
        let n = profiles.len();
        // lock -> [(counter, tx_index, mode)]
        let mut by_lock: FxHashMap<LockId, Vec<(u64, u32, LockMode)>> = FxHashMap::default();
        for (tx_index, profile) in profiles.iter().enumerate() {
            for entry in &profile.locks {
                by_lock.entry(entry.lock).or_default().push((
                    entry.counter,
                    tx_index as u32,
                    entry.mode,
                ));
            }
        }
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for holders in by_lock.values_mut() {
            holders.sort_unstable();
            // Split the counter-ordered holders into maximal runs of
            // mutually-commuting modes. A holder extends the current run
            // iff its mode commutes with the run's mode, i.e. the modes
            // are equal and non-exclusive; every boundary is therefore a
            // conflicting pair, and so is every cross pair of two
            // consecutive runs.
            for_each_consecutive_run_pair(
                holders,
                |&(_, _, mode)| mode,
                |prev, next| {
                    for &(_, before, _) in prev {
                        for &(_, after, _) in next {
                            edges.push((before, after));
                        }
                    }
                    true
                },
            );
        }
        Self::build(n, edges)
    }

    /// The canonical topological order of the vertices, or `None` if the
    /// graph has a cycle. The order is computed once when the graph is
    /// built; this returns a copy of it.
    pub fn topological_sort(&self) -> Option<Vec<usize>> {
        self.topo.clone()
    }

    /// Borrows the cached topological order without copying it, or `None`
    /// for a cyclic graph.
    pub fn serial_order(&self) -> Option<&[usize]> {
        self.topo.as_deref()
    }

    /// Length (in vertices) of the longest path — the critical path of the
    /// fork-join program a validator will execute. Zero for an empty
    /// graph.
    pub fn critical_path(&self) -> usize {
        let Some(order) = self.topo.as_deref() else {
            return self.n; // a cyclic (corrupt) graph is maximally serial
        };
        let mut depth = vec![1usize; self.n];
        for &v in order {
            for &succ in self.succ_slice(v) {
                depth[succ as usize] = depth[succ as usize].max(depth[v] + 1);
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Computes reachability (the transitive closure), used by validators
    /// to check that every pair of conflicting transactions is ordered by
    /// the published schedule.
    pub fn reachability(&self) -> Reachability {
        let words = self.n.div_ceil(64);
        let mut reach = vec![vec![0u64; words]; self.n];
        let fallback: Vec<usize>;
        let order: &[usize] = match self.topo.as_deref() {
            Some(order) => order,
            None => {
                fallback = (0..self.n).collect();
                &fallback
            }
        };
        // Process in reverse topological order so each vertex's set is
        // complete before its predecessors use it.
        for &v in order.iter().rev() {
            for &succ in self.succ_slice(v) {
                let succ = succ as usize;
                // reach[v] |= reach[succ]; reach[v] |= {succ}
                let (head, tail) = reach.split_at_mut(v.max(succ));
                let (a, b) = if v < succ {
                    (&mut head[v], &tail[0])
                } else {
                    (&mut tail[0], &head[succ])
                };
                for (av, bv) in a.iter_mut().zip(b.iter()) {
                    *av |= *bv;
                }
                a[succ / 64] |= 1u64 << (succ % 64);
            }
        }
        Reachability { n: self.n, reach }
    }

    /// Converts the graph plus the per-transaction profiles into the
    /// metadata a miner publishes in the block, **consuming both**: the
    /// cached topological order moves into `serial_order` and every
    /// profile moves into its [`ProfileRecord`] — nothing is cloned on the
    /// mining hot path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedSchedule`] if the graph is cyclic.
    pub fn into_metadata(self, profiles: Vec<LockProfile>) -> Result<ScheduleMetadata, CoreError> {
        let edges = self.edges();
        let serial_order = self.topo.ok_or_else(|| CoreError::MalformedSchedule {
            reason: "happens-before graph contains a cycle".into(),
        })?;
        Ok(ScheduleMetadata {
            serial_order,
            edges,
            profiles: profiles
                .into_iter()
                .enumerate()
                .map(|(tx_index, profile)| ProfileRecord { tx_index, profile })
                .collect(),
        })
    }

    /// Clone-based convenience wrapper around [`Self::into_metadata`] for
    /// callers that need to keep the graph and profiles (tests, tools).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedSchedule`] if the graph is cyclic.
    pub fn to_metadata(&self, profiles: &[LockProfile]) -> Result<ScheduleMetadata, CoreError> {
        self.clone().into_metadata(profiles.to_vec())
    }

    /// Reconstructs a graph from published metadata, validating its shape.
    ///
    /// Note on the duplicate-edge rule: rejecting duplicates is a
    /// **validation tightening** over the original representation (which
    /// silently collapsed them), i.e. it shrinks the set of blocks
    /// validators accept. Honest miners have never published duplicates —
    /// the canonical encoding is produced from a deduplicated edge set —
    /// so only adversarial blocks are affected, but in a network where
    /// schedule rules are consensus, such a change must ship to all
    /// validators together.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedSchedule`] if the serial order is not
    /// a permutation of `0..n`, an edge is out of range, a self-loop or a
    /// duplicate, the edge set is cyclic, or the serial order is
    /// inconsistent with the edges.
    pub fn from_metadata(meta: &ScheduleMetadata, n: usize) -> Result<Self, CoreError> {
        if meta.serial_order.len() != n {
            return Err(CoreError::MalformedSchedule {
                reason: format!(
                    "serial order covers {} transactions, block has {n}",
                    meta.serial_order.len()
                ),
            });
        }
        let mut seen = vec![false; n];
        for &i in &meta.serial_order {
            if i >= n || seen[i] {
                return Err(CoreError::MalformedSchedule {
                    reason: "serial order is not a permutation of the block's transactions".into(),
                });
            }
            seen[i] = true;
        }
        let mut list: Vec<(u32, u32)> = Vec::with_capacity(meta.edges.len());
        for &(a, b) in &meta.edges {
            if a >= n || b >= n || a == b {
                return Err(CoreError::MalformedSchedule {
                    reason: format!("edge ({a}, {b}) is out of range"),
                });
            }
            list.push((a as u32, b as u32));
        }
        let published = list.len();
        let graph = Self::build(n, list);
        // The canonical representation has no duplicate edges; published
        // duplicates would silently vanish in the CSR dedup, so reject
        // them instead of letting the digest cover bytes the graph
        // ignores. Out-of-range and self edges were rejected above, so
        // the build can only have shrunk the list by deduplicating.
        if graph.edge_count() != published {
            return Err(CoreError::MalformedSchedule {
                reason: "duplicate happens-before edge".into(),
            });
        }
        if graph.topo.is_none() {
            return Err(CoreError::MalformedSchedule {
                reason: "published edges contain a cycle".into(),
            });
        }
        // The published serial order must itself respect every edge.
        let mut position = vec![0usize; n];
        for (pos, &tx) in meta.serial_order.iter().enumerate() {
            position[tx] = pos;
        }
        for &(a, b) in &meta.edges {
            if position[a] > position[b] {
                return Err(CoreError::MalformedSchedule {
                    reason: format!("serial order places {b} before its predecessor {a}"),
                });
            }
        }
        Ok(graph)
    }
}

/// Precomputed reachability over a [`HappensBeforeGraph`].
#[derive(Debug, Clone)]
pub struct Reachability {
    n: usize,
    reach: Vec<Vec<u64>>,
}

impl Reachability {
    /// Whether there is a (possibly multi-edge) path `from → … → to`.
    pub fn can_reach(&self, from: usize, to: usize) -> bool {
        if from >= self.n || to >= self.n {
            return false;
        }
        self.reach[from][to / 64] & (1u64 << (to % 64)) != 0
    }

    /// Whether two transactions are ordered one way or the other.
    pub fn ordered(&self, a: usize, b: usize) -> bool {
        self.can_reach(a, b) || self.can_reach(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_stm::{LockSpace, ProfileEntry};

    fn profile(entries: &[(LockId, LockMode, u64)]) -> LockProfile {
        LockProfile::new(
            entries
                .iter()
                .map(|&(lock, mode, counter)| ProfileEntry {
                    lock,
                    mode,
                    counter,
                })
                .collect(),
        )
    }

    #[test]
    fn edges_from_conflicting_profiles_follow_counters() {
        let voters = LockSpace::new("voters");
        let alice = voters.lock_for(&"alice");
        let bob = voters.lock_for(&"bob");
        // tx0 and tx2 both touch alice (counters 1 then 2); tx1 touches bob.
        let profiles = vec![
            profile(&[(alice, LockMode::Exclusive, 1)]),
            profile(&[(bob, LockMode::Exclusive, 1)]),
            profile(&[(alice, LockMode::Exclusive, 2)]),
        ];
        let g = HappensBeforeGraph::from_profiles(&profiles);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.critical_path(), 2);
    }

    #[test]
    fn exclusive_chain_publishes_exactly_h_minus_one_edges() {
        // The headline reduction: h exclusive holders of one hot lock used
        // to publish h(h−1)/2 ordered pairs; the segment-run construction
        // publishes the chain itself.
        let bid = LockSpace::new("highestBid").whole();
        let h = 40;
        let profiles: Vec<LockProfile> = (0..h)
            .map(|i| profile(&[(bid, LockMode::Exclusive, i as u64 + 1)]))
            .collect();
        let g = HappensBeforeGraph::from_profiles(&profiles);
        assert_eq!(g.edge_count(), h - 1);
        assert_eq!(g.critical_path(), h);
        for i in 0..h - 1 {
            assert!(g.has_edge(i, i + 1), "chain edge {i}->{} missing", i + 1);
        }
        // Reachability is still the full order.
        let r = g.reachability();
        assert!(r.can_reach(0, h - 1));
        assert!(!r.can_reach(h - 1, 0));
    }

    #[test]
    fn shared_readers_stay_unordered() {
        // Read-read pairs must create no happens-before edge: three
        // transactions read the same key (counters 1..3), a fourth writes
        // it. Only the write is ordered — after every reader.
        let accounts = LockSpace::new("accounts");
        let key = accounts.lock_for(&"alice");
        let profiles = vec![
            profile(&[(key, LockMode::Shared, 1)]),
            profile(&[(key, LockMode::Shared, 2)]),
            profile(&[(key, LockMode::Shared, 3)]),
            profile(&[(key, LockMode::Exclusive, 4)]),
        ];
        let g = HappensBeforeGraph::from_profiles(&profiles);
        for a in 0..3 {
            for b in 0..3 {
                assert!(!g.has_edge(a, b), "read-read edge {a}->{b} must not exist");
            }
            assert!(g.has_edge(a, 3), "the write is ordered after reader {a}");
        }
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.critical_path(), 2, "all reads run in one parallel step");
    }

    #[test]
    fn writer_reader_writer_fans_skip_the_transitive_edge() {
        // W, R, R, W: the second writer is ordered after the readers, and
        // the W→W edge is implied (transitively) rather than published.
        let key = LockSpace::new("cell").whole();
        let profiles = vec![
            profile(&[(key, LockMode::Exclusive, 1)]),
            profile(&[(key, LockMode::Shared, 2)]),
            profile(&[(key, LockMode::Shared, 3)]),
            profile(&[(key, LockMode::Exclusive, 4)]),
        ];
        let g = HappensBeforeGraph::from_profiles(&profiles);
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2));
        assert!(g.has_edge(1, 3) && g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3), "W->W is implied, not published");
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.critical_path(), 3);
        let r = g.reachability();
        assert!(r.can_reach(0, 3), "the reduced graph still orders W->W");
    }

    #[test]
    fn additive_holders_stay_unordered() {
        let counts = LockSpace::new("voteCounts");
        let p0 = counts.lock_for(&0u64);
        let profiles = vec![
            profile(&[(p0, LockMode::Additive, 1)]),
            profile(&[(p0, LockMode::Additive, 2)]),
            profile(&[(p0, LockMode::Exclusive, 3)]),
        ];
        let g = HappensBeforeGraph::from_profiles(&profiles);
        assert!(!g.has_edge(0, 1), "commutative increments are unordered");
        assert!(g.has_edge(0, 2), "the exclusive read is ordered after both");
        assert!(g.has_edge(1, 2));
        assert_eq!(g.critical_path(), 2);
    }

    #[test]
    fn duplicate_lock_entries_in_one_profile_do_not_self_order() {
        // `LockProfile::new` does not forbid two entries for the same
        // lock; the duplicate holder lands in two adjacent runs and must
        // not produce a self-edge (which would make the graph cyclic and
        // fail the whole block).
        let key = LockSpace::new("dup").whole();
        let profiles = vec![
            profile(&[(key, LockMode::Exclusive, 1), (key, LockMode::Exclusive, 2)]),
            profile(&[(key, LockMode::Exclusive, 3)]),
        ];
        let g = HappensBeforeGraph::from_profiles(&profiles);
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.edges(), vec![(0, 1)]);
        assert!(g.topological_sort().is_some(), "graph must stay acyclic");
    }

    #[test]
    fn duplicate_edges_across_locks_collapse() {
        // Two locks held by the same two transactions in the same order
        // must publish the edge once.
        let a = LockSpace::new("a").whole();
        let b = LockSpace::new("b").whole();
        let profiles = vec![
            profile(&[(a, LockMode::Exclusive, 1), (b, LockMode::Exclusive, 1)]),
            profile(&[(a, LockMode::Exclusive, 2), (b, LockMode::Exclusive, 2)]),
        ];
        let g = HappensBeforeGraph::from_profiles(&profiles);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edges(), vec![(0, 1)]);
    }

    #[test]
    fn topological_sort_respects_edges_and_is_deterministic() {
        let g = HappensBeforeGraph::from_edges(4, [(2, 0), (0, 3)]);
        let order = g.topological_sort().unwrap();
        let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
        assert!(pos(2) < pos(0));
        assert!(pos(0) < pos(3));
        assert_eq!(order, g.topological_sort().unwrap());
        assert_eq!(g.serial_order().unwrap(), order.as_slice());
    }

    #[test]
    fn cycle_is_detected() {
        let g = HappensBeforeGraph::from_edges(2, [(0, 1), (1, 0)]);
        assert!(g.topological_sort().is_none());
        assert!(g
            .to_metadata(&[LockProfile::default(), LockProfile::default()])
            .is_err());
        assert_eq!(g.critical_path(), 2, "cyclic graphs are maximally serial");
    }

    #[test]
    fn csr_accessors_are_consistent() {
        let g = HappensBeforeGraph::from_edges(5, [(0, 2), (0, 3), (1, 3), (3, 4), (0, 2)]);
        assert_eq!(g.edge_count(), 4, "duplicates are removed at build time");
        assert_eq!(g.successors(0).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(g.predecessors(3).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(g.pred_count(3), 2);
        assert_eq!(g.pred_count(0), 0);
        assert_eq!(g.edges(), vec![(0, 2), (0, 3), (1, 3), (3, 4)]);
        assert!(g.has_edge(0, 3));
        assert!(!g.has_edge(3, 0));
        // Self-edges and out-of-range endpoints are dropped, not stored.
        let g = HappensBeforeGraph::from_edges(2, [(0, 0), (0, 9), (1, 0)]);
        assert_eq!(g.edges(), vec![(1, 0)]);
    }

    #[test]
    fn critical_path_of_chain_and_antichain() {
        let chain = HappensBeforeGraph::from_edges(5, (0..4).map(|i| (i, i + 1)));
        assert_eq!(chain.critical_path(), 5);
        let antichain = HappensBeforeGraph::new(5);
        assert_eq!(antichain.critical_path(), 1);
        assert_eq!(HappensBeforeGraph::new(0).critical_path(), 0);
    }

    #[test]
    fn reachability_closure() {
        let g = HappensBeforeGraph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let r = g.reachability();
        assert!(r.can_reach(0, 2));
        assert!(!r.can_reach(2, 0));
        assert!(!r.can_reach(0, 4));
        assert!(r.ordered(0, 2));
        assert!(r.ordered(2, 0));
        assert!(!r.ordered(0, 3));
        assert!(!r.can_reach(0, 99));
    }

    #[test]
    fn metadata_roundtrip() {
        let voters = LockSpace::new("v");
        let a = voters.lock_for(&1u64);
        let profiles = vec![
            profile(&[(a, LockMode::Exclusive, 1)]),
            profile(&[(a, LockMode::Exclusive, 2)]),
        ];
        let g = HappensBeforeGraph::from_profiles(&profiles);
        let meta = g.to_metadata(&profiles).unwrap();
        assert_eq!(meta.serial_order, vec![0, 1]);
        assert_eq!(meta.profiles.len(), 2);
        let g2 = HappensBeforeGraph::from_metadata(&meta, 2).unwrap();
        assert_eq!(g, g2);

        // The consuming path publishes identical metadata without cloning.
        let meta2 = g.clone().into_metadata(profiles.clone()).unwrap();
        assert_eq!(meta, meta2);
    }

    #[test]
    fn malformed_metadata_is_rejected() {
        // Wrong length.
        let meta = ScheduleMetadata::sequential(3);
        assert!(HappensBeforeGraph::from_metadata(&meta, 2).is_err());
        // Not a permutation.
        let meta = ScheduleMetadata {
            serial_order: vec![0, 0],
            edges: vec![],
            profiles: vec![],
        };
        assert!(HappensBeforeGraph::from_metadata(&meta, 2).is_err());
        // Edge out of range.
        let meta = ScheduleMetadata {
            serial_order: vec![0, 1],
            edges: vec![(0, 5)],
            profiles: vec![],
        };
        assert!(HappensBeforeGraph::from_metadata(&meta, 2).is_err());
        // Duplicate edge.
        let meta = ScheduleMetadata {
            serial_order: vec![0, 1],
            edges: vec![(0, 1), (0, 1)],
            profiles: vec![],
        };
        assert!(HappensBeforeGraph::from_metadata(&meta, 2).is_err());
        // Cyclic edges.
        let meta = ScheduleMetadata {
            serial_order: vec![0, 1],
            edges: vec![(0, 1), (1, 0)],
            profiles: vec![],
        };
        assert!(HappensBeforeGraph::from_metadata(&meta, 2).is_err());
        // Serial order contradicting an edge.
        let meta = ScheduleMetadata {
            serial_order: vec![1, 0],
            edges: vec![(0, 1)],
            profiles: vec![],
        };
        assert!(HappensBeforeGraph::from_metadata(&meta, 2).is_err());
    }

    #[test]
    fn empty_graph_behaviour() {
        let g = HappensBeforeGraph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.topological_sort().unwrap(), Vec::<usize>::new());
        assert_eq!(g.edge_count(), 0);
    }
}
