//! Block mining: the serial baseline, the speculative parallel miner and
//! the optimistic multi-version miner.

mod mvcc;
mod parallel;
mod serial;

pub use mvcc::MvccMiner;
pub use parallel::ParallelMiner;
pub use serial::SerialMiner;

use crate::error::CoreError;
use crate::stats::MinerStats;
use cc_ledger::{Block, Transaction};
use cc_primitives::hash::Hash256;
use cc_vm::World;

/// The result of mining one block on top of a given world state.
#[derive(Debug, Clone)]
pub struct MinedBlock {
    /// The assembled block (transactions, receipts, state root and — for
    /// the parallel miner — the published schedule).
    pub block: Block,
    /// Statistics about the mining run.
    pub stats: MinerStats,
}

impl MinedBlock {
    /// The block's state root.
    pub fn state_root(&self) -> Hash256 {
        self.block.header.state_root
    }
}

/// Something that can execute a list of transactions against a world and
/// assemble a block — either serially (the baseline all speedups in the
/// paper are measured against) or speculatively in parallel.
///
/// Mining **mutates** the world: after `mine` returns, the world holds the
/// block's post-state (which is also what the returned block's state root
/// commits to).
pub trait Miner {
    /// Executes `transactions` against `world` and assembles the block.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MiningFailed`] if a transaction cannot be
    /// committed even after exhausting its retry budget.
    fn mine(&self, world: &World, transactions: Vec<Transaction>) -> Result<MinedBlock, CoreError>;

    /// Mines on top of a specific parent block hash/number (convenience
    /// for chain construction; the default `mine` builds a block with a
    /// zero parent at height 1).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MiningFailed`] if a transaction cannot be
    /// committed even after exhausting its retry budget.
    fn mine_on(
        &self,
        world: &World,
        transactions: Vec<Transaction>,
        parent_hash: Hash256,
        number: u64,
    ) -> Result<MinedBlock, CoreError>;
}
