//! The optimistic multi-version miner (OptSmart over the paper's
//! framework).
//!
//! Where the speculative STM miner acquires abstract locks pessimistically
//! and resolves contention with deadlock detection, this miner runs each
//! transaction against a fixed **snapshot** of the versioned storage
//! overlays, buffers its writes privately, and validates
//! first-committer-wins when it commits (see `cc_mvcc`). Read-only
//! transactions commit without validation and therefore never abort.
//!
//! The miner publishes the same [`cc_ledger::ScheduleMetadata`] as the
//! pessimistic miner, so validators stay strategy-agnostic: every
//! committed transaction carries a lock-footprint profile (the versioned
//! collections record exactly the `(lock, mode)` pairs their boosted twins
//! would acquire), and the profile counters are synthesized from the
//! MVCC serialization order — writers at their commit timestamps, readers
//! at their snapshot timestamps.

use crate::error::CoreError;
use crate::miner::{MinedBlock, Miner};
use crate::schedule::HappensBeforeGraph;
use crate::stats::MinerStats;
use cc_ledger::{Block, Transaction};
use cc_mvcc::MvccCommit;
use cc_primitives::hash::Hash256;
use cc_stm::{LockProfile, ProfileEntry, RetryPolicy, StmError};
use cc_vm::{Receipt, TxnRef, World};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Garbage-collect versions below the oldest active snapshot after this
/// many commits. GC is cheap (a pass over the version lists under their
/// write locks) but not free; once per "a few dozen commits" keeps list
/// lengths bounded by the active-transaction window without measurably
/// slowing the commit path.
const GC_COMMIT_INTERVAL: u64 = 64;

/// Mines a block by executing its transactions as optimistic multi-version
/// transactions on a fixed pool of worker threads.
///
/// Each worker repeatedly takes the next unexecuted transaction, runs it
/// against a snapshot (no locks, writes buffered), and commits under
/// first-committer-wins validation. Validation failures roll back and
/// retry with backoff, counted in [`MinerStats::retries`] exactly like the
/// pessimistic miner's deadlock victims. When all transactions have
/// committed, the block's versions are finalized into the base state and
/// the happens-before graph is derived from the committed read/write
/// footprints.
#[derive(Debug, Clone)]
pub struct MvccMiner {
    threads: usize,
    retry: RetryPolicy,
    capture_schedule: bool,
}

impl MvccMiner {
    /// Creates a miner with `threads` worker threads and the default
    /// retry policy.
    pub fn new(threads: usize) -> Self {
        MvccMiner {
            threads: threads.max(1),
            retry: RetryPolicy::default(),
            capture_schedule: true,
        }
    }

    /// Overrides the retry policy used for validation-conflict victims.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables or disables schedule capture (benchmark-only; without a
    /// schedule the fork-join validator must reject the block).
    pub fn with_schedule_capture(mut self, capture: bool) -> Self {
        self.capture_schedule = capture;
        self
    }

    /// Number of worker threads this miner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Miner for MvccMiner {
    fn mine(&self, world: &World, transactions: Vec<Transaction>) -> Result<MinedBlock, CoreError> {
        self.mine_on(world, transactions, Hash256::ZERO, 1)
    }

    fn mine_on(
        &self,
        world: &World,
        transactions: Vec<Transaction>,
        parent_hash: Hash256,
        number: u64,
    ) -> Result<MinedBlock, CoreError> {
        let start = Instant::now();
        let runtime = world.mvcc();
        // The optimistic path takes no abstract locks; report a zero lock
        // delta (with the manager's structural shard count intact).
        let locks_baseline = world.stm().lock_stats();

        let n = transactions.len();
        let next = AtomicUsize::new(0);
        let retries = AtomicU64::new(0);
        let commits_done = AtomicU64::new(0);
        let failed = AtomicBool::new(false);
        let failure: Mutex<Option<CoreError>> = Mutex::new(None);

        let worker_results: Vec<Vec<(usize, Receipt, MvccCommit)>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut local: Vec<(usize, Receipt, MvccCommit)> = Vec::new();
                        loop {
                            if failed.load(Ordering::Acquire) {
                                break;
                            }
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= n {
                                break;
                            }
                            let tx = &transactions[index];
                            let mut attempt = 0u32;
                            loop {
                                if failed.load(Ordering::Acquire) {
                                    break;
                                }
                                attempt += 1;
                                let txn = runtime.begin();
                                match world.execute_in(
                                    TxnRef::Mvcc(&txn),
                                    index,
                                    tx.msg(),
                                    tx.to,
                                    &tx.call,
                                    tx.gas_limit,
                                ) {
                                    Ok(receipt) => match txn.commit() {
                                        Ok(commit) => {
                                            local.push((index, receipt, commit));
                                            let done =
                                                commits_done.fetch_add(1, Ordering::Relaxed) + 1;
                                            if done.is_multiple_of(GC_COMMIT_INTERVAL) {
                                                runtime.collect();
                                            }
                                            break;
                                        }
                                        Err(_conflict) => {
                                            // First-committer-wins loser:
                                            // the buffered writes are
                                            // simply dropped; retry from a
                                            // fresh snapshot.
                                            retries.fetch_add(1, Ordering::Relaxed);
                                            if attempt >= self.retry.max_attempts {
                                                failed.store(true, Ordering::Release);
                                                failure.lock().get_or_insert(
                                                    CoreError::MiningFailed {
                                                        tx_index: index,
                                                        source: StmError::RetriesExhausted {
                                                            attempts: attempt,
                                                        },
                                                    },
                                                );
                                                break;
                                            }
                                            self.retry.backoff(attempt);
                                        }
                                    },
                                    Err(source) => {
                                        // Unreachable: optimistic execution
                                        // raises no speculative errors
                                        // mid-flight. Fail loudly if the
                                        // seam ever changes.
                                        let _ = txn.abort();
                                        failed.store(true, Ordering::Release);
                                        failure.lock().get_or_insert(CoreError::MiningFailed {
                                            tx_index: index,
                                            source,
                                        });
                                        break;
                                    }
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("miner worker panicked"))
                .collect()
        })
        .expect("miner scope failed");

        if let Some(err) = failure.into_inner() {
            return Err(err);
        }

        let mut receipts: Vec<Option<Receipt>> = (0..n).map(|_| None).collect();
        let mut commits: Vec<Option<MvccCommit>> = (0..n).map(|_| None).collect();
        for (index, receipt, commit) in worker_results.into_iter().flatten() {
            receipts[index] = Some(receipt);
            commits[index] = Some(commit);
        }
        let receipts: Vec<Receipt> = receipts
            .into_iter()
            .map(|r| r.expect("every transaction has a receipt on success"))
            .collect();
        let commits: Vec<MvccCommit> = commits
            .into_iter()
            .map(|c| c.expect("every transaction has a commit record on success"))
            .collect();

        // The MVCC serialization order: writers serialize at their commit
        // timestamps, read-only transactions at their snapshot timestamps
        // — after every writer with that timestamp (a snapshot at `t` has
        // observed the install that published `t`). Ties between readers
        // carry no constraint; block position breaks them
        // deterministically.
        let mut order: Vec<(u64, u8, usize)> = commits
            .iter()
            .enumerate()
            .map(|(index, c)| (c.ts.raw(), u8::from(c.read_only), index))
            .collect();
        order.sort_unstable();
        let mut counters: Vec<u64> = vec![0; n];
        for (position, &(_, _, index)) in order.iter().enumerate() {
            counters[index] = position as u64 + 1;
        }
        let read_only = commits.iter().filter(|c| c.read_only).count() as u64;

        // Synthesize the per-transaction lock profiles the pessimistic
        // miner would have registered: the validated footprint provides
        // the `(lock, mode)` pairs, the serialization position provides a
        // consistent use counter for every lock the transaction touched.
        let profiles: Vec<LockProfile> = commits
            .into_iter()
            .enumerate()
            .map(|(index, commit)| {
                let counter = counters[index];
                LockProfile::new(
                    commit
                        .footprint
                        .into_iter()
                        .map(|(lock, mode)| ProfileEntry {
                            lock,
                            mode,
                            counter,
                        })
                        .collect(),
                )
            })
            .collect();

        let (schedule, critical_path, hb_edges) = if self.capture_schedule {
            let graph = HappensBeforeGraph::from_profiles(&profiles);
            let critical_path = graph.critical_path();
            let hb_edges = graph.edge_count();
            (
                Some(graph.into_metadata(profiles)?),
                critical_path,
                hb_edges,
            )
        } else {
            (None, 0, 0)
        };

        // Flatten the block's committed versions into the boosted base
        // state *before* computing the state root (snapshots read the
        // base).
        runtime.finalize_block();

        let elapsed = start.elapsed();
        let gas_used = receipts.iter().map(|r| r.gas_used).sum();
        let block = Block::build(
            parent_hash,
            number,
            transactions,
            receipts,
            world.state_root(),
            schedule,
        );
        Ok(MinedBlock {
            block,
            stats: MinerStats {
                threads: self.threads,
                transactions: n,
                retries: retries.load(Ordering::Relaxed),
                elapsed,
                gas_used,
                critical_path,
                hb_edges,
                locks: world.stm().lock_stats().since(&locks_baseline),
                read_only,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::SerialMiner;
    use cc_contracts::{Ballot, SimpleAuction};
    use cc_vm::testing::CounterContract;
    use cc_vm::{Address, ArgValue, CallData, ExecutionStatus};
    use std::sync::Arc;

    fn counter_world() -> (World, Address) {
        let world = World::new();
        let addr = Address::from_name("counter-mvcc");
        world.deploy(Arc::new(CounterContract::new(addr)));
        (world, addr)
    }

    fn increment_tx(i: u64, sender: u64, to: Address) -> Transaction {
        Transaction::new(
            i,
            Address::from_index(sender),
            to,
            CallData::new("increment", vec![ArgValue::Uint(1)]),
            1_000_000,
        )
    }

    #[test]
    fn optimistic_and_serial_mining_agree_on_state() {
        let build = || {
            let (world, addr) = counter_world();
            let txs: Vec<Transaction> = (0..40).map(|i| increment_tx(i, i, addr)).collect();
            (world, txs)
        };
        let (world_serial, txs) = build();
        let serial = SerialMiner::new().mine(&world_serial, txs.clone()).unwrap();

        let (world_mvcc, _) = build();
        let optimistic = MvccMiner::new(4).mine(&world_mvcc, txs).unwrap();

        assert_eq!(
            serial.block.header.state_root,
            optimistic.block.header.state_root
        );
        assert_eq!(serial.block.header.tx_root, optimistic.block.header.tx_root);
        assert_eq!(optimistic.stats.threads, 4);
        assert!(optimistic.block.is_well_formed());
    }

    #[test]
    fn contended_increments_serialize_through_validation() {
        // All transactions share one sender, so every one reads and
        // writes the same counts entry: validation forces them into a
        // chain, possibly through retries, but the final tally is exact.
        let (world, addr) = counter_world();
        let txs: Vec<Transaction> = (0..24).map(|i| increment_tx(i, 0, addr)).collect();
        let mined = MvccMiner::new(4).mine(&world, txs).unwrap();
        assert!(mined.block.receipts.iter().all(Receipt::succeeded));
        let schedule = mined.block.schedule.as_ref().unwrap();
        assert_eq!(
            schedule.critical_path(),
            24,
            "same-sender increments form a chain"
        );
    }

    #[test]
    fn ballot_double_votes_revert_exactly_once_optimistically() {
        let world = World::new();
        let chair = Address::from_index(0);
        let ballot = Arc::new(Ballot::with_numbered_proposals(
            Address::from_name("Ballot-mvcc"),
            chair,
            2,
        ));
        let voters: Vec<Address> = (1..=10).map(Address::from_index).collect();
        for v in &voters {
            ballot.seed_registered_voter(*v);
        }
        world.deploy(ballot.clone());

        let mut txs = Vec::new();
        for (i, v) in voters.iter().enumerate() {
            txs.push(Transaction::new(
                i as u64,
                *v,
                Address::from_name("Ballot-mvcc"),
                CallData::new("vote", vec![ArgValue::Uint(0)]),
                1_000_000,
            ));
        }
        for (i, v) in voters.iter().take(3).enumerate() {
            txs.push(Transaction::new(
                100 + i as u64,
                *v,
                Address::from_name("Ballot-mvcc"),
                CallData::new("vote", vec![ArgValue::Uint(0)]),
                1_000_000,
            ));
        }

        let mined = MvccMiner::new(3).mine(&world, txs).unwrap();
        let reverted = mined
            .block
            .receipts
            .iter()
            .filter(|r| matches!(r.status, ExecutionStatus::Reverted { .. }))
            .count();
        assert_eq!(reverted, 3, "exactly the duplicate votes revert");
        assert_eq!(ballot.tally(0), 10, "each voter counted once");
    }

    #[test]
    fn contended_auction_bids_commit_with_retries() {
        let world = World::new();
        let auction = Arc::new(SimpleAuction::new(
            Address::from_name("Auction-mvcc"),
            Address::from_index(0),
        ));
        world.deploy(auction.clone());
        let txs: Vec<Transaction> = (1..=12)
            .map(|i| {
                Transaction::new(
                    i,
                    Address::from_index(i),
                    Address::from_name("Auction-mvcc"),
                    CallData::nullary("bidPlusOne"),
                    1_000_000,
                )
            })
            .collect();
        let mined = MvccMiner::new(4).mine(&world, txs).unwrap();
        assert!(mined.block.receipts.iter().all(Receipt::succeeded));
        assert_eq!(auction.current_highest_bid(), 12);
        assert_eq!(mined.block.schedule.as_ref().unwrap().critical_path(), 12);
    }

    #[test]
    fn read_only_transactions_never_abort() {
        // A block of pure reads: every transaction calls `total`, which
        // only reads the tally. Read-only optimistic commits skip
        // validation entirely, so not a single retry can occur and every
        // commit counts as read-only — the structural abort-freedom
        // claim, asserted through the published stats.
        let (world, addr) = counter_world();
        let readers: Vec<Transaction> = (0..30)
            .map(|i| {
                Transaction::new(
                    i,
                    Address::from_index(i),
                    addr,
                    CallData::nullary("total"),
                    1_000_000,
                )
            })
            .collect();
        let mined = MvccMiner::new(4).mine(&world, readers).unwrap();
        assert!(mined.block.receipts.iter().all(Receipt::succeeded));
        assert_eq!(mined.stats.retries, 0, "readers never fail validation");
        assert_eq!(mined.stats.read_only, 30, "every commit was read-only");

        // Mixing in heavily contended writers (one shared sender) changes
        // neither property for the readers: aborts stay attributable to
        // the writers alone, and the read-only count stays exact.
        let (world, addr) = counter_world();
        let mut txs: Vec<Transaction> = (0..20)
            .map(|i| {
                Transaction::new(
                    i,
                    Address::from_index(i),
                    addr,
                    CallData::nullary("total"),
                    1_000_000,
                )
            })
            .collect();
        txs.extend((0..10).map(|i| increment_tx(100 + i, 0, addr)));
        let mined = MvccMiner::new(4).mine(&world, txs).unwrap();
        assert!(mined.block.receipts.iter().all(Receipt::succeeded));
        assert_eq!(
            mined.stats.read_only, 20,
            "exactly the readers commit read-only"
        );
    }

    #[test]
    fn single_thread_and_empty_block() {
        let (world, addr) = counter_world();
        let txs: Vec<Transaction> = (0..5).map(|i| increment_tx(i, i, addr)).collect();
        let mined = MvccMiner::new(1).mine(&world, txs).unwrap();
        assert_eq!(mined.block.len(), 5);
        assert_eq!(MvccMiner::new(0).threads(), 1);

        let (world, _) = counter_world();
        let mined = MvccMiner::new(3).mine(&world, Vec::new()).unwrap();
        assert!(mined.block.is_empty());
        assert!(mined.block.is_well_formed());
    }
}
