//! The speculative parallel miner (paper §3 and Algorithm 1).

use crate::error::CoreError;
use crate::miner::{MinedBlock, Miner};
use crate::schedule::HappensBeforeGraph;
use crate::stats::MinerStats;
use cc_ledger::{Block, Transaction};
use cc_primitives::hash::Hash256;
use cc_stm::{LockMode, LockProfile, RetryPolicy};
use cc_vm::{Receipt, World};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Mines a block by executing its transactions as speculative atomic
/// actions on a fixed pool of worker threads.
///
/// Each worker repeatedly takes the next unexecuted transaction, runs it
/// inside a speculative STM transaction (acquiring abstract locks and
/// logging inverses), and commits. Deadlock victims roll back and retry
/// with backoff. When all transactions have committed, the miner derives
/// the happens-before graph from the registered lock profiles, computes an
/// equivalent serial order by topological sort (Algorithm 1's
/// `MineInParallel`), and publishes both in the block together with the
/// profiles themselves.
#[derive(Debug, Clone)]
pub struct ParallelMiner {
    threads: usize,
    retry: RetryPolicy,
    capture_schedule: bool,
}

impl ParallelMiner {
    /// Creates a miner with `threads` worker threads (the paper's
    /// evaluation uses three) and the default retry policy.
    pub fn new(threads: usize) -> Self {
        ParallelMiner {
            threads: threads.max(1),
            retry: RetryPolicy::default(),
            capture_schedule: true,
        }
    }

    /// Overrides the retry policy used for deadlock victims.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables or disables schedule capture. When disabled the miner
    /// still executes speculatively but publishes no schedule metadata,
    /// so blocks cannot be validated by the fork-join validator —
    /// benchmark-only, to measure what capture itself costs.
    pub fn with_schedule_capture(mut self, capture: bool) -> Self {
        self.capture_schedule = capture;
        self
    }

    /// Number of worker threads this miner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Miner for ParallelMiner {
    fn mine(&self, world: &World, transactions: Vec<Transaction>) -> Result<MinedBlock, CoreError> {
        self.mine_on(world, transactions, Hash256::ZERO, 1)
    }

    fn mine_on(
        &self,
        world: &World,
        transactions: Vec<Transaction>,
        parent_hash: Hash256,
        number: u64,
    ) -> Result<MinedBlock, CoreError> {
        let start = Instant::now();
        let stm = world.stm();
        stm.begin_block();
        let locks_before = stm.lock_stats();

        let n = transactions.len();
        let next = AtomicUsize::new(0);
        let retries = AtomicU64::new(0);
        let failed = AtomicBool::new(false);
        let failure: Mutex<Option<CoreError>> = Mutex::new(None);

        // Each index is claimed by exactly one worker (the `next` counter),
        // so results need no per-slot synchronization: every worker
        // accumulates its own `(index, receipt, profile)` triples and the
        // scope join publishes them to this thread.
        let worker_results: Vec<Vec<(usize, Receipt, LockProfile)>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|_| {
                    scope.spawn(|_| {
                        // Each worker recycles its transaction arenas across
                        // the whole block: undo-log sinks, lock vectors and
                        // trace buffers are allocated by the first attempts
                        // and reused by every later one.
                        let pool = stm.txn_scope();
                        let mut local: Vec<(usize, Receipt, LockProfile)> = Vec::new();
                        loop {
                            if failed.load(Ordering::Acquire) {
                                break;
                            }
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= n {
                                break;
                            }
                            let tx = &transactions[index];
                            let mut attempt = 0u32;
                            loop {
                                // Another worker may have failed the whole
                                // block while this one was backing off —
                                // don't keep retrying a doomed block.
                                if failed.load(Ordering::Acquire) {
                                    break;
                                }
                                attempt += 1;
                                let txn = pool.begin();
                                match world.execute(
                                    &txn,
                                    index,
                                    tx.msg(),
                                    tx.to,
                                    &tx.call,
                                    tx.gas_limit,
                                ) {
                                    Ok(receipt) => match txn.commit() {
                                        Ok(commit) => {
                                            local.push((index, receipt, commit.profile));
                                            break;
                                        }
                                        Err(source) => {
                                            failed.store(true, Ordering::Release);
                                            failure.lock().get_or_insert(CoreError::MiningFailed {
                                                tx_index: index,
                                                source,
                                            });
                                            break;
                                        }
                                    },
                                    Err(source) => {
                                        // Deadlock victim: undo and retry.
                                        let _ = txn.abort();
                                        retries.fetch_add(1, Ordering::Relaxed);
                                        if attempt >= self.retry.max_attempts {
                                            failed.store(true, Ordering::Release);
                                            failure.lock().get_or_insert(CoreError::MiningFailed {
                                                tx_index: index,
                                                source,
                                            });
                                            break;
                                        }
                                        self.retry.backoff(attempt);
                                    }
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("miner worker panicked"))
                .collect()
        })
        .expect("miner scope failed");

        if let Some(err) = failure.into_inner() {
            return Err(err);
        }

        let mut receipts: Vec<Option<Receipt>> = (0..n).map(|_| None).collect();
        let mut profiles: Vec<Option<LockProfile>> = (0..n).map(|_| None).collect();
        for (index, receipt, profile) in worker_results.into_iter().flatten() {
            receipts[index] = Some(receipt);
            profiles[index] = Some(profile);
        }
        let receipts: Vec<Receipt> = receipts
            .into_iter()
            .map(|r| r.expect("every transaction has a receipt on success"))
            .collect();
        let profiles: Vec<LockProfile> = profiles
            .into_iter()
            .map(|p| p.expect("every transaction has a profile on success"))
            .collect();

        let read_only = profiles
            .iter()
            .filter(|p| p.locks.iter().all(|e| e.mode == LockMode::Shared))
            .count() as u64;

        // Algorithm 1: derive the happens-before graph from the lock log
        // and produce the equivalent serial order by topological sort. The
        // profiles move into the published metadata; nothing is cloned.
        let (schedule, critical_path, hb_edges) = if self.capture_schedule {
            let graph = HappensBeforeGraph::from_profiles(&profiles);
            let critical_path = graph.critical_path();
            let hb_edges = graph.edge_count();
            (
                Some(graph.into_metadata(profiles)?),
                critical_path,
                hb_edges,
            )
        } else {
            (None, 0, 0)
        };

        let elapsed = start.elapsed();
        let gas_used = receipts.iter().map(|r| r.gas_used).sum();
        let block = Block::build(
            parent_hash,
            number,
            transactions,
            receipts,
            world.state_root(),
            schedule,
        );
        Ok(MinedBlock {
            block,
            stats: MinerStats {
                threads: self.threads,
                transactions: n,
                retries: retries.load(Ordering::Relaxed),
                elapsed,
                gas_used,
                critical_path,
                hb_edges,
                locks: stm.lock_stats().since(&locks_before),
                read_only,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::SerialMiner;
    use cc_contracts::{Ballot, SimpleAuction};
    use cc_vm::testing::CounterContract;
    use cc_vm::{Address, ArgValue, CallData, ExecutionStatus};
    use std::sync::Arc;

    fn counter_world() -> (World, Address) {
        let world = World::new();
        let addr = Address::from_name("counter-parallel");
        world.deploy(Arc::new(CounterContract::new(addr)));
        (world, addr)
    }

    fn increment_tx(i: u64, to: Address) -> Transaction {
        Transaction::new(
            i,
            Address::from_index(i),
            to,
            CallData::new("increment", vec![ArgValue::Uint(1)]),
            1_000_000,
        )
    }

    #[test]
    fn parallel_and_serial_mining_agree_on_state() {
        let build = || {
            let (world, addr) = counter_world();
            let txs: Vec<Transaction> = (0..40).map(|i| increment_tx(i, addr)).collect();
            (world, txs)
        };
        let (world_serial, txs) = build();
        let serial = SerialMiner::new().mine(&world_serial, txs.clone()).unwrap();

        let (world_parallel, _) = build();
        let parallel = ParallelMiner::new(4).mine(&world_parallel, txs).unwrap();

        assert_eq!(
            serial.block.header.state_root,
            parallel.block.header.state_root
        );
        assert_eq!(serial.block.header.tx_root, parallel.block.header.tx_root);
        assert_eq!(parallel.stats.threads, 4);
        assert!(parallel.block.is_well_formed());
    }

    #[test]
    fn profiles_and_schedule_are_published() {
        let (world, addr) = counter_world();
        // Two senders issue interleaved increments: same-sender
        // transactions conflict (same counts entry), different senders do
        // not (the shared total uses the additive tally).
        let txs: Vec<Transaction> = (0..20)
            .map(|i| {
                Transaction::new(
                    i,
                    Address::from_index(i % 2),
                    addr,
                    CallData::new("increment", vec![ArgValue::Uint(1)]),
                    1_000_000,
                )
            })
            .collect();
        let mined = ParallelMiner::new(3).mine(&world, txs).unwrap();
        let schedule = mined.block.schedule.as_ref().unwrap();
        assert_eq!(schedule.profiles.len(), 20);
        assert!(
            !schedule.edges.is_empty(),
            "same-sender conflicts must be ordered"
        );
        assert!(
            schedule.critical_path() >= 10,
            "10 txns per sender serialize"
        );
        assert!(
            schedule.critical_path() < 20,
            "the two senders' chains run in parallel (critical path {} should be < 20)",
            schedule.critical_path()
        );
    }

    #[test]
    fn ballot_double_votes_revert_exactly_once_in_parallel() {
        let world = World::new();
        let chair = Address::from_index(0);
        let ballot = Arc::new(Ballot::with_numbered_proposals(
            Address::from_name("Ballot-pm"),
            chair,
            2,
        ));
        let voters: Vec<Address> = (1..=10).map(Address::from_index).collect();
        for v in &voters {
            ballot.seed_registered_voter(*v);
        }
        world.deploy(ballot.clone());

        // Every voter votes once, and voters 0..3 attempt a second vote.
        let mut txs = Vec::new();
        for (i, v) in voters.iter().enumerate() {
            txs.push(Transaction::new(
                i as u64,
                *v,
                Address::from_name("Ballot-pm"),
                CallData::new("vote", vec![ArgValue::Uint(0)]),
                1_000_000,
            ));
        }
        for (i, v) in voters.iter().take(3).enumerate() {
            txs.push(Transaction::new(
                100 + i as u64,
                *v,
                Address::from_name("Ballot-pm"),
                CallData::new("vote", vec![ArgValue::Uint(0)]),
                1_000_000,
            ));
        }

        let mined = ParallelMiner::new(3).mine(&world, txs).unwrap();
        let reverted = mined
            .block
            .receipts
            .iter()
            .filter(|r| matches!(r.status, ExecutionStatus::Reverted { .. }))
            .count();
        assert_eq!(reverted, 3, "exactly the duplicate votes revert");
        assert_eq!(ballot.tally(0), 10, "each voter counted once");
    }

    #[test]
    fn contended_auction_bids_serialize_but_commit() {
        let world = World::new();
        let auction = Arc::new(SimpleAuction::new(
            Address::from_name("Auction-pm"),
            Address::from_index(0),
        ));
        world.deploy(auction.clone());
        let txs: Vec<Transaction> = (1..=12)
            .map(|i| {
                Transaction::new(
                    i,
                    Address::from_index(i),
                    Address::from_name("Auction-pm"),
                    CallData::nullary("bidPlusOne"),
                    1_000_000,
                )
            })
            .collect();
        let mined = ParallelMiner::new(4).mine(&world, txs).unwrap();
        assert!(mined.block.receipts.iter().all(Receipt::succeeded));
        assert_eq!(auction.current_highest_bid(), 12);
        // All bids touch the highest-bid cell, so the schedule is a chain.
        assert_eq!(mined.block.schedule.as_ref().unwrap().critical_path(), 12);
    }

    /// A contract whose single method reads a cell under a shared lock,
    /// dawdles while holding it, then writes the cell back — the classic
    /// read-then-upgrade pattern. Two concurrent calls both hold the
    /// shared lock and both request the exclusive upgrade, so one of them
    /// must die as a deadlock victim.
    #[derive(Debug)]
    struct UpgradingContract {
        address: Address,
        cell: cc_vm::StorageCell<u64>,
    }

    impl cc_vm::Contract for UpgradingContract {
        fn kind(&self) -> cc_vm::ContractKind {
            cc_vm::ContractKind("Upgrading")
        }

        fn address(&self) -> Address {
            self.address
        }

        fn call(
            &self,
            ctx: &mut cc_vm::CallContext<'_>,
            call: &CallData,
        ) -> Result<cc_vm::ReturnValue, cc_vm::VmError> {
            match call.function.as_str() {
                "readThenBump" => {
                    let seen = self.cell.get(ctx)?;
                    // Hold the shared lock long enough for the other
                    // worker to acquire it too before either upgrades.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    self.cell.set(ctx, seen + 1)?;
                    Ok(cc_vm::ReturnValue::Uint(u128::from(seen + 1)))
                }
                other => Err(cc_vm::VmError::UnknownFunction {
                    function: other.to_string(),
                }),
            }
        }

        fn snapshot(&self) -> cc_vm::ContractSnapshot {
            cc_vm::ContractSnapshot::new(
                "Upgrading",
                self.address,
                vec![self.cell.snapshot_field()],
            )
        }
    }

    #[test]
    fn upgrade_deadlock_victims_are_counted_as_retries() {
        let world = World::new();
        let addr = Address::from_name("upgrade-deadlock");
        world.deploy(Arc::new(UpgradingContract {
            address: addr,
            cell: cc_vm::StorageCell::new("Upgrading.cell", 0),
        }));
        let txs: Vec<Transaction> = (0..2)
            .map(|i| {
                Transaction::new(
                    i,
                    Address::from_index(i),
                    addr,
                    CallData::nullary("readThenBump"),
                    1_000_000,
                )
            })
            .collect();
        let mined = ParallelMiner::new(2)
            .with_retry_policy(RetryPolicy::no_backoff(64))
            .mine(&world, txs)
            .unwrap();
        assert!(mined.block.receipts.iter().all(Receipt::succeeded));
        assert!(
            mined.stats.retries >= 1,
            "the shared→exclusive upgrade deadlock's victim must show up \
             in the abort accounting (saw {} retries)",
            mined.stats.retries
        );
        assert_eq!(
            mined.stats.locks.deadlocks, mined.stats.retries,
            "every pessimistic retry in this block is a deadlock victim"
        );
    }

    #[test]
    fn single_thread_parallel_miner_still_works() {
        let (world, addr) = counter_world();
        let txs: Vec<Transaction> = (0..5).map(|i| increment_tx(i, addr)).collect();
        let mined = ParallelMiner::new(1).mine(&world, txs).unwrap();
        assert_eq!(mined.block.len(), 5);
        assert_eq!(ParallelMiner::new(0).threads(), 1);
    }

    #[test]
    fn empty_block_mines() {
        let (world, _) = counter_world();
        let mined = ParallelMiner::new(3).mine(&world, Vec::new()).unwrap();
        assert!(mined.block.is_empty());
        assert!(mined.block.is_well_formed());
    }
}
