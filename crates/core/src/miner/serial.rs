//! The serial miner: the baseline every speedup in the paper is measured
//! against.

use crate::error::CoreError;
use crate::miner::{MinedBlock, Miner};
use crate::stats::MinerStats;
use cc_ledger::{Block, ScheduleMetadata, Transaction};
use cc_primitives::hash::Hash256;
use cc_stm::LockMode;
use cc_vm::{Receipt, World};
use std::time::Instant;

/// Executes a block's transactions one at a time, in block order, on a
/// single thread — the execution model of today's Ethereum miners.
///
/// Each transaction still runs inside an STM transaction (committed
/// immediately), so `throw` semantics and gas accounting are byte-for-byte
/// identical to the parallel miner; only the concurrency differs.
#[derive(Debug, Clone)]
pub struct SerialMiner {
    capture_schedule: bool,
}

impl Default for SerialMiner {
    fn default() -> Self {
        SerialMiner::new()
    }
}

impl SerialMiner {
    /// Creates a serial miner.
    pub fn new() -> Self {
        SerialMiner {
            capture_schedule: true,
        }
    }

    /// Enables or disables publication of the (trivial, sequential)
    /// schedule metadata. Disabled only for benchmarking the bare
    /// execution path.
    pub fn with_schedule_capture(mut self, capture: bool) -> Self {
        self.capture_schedule = capture;
        self
    }
}

impl Miner for SerialMiner {
    fn mine(&self, world: &World, transactions: Vec<Transaction>) -> Result<MinedBlock, CoreError> {
        self.mine_on(world, transactions, Hash256::ZERO, 1)
    }

    fn mine_on(
        &self,
        world: &World,
        transactions: Vec<Transaction>,
        parent_hash: Hash256,
        number: u64,
    ) -> Result<MinedBlock, CoreError> {
        let start = Instant::now();
        let stm = world.stm();
        let pool = stm.begin_block();
        let locks_before = stm.lock_stats();

        let mut receipts: Vec<Receipt> = Vec::with_capacity(transactions.len());
        let mut retries = 0u64;
        let mut read_only = 0u64;
        for (index, tx) in transactions.iter().enumerate() {
            // With no concurrent transactions a deadlock abort is
            // impossible, but the retry loop keeps the execution path
            // identical to the parallel miner's.
            loop {
                let txn = pool.begin();
                match world.execute(&txn, index, tx.msg(), tx.to, &tx.call, tx.gas_limit) {
                    Ok(receipt) => {
                        let commit = txn.commit().map_err(|source| CoreError::MiningFailed {
                            tx_index: index,
                            source,
                        })?;
                        if commit
                            .profile
                            .locks
                            .iter()
                            .all(|e| e.mode == LockMode::Shared)
                        {
                            read_only += 1;
                        }
                        receipts.push(receipt);
                        break;
                    }
                    Err(_) => {
                        let _ = txn.abort();
                        retries += 1;
                        continue;
                    }
                }
            }
        }

        let elapsed = start.elapsed();
        let gas_used = receipts.iter().map(|r| r.gas_used).sum();
        let n = transactions.len();
        let (schedule, critical_path, hb_edges) = if self.capture_schedule {
            let schedule = ScheduleMetadata::sequential(n);
            let critical_path = schedule.critical_path();
            let hb_edges = schedule.edges.len();
            (Some(schedule), critical_path, hb_edges)
        } else {
            (None, 0, 0)
        };
        let block = Block::build(
            parent_hash,
            number,
            transactions,
            receipts,
            world.state_root(),
            schedule,
        );
        Ok(MinedBlock {
            block,
            stats: MinerStats {
                threads: 1,
                transactions: n,
                retries,
                elapsed,
                gas_used,
                critical_path,
                hb_edges,
                locks: stm.lock_stats().since(&locks_before),
                read_only,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vm::testing::CounterContract;
    use cc_vm::{Address, ArgValue, CallData};
    use std::sync::Arc;

    fn counter_world() -> (World, Address) {
        let world = World::new();
        let addr = Address::from_name("counter-serial");
        world.deploy(Arc::new(CounterContract::new(addr)));
        (world, addr)
    }

    fn increment_tx(i: u64, to: Address) -> Transaction {
        Transaction::new(
            i,
            Address::from_index(i),
            to,
            CallData::new("increment", vec![ArgValue::Uint(1)]),
            1_000_000,
        )
    }

    #[test]
    fn mines_a_block_and_applies_state() {
        let (world, addr) = counter_world();
        let txs: Vec<Transaction> = (0..10).map(|i| increment_tx(i, addr)).collect();
        let mined = SerialMiner::new().mine(&world, txs).unwrap();
        assert_eq!(mined.block.len(), 10);
        assert!(mined.block.is_well_formed());
        assert_eq!(mined.block.header.state_root, world.state_root());
        assert_eq!(mined.stats.threads, 1);
        assert_eq!(mined.stats.transactions, 10);
        assert!(mined.block.receipts.iter().all(Receipt::succeeded));
        // A sequential schedule is published.
        assert_eq!(mined.block.schedule.as_ref().unwrap().critical_path(), 10);
    }

    #[test]
    fn empty_block() {
        let (world, _) = counter_world();
        let mined = SerialMiner::new().mine(&world, Vec::new()).unwrap();
        assert!(mined.block.is_empty());
        assert!(mined.block.is_well_formed());
    }

    #[test]
    fn mine_on_links_to_parent() {
        let (world, addr) = counter_world();
        let parent = cc_primitives::sha256(b"parent");
        let mined = SerialMiner::new()
            .mine_on(&world, vec![increment_tx(0, addr)], parent, 7)
            .unwrap();
        assert_eq!(mined.block.header.parent_hash, parent);
        assert_eq!(mined.block.header.number, 7);
        assert_eq!(mined.state_root(), world.state_root());
    }
}
