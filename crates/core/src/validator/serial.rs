//! The serial validator: today's behaviour — re-execute the block's
//! transactions one at a time in block order.

use crate::error::CoreError;
use crate::stats::ValidationReport;
use crate::validator::{receipt_mismatches, Validator};
use cc_ledger::Block;
use cc_vm::{Receipt, World};
use std::time::Instant;

/// Re-executes the block sequentially and checks the state root, receipts
/// and gas usage.
///
/// If the block publishes a schedule, the transactions are replayed in the
/// published *serial order* (the topological sort of the happens-before
/// graph); otherwise in plain block order. Either way execution is
/// single-threaded — this is the baseline the paper's validator speedups
/// are measured against.
#[derive(Debug, Clone, Default)]
pub struct SerialValidator;

impl SerialValidator {
    /// Creates a serial validator.
    pub fn new() -> Self {
        SerialValidator
    }
}

impl Validator for SerialValidator {
    fn validate(&self, world: &World, block: &Block) -> Result<ValidationReport, CoreError> {
        let start = Instant::now();
        if !block.is_well_formed() {
            return Err(CoreError::rejected(
                "block commitments do not match its body",
            ));
        }
        let stm = world.stm();
        let pool = stm.begin_block();

        let n = block.transactions.len();
        // Replay in the published serial order when a schedule is present
        // (it is the serialization the block's receipts and state commit
        // to); otherwise plain block order.
        let order: Vec<usize> = match &block.schedule {
            Some(schedule) if schedule.serial_order.len() == n => schedule.serial_order.clone(),
            _ => (0..n).collect(),
        };

        let mut replayed: Vec<Option<Receipt>> = vec![None; n];
        for &index in &order {
            let tx = &block.transactions[index];
            loop {
                let txn = pool.begin();
                match world.execute(&txn, index, tx.msg(), tx.to, &tx.call, tx.gas_limit) {
                    Ok(receipt) => {
                        txn.commit().map_err(|e| {
                            CoreError::rejected(format!(
                                "replay of transaction {index} failed: {e}"
                            ))
                        })?;
                        replayed[index] = Some(receipt);
                        break;
                    }
                    Err(_) => {
                        let _ = txn.abort();
                        continue;
                    }
                }
            }
        }
        let replayed: Vec<Receipt> = replayed
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.ok_or_else(|| {
                    CoreError::rejected(format!(
                        "transaction {i} missing from the published serial order"
                    ))
                })
            })
            .collect::<Result<_, _>>()?;

        let mut reasons = receipt_mismatches(&block.receipts, &replayed);
        let state_root = world.state_root();
        if state_root != block.header.state_root {
            reasons.push(format!(
                "state root mismatch: block commits to {}, replay produced {}",
                block.header.state_root, state_root
            ));
        }
        if !reasons.is_empty() {
            return Err(CoreError::BlockRejected { reasons });
        }
        Ok(ValidationReport {
            threads: 1,
            transactions: block.transactions.len(),
            state_root,
            elapsed: start.elapsed(),
            critical_path: block.transactions.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::{Miner, SerialMiner};
    use cc_ledger::Transaction;
    use cc_primitives::hash::Hash256;
    use cc_vm::testing::CounterContract;
    use cc_vm::{Address, ArgValue, CallData};
    use std::sync::Arc;

    fn setup() -> (World, World, Address) {
        let build = || {
            let world = World::new();
            let addr = Address::from_name("counter-sv");
            world.deploy(Arc::new(CounterContract::new(addr)));
            (world, addr)
        };
        let (miner_world, addr) = build();
        let (validator_world, _) = build();
        (miner_world, validator_world, addr)
    }

    fn txs(addr: Address, n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| {
                Transaction::new(
                    i,
                    Address::from_index(i),
                    addr,
                    CallData::new("increment", vec![ArgValue::Uint(1)]),
                    1_000_000,
                )
            })
            .collect()
    }

    #[test]
    fn honest_block_is_accepted() {
        let (miner_world, validator_world, addr) = setup();
        let mined = SerialMiner::new().mine(&miner_world, txs(addr, 8)).unwrap();
        let report = SerialValidator::new()
            .validate(&validator_world, &mined.block)
            .unwrap();
        assert_eq!(report.state_root, mined.block.header.state_root);
        assert_eq!(report.transactions, 8);
        assert_eq!(report.threads, 1);
    }

    #[test]
    fn tampered_state_root_is_rejected() {
        let (miner_world, validator_world, addr) = setup();
        let mut mined = SerialMiner::new().mine(&miner_world, txs(addr, 4)).unwrap();
        mined.block.header.state_root = Hash256::ZERO;
        // Keep the block structurally well-formed: rebuild commitments that
        // depend only on the body.
        let err = SerialValidator::new()
            .validate(&validator_world, &mined.block)
            .unwrap_err();
        assert!(err.to_string().contains("state root"));
    }

    #[test]
    fn tampered_receipts_are_rejected() {
        let (miner_world, validator_world, addr) = setup();
        let mined = SerialMiner::new().mine(&miner_world, txs(addr, 4)).unwrap();
        let mut block = mined.block.clone();
        block.receipts[2].gas_used += 1;
        // receipts_root no longer matches -> malformed.
        let err = SerialValidator::new()
            .validate(&validator_world, &block)
            .unwrap_err();
        assert!(err.to_string().contains("commitments"));
    }
}
