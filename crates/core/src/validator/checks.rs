//! Schedule-integrity checks shared by the fork-join validator and the
//! speculative pending chain: replayed lock traces against published
//! profiles, and the hidden-data-race test over the happens-before graph.

use crate::schedule::HappensBeforeGraph;
use cc_ledger::ScheduleMetadata;
use cc_primitives::fx::FxHashMap;
use cc_stm::{LockId, LockMode};
use std::collections::BTreeMap;

/// Checks the lock traces a replay recorded (one `BTreeMap` per
/// transaction, in block order) against the published schedule:
///
/// 1. every trace must equal the lock profile the miner published for
///    that transaction,
/// 2. every pair of transactions whose traces conflict must be ordered by
///    the published happens-before graph (no hidden data race).
///
/// Returns a human-readable reason per violation; empty means the traces
/// are consistent with the schedule.
pub(crate) fn trace_check_reasons(
    schedule: &ScheduleMetadata,
    graph: &HappensBeforeGraph,
    traces: &[BTreeMap<LockId, LockMode>],
) -> Vec<String> {
    let mut reasons = Vec::new();

    // (1) Traces must match the published profiles.
    for (index, trace) in traces.iter().enumerate() {
        let published = schedule
            .profiles
            .iter()
            .find(|p| p.tx_index == index)
            .map(|p| p.profile.lock_set());
        match published {
            Some(profile) if &profile == trace => {}
            Some(_) => reasons.push(format!(
                "transaction {index}: replayed lock trace differs from the published profile"
            )),
            None => reasons.push(format!("transaction {index}: no lock profile published")),
        }
    }

    // (2) No hidden data races: conflicting transactions must be
    // ordered by the published graph. Mirroring the reduced
    // construction, each lock's holders are sorted by their serial
    // position and grouped into maximal runs of mutually-commuting
    // modes; only cross pairs of *consecutive* runs need a
    // reachability query. That is equivalent to checking every
    // conflicting pair — ordering between consecutive runs
    // composes transitively, and the published serial order
    // respects every edge (enforced by `from_metadata`), so an
    // ordered pair is always reachable in serial-order direction —
    // but costs O(run boundaries) instead of O(h²) per hot lock.
    let reachability = graph.reachability();
    let mut position = vec![0usize; traces.len()];
    for (pos, &tx) in schedule.serial_order.iter().enumerate() {
        position[tx] = pos;
    }
    let mut by_lock: FxHashMap<LockId, Vec<(usize, LockMode)>> = FxHashMap::default();
    for (index, trace) in traces.iter().enumerate() {
        for (&lock, &mode) in trace {
            by_lock.entry(lock).or_default().push((index, mode));
        }
    }
    // Deterministic rejection messages regardless of hash order.
    let mut locks: Vec<(LockId, Vec<(usize, LockMode)>)> = by_lock.into_iter().collect();
    locks.sort_unstable_by_key(|&(lock, _)| lock);
    for (lock, mut holders) in locks {
        holders.sort_unstable_by_key(|&(tx, _)| position[tx]);
        crate::schedule::for_each_consecutive_run_pair(
            &holders,
            |&(_, mode)| mode,
            |prev, next| {
                for &(tx_a, _) in prev {
                    for &(tx_b, _) in next {
                        if !reachability.can_reach(tx_a, tx_b) {
                            reasons.push(format!(
                                "data race: transactions {tx_a} and {tx_b} conflict on lock {lock} but are unordered in the published schedule"
                            ));
                            // One reason per lock is enough to reject.
                            return false;
                        }
                    }
                }
                true
            },
        );
    }

    reasons
}
