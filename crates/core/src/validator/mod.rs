//! Block validation: the serial baseline and the deterministic fork-join
//! validator.

pub(crate) mod checks;
mod parallel;
mod serial;

pub use parallel::ParallelValidator;
pub use serial::SerialValidator;

use crate::error::CoreError;
use crate::stats::ValidationReport;
use cc_ledger::Block;
use cc_vm::World;

/// Something that re-executes a block against the parent state and decides
/// whether to accept it.
///
/// Validation **mutates** the world: on success the world holds the
/// block's post-state (so the same world can then validate the next block
/// of a chain). On rejection the world contents are unspecified — a real
/// node discards that state and resynchronizes, and the tests follow the
/// same discipline.
pub trait Validator {
    /// Replays `block` on top of `world` and checks every commitment.
    ///
    /// # Errors
    ///
    /// * [`CoreError::BlockRejected`] when the block is dishonest: the
    ///   recomputed state root, receipts or gas differ, a replayed
    ///   transaction's lock trace is inconsistent with the published
    ///   profile, or the published schedule hides a data race.
    /// * [`CoreError::MissingSchedule`] / [`CoreError::MalformedSchedule`]
    ///   when the schedule cannot be replayed at all.
    fn validate(&self, world: &World, block: &Block) -> Result<ValidationReport, CoreError>;
}

/// Shared check: compare replayed receipts against the block's receipts.
/// Returns human-readable reasons for every mismatch.
pub(crate) fn receipt_mismatches(
    expected: &[cc_vm::Receipt],
    actual: &[cc_vm::Receipt],
) -> Vec<String> {
    let mut reasons = Vec::new();
    if expected.len() != actual.len() {
        reasons.push(format!(
            "receipt count mismatch: block has {}, replay produced {}",
            expected.len(),
            actual.len()
        ));
        return reasons;
    }
    for (i, (e, a)) in expected.iter().zip(actual.iter()).enumerate() {
        if e != a {
            reasons.push(format!("receipt {i} differs between block and replay"));
        }
    }
    reasons
}
