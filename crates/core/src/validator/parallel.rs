//! The deterministic, concurrent fork-join validator (paper §4 and
//! Algorithm 2).

use crate::error::CoreError;
use crate::fork_join::run_fork_join;
use crate::schedule::HappensBeforeGraph;
use crate::stats::ValidationReport;
use crate::validator::{receipt_mismatches, Validator};
use cc_ledger::Block;
use cc_stm::profile::collapse_trace;
use cc_stm::{LockId, LockMode};
use cc_vm::{Receipt, World};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Instant;

/// Replays a block as the fork-join program derived from its published
/// schedule.
///
/// Each transaction is a task that runs only after its happens-before
/// predecessors have completed, so conflicting transactions never execute
/// concurrently and **no abstract locks, conflict detection or rollback
/// machinery** are needed. While replaying, every transaction records the
/// trace of abstract locks it *would* have acquired; afterwards the
/// validator checks:
///
/// 1. every replayed trace matches the lock profile the miner published
///    for that transaction,
/// 2. every pair of transactions whose traces conflict is ordered by the
///    published happens-before graph (no hidden data race),
/// 3. the replayed receipts equal the block's receipts,
/// 4. the recomputed state root equals the block's state root.
///
/// Any failure rejects the block.
#[derive(Debug, Clone)]
pub struct ParallelValidator {
    threads: usize,
    check_traces: bool,
}

impl ParallelValidator {
    /// Creates a validator with `threads` worker threads.
    pub fn new(threads: usize) -> Self {
        ParallelValidator {
            threads: threads.max(1),
            check_traces: true,
        }
    }

    /// Disables the lock-trace and race checks, leaving only the state /
    /// receipt comparison. Used by the ablation benchmark to measure what
    /// the trace verification costs; a real validator never does this.
    pub fn without_trace_checks(self) -> Self {
        self.with_trace_checks(false)
    }

    /// Enables or disables the lock-trace and race checks (see
    /// [`ParallelValidator::without_trace_checks`]).
    pub fn with_trace_checks(mut self, check: bool) -> Self {
        self.check_traces = check;
        self
    }

    /// Number of worker threads this validator uses.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Validator for ParallelValidator {
    fn validate(&self, world: &World, block: &Block) -> Result<ValidationReport, CoreError> {
        let start = Instant::now();
        if !block.is_well_formed() {
            return Err(CoreError::rejected(
                "block commitments do not match its body",
            ));
        }
        let schedule = block.schedule.as_ref().ok_or(CoreError::MissingSchedule)?;
        let n = block.transactions.len();
        let graph = HappensBeforeGraph::from_metadata(schedule, n)?;

        // Paper Algorithm 2: one task per transaction, joining on its
        // immediate predecessors. Tasks record receipts and lock traces.
        let stm = world.stm();
        stm.begin_block();
        // One slot per transaction: the replayed receipt plus the lock
        // trace the transaction would have taken.
        type ReplaySlot = Mutex<Option<(Receipt, BTreeMap<LockId, LockMode>)>>;
        let results: Vec<ReplaySlot> = (0..n).map(|_| Mutex::new(None)).collect();

        run_fork_join(&graph, self.threads, |index| {
            let tx = &block.transactions[index];
            let txn = stm.begin_replay();
            let receipt = world
                .execute(&txn, index, tx.msg(), tx.to, &tx.call, tx.gas_limit)
                .expect("replay transactions cannot hit speculative conflicts");
            // Consuming the transaction avoids cloning the whole trace on
            // every replayed transaction and closes it like a commit.
            let trace = collapse_trace(&txn.into_trace());
            *results[index].lock() = Some((receipt, trace));
        });

        let mut replayed_receipts = Vec::with_capacity(n);
        let mut traces = Vec::with_capacity(n);
        for slot in results {
            let (receipt, trace) = slot.into_inner().expect("every task ran");
            replayed_receipts.push(receipt);
            traces.push(trace);
        }

        // (1) + (2): traces match the published profiles, and no hidden
        // data races (shared with the speculative pending chain).
        let mut reasons = if self.check_traces {
            crate::validator::checks::trace_check_reasons(schedule, &graph, &traces)
        } else {
            Vec::new()
        };

        // (3) Receipts must match.
        reasons.extend(receipt_mismatches(&block.receipts, &replayed_receipts));

        // (4) State root must match.
        let state_root = world.state_root();
        if state_root != block.header.state_root {
            reasons.push(format!(
                "state root mismatch: block commits to {}, replay produced {}",
                block.header.state_root, state_root
            ));
        }

        if !reasons.is_empty() {
            return Err(CoreError::BlockRejected { reasons });
        }
        Ok(ValidationReport {
            threads: self.threads,
            transactions: n,
            state_root,
            elapsed: start.elapsed(),
            critical_path: graph.critical_path(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::{Miner, ParallelMiner};
    use cc_contracts::Ballot;
    use cc_ledger::Transaction;
    use cc_vm::testing::CounterContract;
    use cc_vm::{Address, ArgValue, CallData};
    use std::sync::Arc;

    fn counter_world() -> World {
        let world = World::new();
        world.deploy(Arc::new(CounterContract::new(Address::from_name(
            "counter-pv",
        ))));
        world
    }

    fn counter_txs(n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| {
                Transaction::new(
                    i,
                    Address::from_index(i % 4),
                    Address::from_name("counter-pv"),
                    CallData::new("increment", vec![ArgValue::Uint(1)]),
                    1_000_000,
                )
            })
            .collect()
    }

    fn ballot_world(voters: u64) -> World {
        let world = World::new();
        let ballot = Ballot::with_numbered_proposals(
            Address::from_name("Ballot-pv"),
            Address::from_index(0),
            2,
        );
        for v in 1..=voters {
            ballot.seed_registered_voter(Address::from_index(v));
        }
        world.deploy(Arc::new(ballot));
        world
    }

    fn ballot_txs(voters: u64, double_voters: u64) -> Vec<Transaction> {
        let mut txs = Vec::new();
        for v in 1..=voters {
            txs.push(Transaction::new(
                v,
                Address::from_index(v),
                Address::from_name("Ballot-pv"),
                CallData::new("vote", vec![ArgValue::Uint(0)]),
                1_000_000,
            ));
        }
        for v in 1..=double_voters {
            txs.push(Transaction::new(
                1000 + v,
                Address::from_index(v),
                Address::from_name("Ballot-pv"),
                CallData::new("vote", vec![ArgValue::Uint(0)]),
                1_000_000,
            ));
        }
        txs
    }

    #[test]
    fn honest_parallel_block_is_accepted() {
        let mined = ParallelMiner::new(3)
            .mine(&counter_world(), counter_txs(30))
            .unwrap();
        let report = ParallelValidator::new(3)
            .validate(&counter_world(), &mined.block)
            .unwrap();
        assert_eq!(report.state_root, mined.block.header.state_root);
        assert_eq!(report.transactions, 30);
        assert!(report.critical_path >= 1);
    }

    #[test]
    fn ballot_block_with_reverts_validates() {
        let mined = ParallelMiner::new(3)
            .mine(&ballot_world(12), ballot_txs(12, 4))
            .unwrap();
        let report = ParallelValidator::new(4)
            .validate(&ballot_world(12), &mined.block)
            .unwrap();
        assert_eq!(report.state_root, mined.block.header.state_root);
    }

    #[test]
    fn replay_is_deterministic_across_thread_counts() {
        let mined = ParallelMiner::new(3)
            .mine(&ballot_world(16), ballot_txs(16, 5))
            .unwrap();
        for threads in [1, 2, 4, 8] {
            let report = ParallelValidator::new(threads)
                .validate(&ballot_world(16), &mined.block)
                .unwrap();
            assert_eq!(report.state_root, mined.block.header.state_root);
        }
    }

    #[test]
    fn missing_schedule_is_rejected() {
        let mined = ParallelMiner::new(2)
            .mine(&counter_world(), counter_txs(4))
            .unwrap();
        let mut block = mined.block.clone();
        block.schedule = None;
        block.header.schedule_digest = cc_primitives::Hash256::ZERO;
        let err = ParallelValidator::new(2)
            .validate(&counter_world(), &block)
            .unwrap_err();
        assert!(matches!(err, CoreError::MissingSchedule));
    }

    #[test]
    fn dropping_a_dependency_edge_is_detected_as_a_race() {
        // Transactions from the same sender conflict on the sender's
        // counts entry; removing the edge between two of them while
        // keeping the header consistent must be caught by the race check.
        let mined = ParallelMiner::new(3)
            .mine(&counter_world(), counter_txs(12))
            .unwrap();
        let mut block = mined.block.clone();
        let schedule = block.schedule.as_mut().unwrap();
        assert!(!schedule.edges.is_empty());
        schedule.edges.clear();
        // Re-commit the tampered schedule so the block stays well-formed
        // (a dishonest miner would do exactly this).
        block.header.schedule_digest = schedule.digest();
        let err = ParallelValidator::new(3)
            .validate(&counter_world(), &block)
            .unwrap_err();
        match err {
            CoreError::BlockRejected { reasons } => {
                assert!(
                    reasons.iter().any(|r| r.contains("data race")),
                    "expected a data-race rejection, got: {reasons:?}"
                );
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn forged_state_root_is_rejected() {
        let mined = ParallelMiner::new(3)
            .mine(&counter_world(), counter_txs(8))
            .unwrap();
        let mut block = mined.block.clone();
        block.header.state_root = cc_primitives::sha256(b"forged");
        let err = ParallelValidator::new(3)
            .validate(&counter_world(), &block)
            .unwrap_err();
        assert!(err.to_string().contains("state root"));
    }

    #[test]
    fn wrong_initial_state_is_rejected() {
        let mined = ParallelMiner::new(3)
            .mine(&ballot_world(8), ballot_txs(8, 0))
            .unwrap();
        // Validate against a world with a different set of registered
        // voters: replay diverges (receipts and state differ).
        let err = ParallelValidator::new(3)
            .validate(&ballot_world(4), &mined.block)
            .unwrap_err();
        assert!(matches!(err, CoreError::BlockRejected { .. }));
    }

    #[test]
    fn ablation_mode_skips_trace_checks_but_still_checks_state() {
        let mined = ParallelMiner::new(3)
            .mine(&counter_world(), counter_txs(8))
            .unwrap();
        let report = ParallelValidator::new(3)
            .without_trace_checks()
            .validate(&counter_world(), &mined.block)
            .unwrap();
        assert_eq!(report.state_root, mined.block.header.state_root);
        let mut block = mined.block.clone();
        block.header.state_root = cc_primitives::sha256(b"forged");
        assert!(ParallelValidator::new(3)
            .without_trace_checks()
            .validate(&counter_world(), &block)
            .is_err());
    }

    #[test]
    fn serial_blocks_are_also_validatable_in_parallel() {
        use crate::miner::SerialMiner;
        let mined = SerialMiner::new()
            .mine(&counter_world(), counter_txs(6))
            .unwrap();
        // A sequential schedule has no profiles; the trace check would
        // reject it, which is the correct behaviour for a parallel
        // validator — but the ablation mode can still replay it.
        let report = ParallelValidator::new(2)
            .without_trace_checks()
            .validate(&counter_world(), &mined.block)
            .unwrap();
        assert_eq!(report.state_root, mined.block.header.state_root);
    }
}
