//! Errors produced by mining and validation.

use cc_mempool::MempoolError;
use cc_stm::StmError;
use std::fmt;

/// Failure of a mining or validation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A transaction could not be committed even after exhausting its
    /// retry budget (pathological contention).
    MiningFailed {
        /// Index of the offending transaction within the block.
        tx_index: usize,
        /// The underlying speculative-execution error.
        source: StmError,
    },
    /// The block under validation was rejected. The reasons list every
    /// check that failed (state root, receipts, schedule consistency,
    /// data races, missing profiles).
    BlockRejected {
        /// Human-readable reasons, one per failed check.
        reasons: Vec<String>,
    },
    /// The block's schedule metadata is missing but the validator was
    /// asked to replay it in parallel.
    MissingSchedule,
    /// The schedule is malformed (wrong length, cyclic, or indices out of
    /// range) and cannot even be turned into a fork-join program.
    MalformedSchedule {
        /// Description of the structural problem.
        reason: String,
    },
    /// An [`crate::engine::EngineConfig`] could not be turned into an
    /// engine (zero worker threads, empty retry budget, …).
    InvalidConfig {
        /// Description of the rejected setting.
        reason: String,
    },
    /// A durability operation failed: the WAL could not be written, a
    /// snapshot could not be persisted, or crash recovery found the
    /// durability directory unusable. Carries the rendered cause (this
    /// error type is `Clone + Eq`; `std::io::Error` is neither).
    Durability {
        /// Description of the failed operation and its cause.
        reason: String,
    },
    /// A submission was turned away by the node's mempool (nonce already
    /// consumed, replacement or admission underpriced).
    Mempool(MempoolError),
}

impl CoreError {
    /// Convenience constructor for a single-reason rejection.
    pub fn rejected(reason: impl Into<String>) -> Self {
        CoreError::BlockRejected {
            reasons: vec![reason.into()],
        }
    }

    /// Convenience constructor for a durability failure.
    pub fn durability(reason: impl std::fmt::Display) -> Self {
        CoreError::Durability {
            reason: reason.to_string(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::MiningFailed { tx_index, source } => {
                write!(f, "mining failed at transaction {tx_index}: {source}")
            }
            CoreError::BlockRejected { reasons } => {
                write!(f, "block rejected: {}", reasons.join("; "))
            }
            CoreError::MissingSchedule => f.write_str("block carries no schedule metadata"),
            CoreError::MalformedSchedule { reason } => write!(f, "malformed schedule: {reason}"),
            CoreError::InvalidConfig { reason } => write!(f, "invalid engine config: {reason}"),
            CoreError::Durability { reason } => write!(f, "durability failure: {reason}"),
            CoreError::Mempool(err) => write!(f, "mempool rejected transaction: {err}"),
        }
    }
}

impl From<MempoolError> for CoreError {
    fn from(err: MempoolError) -> Self {
        CoreError::Mempool(err)
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        let e = CoreError::MiningFailed {
            tx_index: 4,
            source: StmError::RetriesExhausted { attempts: 64 },
        };
        assert!(e.to_string().contains("transaction 4"));
        assert!(CoreError::rejected("state root mismatch")
            .to_string()
            .contains("state root mismatch"));
        assert!(CoreError::MissingSchedule.to_string().contains("schedule"));
        assert!(CoreError::MalformedSchedule {
            reason: "cycle".into()
        }
        .to_string()
        .contains("cycle"));
        assert!(CoreError::InvalidConfig {
            reason: "0 threads".into()
        }
        .to_string()
        .contains("0 threads"));
        assert!(CoreError::durability("wal write failed")
            .to_string()
            .contains("wal write failed"));
    }
}
