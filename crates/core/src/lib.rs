//! Concurrent smart-contract execution for miners and validators.
//!
//! This crate is the primary contribution of the reproduced paper,
//! *Adding Concurrency to Smart Contracts* (Dickerson, Gazzillo, Herlihy,
//! Koskinen — PODC 2017):
//!
//! 1. **Speculative parallel mining** ([`miner::ParallelMiner`], paper
//!    Algorithm 1). A fixed pool of worker threads executes a block's
//!    transactions as speculative atomic actions on the transactional-
//!    boosting runtime of [`cc_stm`]. Conflicts are detected at run time
//!    through abstract locks; deadlock victims roll back (replaying their
//!    inverse logs) and retry. Each committed transaction registers a lock
//!    profile.
//! 2. **Schedule capture** ([`schedule`]). The per-lock use counters in the
//!    profiles totally order the conflicting transactions on each lock;
//!    from them the miner builds a **happens-before graph**, topologically
//!    sorts it into an equivalent serial order, and publishes both in the
//!    block ([`cc_ledger::ScheduleMetadata`]).
//! 3. **Deterministic concurrent validation**
//!    ([`validator::ParallelValidator`], paper Algorithm 2). A validator
//!    turns the published graph into a **fork-join program**
//!    ([`fork_join`]): each transaction is a task that joins on its
//!    immediate predecessors, so conflicting transactions never run
//!    concurrently and no locks, conflict detection or rollback are
//!    needed. While replaying, the validator records the abstract locks
//!    each transaction *would* have taken and rejects the block if the
//!    traces are inconsistent with the published profiles, if the
//!    schedule hides a data race, or if the final state or receipts
//!    differ from the block's commitments.
//!
//! The serial baselines used throughout the paper's evaluation are
//! [`miner::SerialMiner`] and [`validator::SerialValidator`].
//!
//! All of the above is selected and wired through **one entry point**:
//! the [`engine`] module. An [`engine::EngineConfig`] names an
//! [`engine::ExecutionStrategy`] (serial baseline or the paper's
//! speculative-STM pair), a worker-thread count, a retry budget and the
//! schedule-capture / trace-check toggles; building it yields an
//! [`engine::Engine`] that mines and validates blocks.
//!
//! # Example
//!
//! ```
//! use cc_core::engine::{Engine, EngineConfig};
//! use cc_core::node::Node;
//! use cc_ledger::Transaction;
//! use cc_vm::{Address, ArgValue, CallData, World, testing::CounterContract};
//! use std::sync::Arc;
//!
//! let build_world = || {
//!     let world = World::new();
//!     world.deploy(Arc::new(CounterContract::new(Address::from_name("counter"))));
//!     world
//! };
//! let txs: Vec<Transaction> = (0..16)
//!     .map(|i| Transaction::new(i, Address::from_index(i), Address::from_name("counter"),
//!          CallData::new("increment", vec![ArgValue::Uint(1)]), 1_000_000))
//!     .collect();
//!
//! // The default engine is the paper's configuration: speculative
//! // mining + fork-join validation on a fixed pool of three threads.
//! let engine = Engine::default();
//! let mined = engine.mine(&build_world(), txs).expect("mining succeeds");
//!
//! // Validate against a fresh copy of the initial state.
//! let report = engine
//!     .validate(&build_world(), &mined.block)
//!     .expect("block is honest");
//! assert_eq!(report.state_root, mined.block.header.state_root);
//!
//! // A Node bundles an engine with a world and a chain.
//! let mut node = Node::builder()
//!     .world(build_world())
//!     .config(EngineConfig::new().threads(3))
//!     .build()
//!     .expect("valid config");
//! let more: Vec<Transaction> = (0..8)
//!     .map(|i| Transaction::new(i, Address::from_index(i), Address::from_name("counter"),
//!          CallData::new("increment", vec![ArgValue::Uint(1)]), 1_000_000))
//!     .collect();
//! node.mine_and_append(more).expect("block appended");
//! assert_eq!(node.chain().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod fork_join;
pub mod miner;
pub mod node;
pub mod schedule;
pub mod stats;
pub mod validator;

pub use engine::{Engine, EngineConfig, ExecutionStrategy};
pub use error::CoreError;
pub use miner::{MinedBlock, Miner, ParallelMiner, SerialMiner};
pub use node::follower::{FollowerConfig, FollowerReport};
pub use node::pending::{PendingChain, PendingState};
pub use node::pipeline::{PipelineConfig, PipelineReport};
pub use node::{DurabilityConfig, Node, NodeBuilder};
pub use schedule::HappensBeforeGraph;
pub use stats::{MinerStats, ValidationReport};
pub use validator::{ParallelValidator, SerialValidator, Validator};
