//! A convenience full node: an [`Engine`], a world, a chain, a mempool
//! front door ([`Node::submit`] / [`Node::mine_pending`]) — and
//! optionally a durable ledger (write-ahead log plus periodic snapshots)
//! that [`Node::recover`] can rebuild the node from after a crash.

pub mod follower;
pub mod pending;
pub mod pipeline;

use crate::engine::{Engine, EngineConfig};
use crate::error::CoreError;
use crate::miner::{MinedBlock, Miner};
use crate::stats::ValidationReport;
use crate::validator::Validator;
use cc_ledger::wal::{DurabilityMode, Wal, WAL_FILE};
use cc_ledger::{Block, Blockchain, ChainError, SnapshotFile, Transaction};
use cc_mempool::{Mempool, MempoolConfig, SubmitOutcome};
use cc_vm::World;
use pending::PendingChain;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Where and how eagerly a node persists its ledger.
///
/// With a mode other than [`DurabilityMode::Off`], the node writes every
/// transaction lifecycle event and every appended block to a write-ahead
/// log in `dir` (one file write — and in [`DurabilityMode::Fsync`] one
/// fsync — per block, via group commit), plus a full world snapshot
/// every `snapshot_interval` blocks, after which the log is reset.
/// [`Node::recover`] rebuilds a node from that directory.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    dir: PathBuf,
    mode: DurabilityMode,
    snapshot_interval: u64,
}

impl DurabilityConfig {
    /// Default number of blocks between world snapshots.
    pub const DEFAULT_SNAPSHOT_INTERVAL: u64 = 16;

    /// Configures durability in `dir` with the given mode.
    pub fn new(dir: impl Into<PathBuf>, mode: DurabilityMode) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            mode,
            snapshot_interval: Self::DEFAULT_SNAPSHOT_INTERVAL,
        }
    }

    /// Sets the snapshot cadence (clamped to at least 1 block).
    pub fn snapshot_interval(mut self, every: u64) -> Self {
        self.snapshot_interval = every.max(1);
        self
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured durability mode.
    pub fn mode(&self) -> DurabilityMode {
        self.mode
    }
}

/// Live durability machinery of a node: its config plus the open WAL
/// (shared with the execution runtimes as their durability sink).
#[derive(Debug)]
struct DurabilityState {
    config: DurabilityConfig,
    wal: Arc<Wal>,
}

/// A node that owns a world, a chain and the [`Engine`] that executes
/// blocks, keeping all three consistent.
///
/// `Node` is a thin orchestration layer used by the examples and the
/// benchmark harness:
///
/// * a **mining node** calls [`Node::mine_and_append`] to execute client
///   transactions with its engine's miner and extend its chain;
/// * a **validating node** calls [`Node::validate_and_append`] with blocks
///   received from the network; its world is advanced only when the block
///   is accepted.
///
/// Build one with [`Node::builder`]:
///
/// ```
/// use cc_core::engine::EngineConfig;
/// use cc_core::node::Node;
/// use cc_vm::World;
///
/// let node = Node::builder()
///     .world(World::new())
///     .config(EngineConfig::new().threads(2))
///     .build()
///     .expect("valid config");
/// assert_eq!(node.engine().threads(), 2);
/// ```
#[derive(Debug)]
pub struct Node {
    world: World,
    chain: Blockchain,
    engine: Engine,
    /// Set when the in-memory state can no longer be trusted to match
    /// what the node has promised: a validation rejected a block *after*
    /// replaying it (the world holds effects of a block that was never
    /// appended), or persisting an appended block failed (the in-memory
    /// chain is ahead of what the WAL can recover). A stale node refuses
    /// further work; rebuild it with [`Node::recover`] (when durability
    /// is on) or from a trusted state.
    stale: bool,
    durability: Option<DurabilityState>,
    mempool: Mempool,
}

/// Builder for [`Node`]: a world (deployed contracts, seeded state) plus
/// either a ready [`Engine`] or an [`EngineConfig`] to build one from.
#[derive(Debug, Default)]
pub struct NodeBuilder {
    world: Option<World>,
    engine: Option<Engine>,
    config: Option<EngineConfig>,
    durability: Option<DurabilityConfig>,
    mempool: Option<MempoolConfig>,
}

impl NodeBuilder {
    /// Sets the node's initial world. The genesis block commits to this
    /// world's state root. Defaults to an empty [`World`].
    pub fn world(mut self, world: World) -> Self {
        self.world = Some(world);
        self
    }

    /// Uses an already-built engine (e.g. one shared with other nodes).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Builds the node's engine from a configuration. Overridden by
    /// [`NodeBuilder::engine`] if both are given.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Enables durable operation: a fresh WAL and a genesis snapshot are
    /// created in the configured directory at build time (pre-existing
    /// log contents are discarded — use [`Node::recover`] to *resume*
    /// from a directory instead).
    pub fn durability(mut self, config: DurabilityConfig) -> Self {
        self.durability = Some(config);
        self
    }

    /// Sizes the node's mempool (capacity and shard count). Defaults to
    /// [`MempoolConfig::default`].
    pub fn mempool(mut self, config: MempoolConfig) -> Self {
        self.mempool = Some(config);
        self
    }

    /// Constructs the node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the supplied configuration
    /// is rejected by [`EngineConfig::build`], or [`CoreError::Durability`]
    /// if the durability directory cannot be initialized.
    pub fn build(self) -> Result<Node, CoreError> {
        let engine = match (self.engine, self.config) {
            (Some(engine), _) => engine,
            (None, Some(config)) => config.build()?,
            (None, None) => Engine::default(),
        };
        let mut node = Node::new(self.world.unwrap_or_default(), engine);
        if let Some(config) = self.mempool {
            node.mempool = Mempool::new(config);
        }
        if let Some(config) = self.durability {
            node.enable_durability(config)?;
        }
        Ok(node)
    }
}

impl Node {
    /// Starts building a node.
    pub fn builder() -> NodeBuilder {
        NodeBuilder::default()
    }

    /// Creates a node over an already-populated world (deployed contracts,
    /// seeded state) executing blocks with `engine`. The genesis block
    /// commits to that initial state.
    pub fn new(world: World, engine: Engine) -> Self {
        let genesis_root = world.state_root();
        Node {
            world,
            chain: Blockchain::with_genesis_state(genesis_root),
            engine,
            stale: false,
            durability: None,
            mempool: Mempool::default(),
        }
    }

    /// Rebuilds a node from a durability directory after a crash (or
    /// after a rejected validation staled it).
    ///
    /// `world` must be the same *initial* world the original node was
    /// built with (same deployed contracts and seeded state) — contracts
    /// are native code and cannot be serialized, so recovery is
    /// deterministic re-execution: the latest valid snapshot anchors the
    /// chain, every recovered block is replayed through the same
    /// speculative [`pending::PendingChain`] the follower pipeline uses
    /// (any strategy works — blocks carry their schedules, and a serial
    /// engine skips the trace checks), the replayed world is compared
    /// **bit-for-bit**
    /// against the snapshot's world bytes at the snapshot height, and
    /// sealed blocks from the WAL's valid prefix extend the chain past
    /// it. Torn or corrupt WAL tails are dropped; effects of aborted or
    /// unsealed transactions never survive because only sealed blocks
    /// are replayed. The WAL is then reopened (truncating the torn
    /// tail) and the node resumes durable operation.
    ///
    /// # Errors
    ///
    /// [`CoreError::Durability`] if the directory holds no valid
    /// snapshot, the supplied world does not match the recorded genesis,
    /// replay diverges from the recorded commitments, or the WAL cannot
    /// be reopened.
    pub fn recover(
        config: DurabilityConfig,
        world: World,
        engine: Engine,
    ) -> Result<Node, CoreError> {
        let recovered = cc_ledger::recover(config.dir()).map_err(CoreError::durability)?;
        let genesis = recovered
            .chain
            .block(0)
            .ok_or_else(|| CoreError::durability("recovered chain has no genesis block"))?;
        if world.state_root() != genesis.header.state_root {
            return Err(CoreError::durability(
                "supplied initial world does not match the recovered genesis state root",
            ));
        }
        let genesis_hash = genesis.hash();
        let check_snapshot = |world: &World| -> Result<(), CoreError> {
            if world.snapshot().to_bytes() != recovered.snapshot_world_bytes {
                return Err(CoreError::durability(format!(
                    "replayed world diverges from snapshot bytes at height {}",
                    recovered.snapshot_height
                )));
            }
            Ok(())
        };
        if recovered.snapshot_height == 0 {
            check_snapshot(&world)?;
        }
        // The rebuilt chain also seeds the fresh mempool's per-sender
        // nonce boundaries: post-recovery submissions resume where the
        // chain left off instead of parking behind already-mined nonces.
        let mempool = Mempool::default();
        {
            // Replay through the same speculative pending chain the
            // follower pipeline uses: each recovered block validates
            // against its predecessor's pending post-state, and the
            // in-order commit flattens the overlay *before* the
            // bit-for-bit snapshot comparison at the snapshot height.
            let check_traces = engine.config().check_traces
                && engine.strategy() != crate::engine::ExecutionStrategy::Serial;
            let mut pending = PendingChain::new(
                &world,
                genesis_hash,
                follower::FollowerConfig::DEFAULT_MAX_IN_FLIGHT,
            )
            .with_trace_checks(check_traces);
            let replay_err = |number: u64, e: CoreError| {
                CoreError::durability(format!("replay of recovered block {number} failed: {e}"))
            };
            let commit_oldest = |pending: &mut PendingChain<'_>| -> Result<(), CoreError> {
                let Some(oldest) = pending.oldest_hash() else {
                    return Ok(());
                };
                let number = pending
                    .pending_state(&oldest)
                    .expect("oldest is pending")
                    .number;
                pending.commit(&oldest).map_err(|e| replay_err(number, e))?;
                if number == recovered.snapshot_height {
                    check_snapshot(&world)?;
                }
                Ok(())
            };
            for block in recovered.chain.iter().skip(1) {
                if pending.is_full() {
                    commit_oldest(&mut pending)?;
                }
                pending
                    .speculate(pending.tip_hash(), block)
                    .map_err(|e| replay_err(block.header.number, e))?;
                for tx in &block.transactions {
                    mempool.observe_consumed(tx.sender, tx.nonce + 1);
                }
            }
            while !pending.is_empty() {
                commit_oldest(&mut pending)?;
            }
        }
        let durability = if config.mode() == DurabilityMode::Off {
            None
        } else {
            let wal = Arc::new(
                Wal::open_append(config.dir().join(WAL_FILE), config.mode())
                    .map_err(CoreError::durability)?,
            );
            world.stm().lock_manager().attach_durability(wal.clone());
            world.mvcc().attach_durability(wal.clone());
            Some(DurabilityState { config, wal })
        };
        Ok(Node {
            world,
            chain: recovered.chain,
            engine,
            stale: false,
            durability,
            mempool,
        })
    }

    /// Whether this node's state has been corrupted by a rejected
    /// validation (see [`Node::validate_and_append`]) or by a failed
    /// block persistence (the in-memory chain advanced past what the
    /// WAL can recover). A stale node refuses to mine or validate;
    /// rebuild it with [`Node::recover`] from its durability directory,
    /// or from a trusted state.
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    fn ensure_fresh(&self) -> Result<(), CoreError> {
        if self.stale {
            return Err(CoreError::rejected(
                "node state is stale after a rejected validation or a failed persistence; rebuild it with Node::recover from its durability directory, or from a trusted state",
            ));
        }
        Ok(())
    }

    fn enable_durability(&mut self, config: DurabilityConfig) -> Result<(), CoreError> {
        if config.mode() == DurabilityMode::Off {
            return Ok(());
        }
        std::fs::create_dir_all(config.dir()).map_err(CoreError::durability)?;
        let wal = Arc::new(
            Wal::create(config.dir().join(WAL_FILE), config.mode())
                .map_err(CoreError::durability)?,
        );
        self.world
            .stm()
            .lock_manager()
            .attach_durability(wal.clone());
        self.world.mvcc().attach_durability(wal.clone());
        self.durability = Some(DurabilityState { config, wal });
        // The genesis snapshot: recovery always has an anchor, even if
        // the node crashes before the first periodic snapshot.
        self.write_snapshot()
    }

    /// Writes a world snapshot at the current head and resets the WAL
    /// (its records are now redundant). No-op without durability.
    fn write_snapshot(&self) -> Result<(), CoreError> {
        let Some(state) = &self.durability else {
            return Ok(());
        };
        let head = self.chain.head();
        let snapshot = SnapshotFile {
            height: head.header.number,
            block_hash: head.hash(),
            state_root: head.header.state_root,
            blocks: self.chain.iter().cloned().collect(),
            world_bytes: self.world.snapshot().to_bytes(),
        };
        snapshot
            .write_to(state.config.dir())
            .map_err(CoreError::durability)?;
        state.wal.reset().map_err(CoreError::durability)
    }

    /// Seals `block` into the WAL (the group-commit point) and takes a
    /// periodic snapshot when the configured interval elapses. No-op
    /// without durability.
    ///
    /// The block is already on the in-memory chain when this runs, so a
    /// persistence failure means durable state has fallen behind what
    /// the node would keep serving: the node marks itself stale rather
    /// than letting the two silently diverge (a later crash would
    /// recover a shorter chain than the one the node advertised).
    fn persist_block(&mut self, block: &Block) -> Result<(), CoreError> {
        if let Err(e) = self.persist_block_inner(block) {
            self.stale = true;
            return Err(e);
        }
        Ok(())
    }

    fn persist_block_inner(&self, block: &Block) -> Result<(), CoreError> {
        let Some(state) = &self.durability else {
            return Ok(());
        };
        state.wal.seal_block(block).map_err(CoreError::durability)?;
        if block
            .header
            .number
            .is_multiple_of(state.config.snapshot_interval)
        {
            self.write_snapshot()?;
        }
        Ok(())
    }

    /// The node's world (current state).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The node's chain.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// The engine executing this node's blocks.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The node's pending-transaction pool. Inspect occupancy with
    /// [`cc_mempool::Mempool::stats`]; feed it with [`Node::submit`].
    pub fn mempool(&self) -> &Mempool {
        &self.mempool
    }

    /// The node's open write-ahead log, when durability is on. Exposed
    /// for diagnostics and fault injection
    /// ([`cc_ledger::wal::Wal::inject_seal_failures`]) — production
    /// callers never need it.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.durability.as_ref().map(|state| &state.wal)
    }

    /// Submits a transaction to the node's mempool — the traffic-serving
    /// front door. The transaction becomes eligible for the next
    /// [`Node::mine_pending`] (or pipeline) block once all the sender's
    /// earlier nonces are pending or mined; see [`cc_mempool`] for the
    /// admission, replacement and eviction policies.
    ///
    /// Submission is lock-cheap (one shard mutex) and does not touch the
    /// chain, so it can run concurrently with block production.
    ///
    /// # Errors
    ///
    /// [`CoreError::Mempool`] when the pool rejects the transaction, or
    /// [`CoreError::BlockRejected`] with a "stale" reason when the node
    /// has been staled by an earlier failure.
    pub fn submit(&self, tx: Transaction) -> Result<SubmitOutcome, CoreError> {
        self.ensure_fresh()?;
        Ok(self.mempool.submit(tx)?)
    }

    /// Assembles the highest-priority ready transactions from the mempool
    /// into a gas-budgeted batch (see [`cc_mempool::Mempool::build_block`])
    /// and mines them as the next block via [`Node::mine_and_append`].
    /// An empty pool yields an empty block.
    ///
    /// This is the *sequential* production path — assembly, mining,
    /// validation bookkeeping and the WAL seal/fsync all run on this
    /// call. [`Node::run_pipeline`](pipeline) overlaps those stages
    /// across consecutive blocks instead.
    ///
    /// # Errors
    ///
    /// Same as [`Node::mine_and_append`]. Drained transactions are *not*
    /// returned to the pool on error; a failure that matters here stales
    /// the node, and [`Node::recover`] rebuilds from the durable prefix.
    pub fn mine_pending(&mut self, gas_limit: u64) -> Result<MinedBlock, CoreError> {
        self.ensure_fresh()?;
        let batch = self.mempool.build_block(gas_limit);
        self.mine_and_append(batch)
    }

    /// Mines a block of `transactions` with the node's engine on top of
    /// the current head and appends it to the chain.
    ///
    /// This is the raw, batch-at-a-time door used by the validator
    /// examples and benchmarks; a node serving client traffic takes
    /// [`Node::submit`] + [`Node::mine_pending`] (or the
    /// [pipeline](crate::node::pipeline)) instead, letting the mempool
    /// pick the batch by fee priority.
    ///
    /// # Errors
    ///
    /// Returns the miner's error, or a [`CoreError::BlockRejected`] if the
    /// assembled block unexpectedly fails structural chain checks.
    pub fn mine_and_append(
        &mut self,
        transactions: Vec<Transaction>,
    ) -> Result<MinedBlock, CoreError> {
        let miner = self.engine.clone();
        self.mine_and_append_with(miner.miner(), transactions)
    }

    /// Like [`Node::mine_and_append`] but with an explicit miner — the
    /// escape hatch for driving one node with several strategies (e.g.
    /// the interoperability tests alternating serial and parallel blocks).
    ///
    /// # Errors
    ///
    /// Same as [`Node::mine_and_append`].
    pub fn mine_and_append_with(
        &mut self,
        miner: &dyn Miner,
        transactions: Vec<Transaction>,
    ) -> Result<MinedBlock, CoreError> {
        self.ensure_fresh()?;
        let parent_hash = self.chain.head_hash();
        let number = self.chain.head().header.number + 1;
        let mined = miner.mine_on(&self.world, transactions, parent_hash, number)?;
        self.chain
            .append(mined.block.clone())
            .map_err(|e: ChainError| CoreError::rejected(e.to_string()))?;
        self.persist_block(&mined.block)?;
        Ok(mined)
    }

    /// Validates a block received from another node with the node's
    /// engine and appends it on success.
    ///
    /// # Errors
    ///
    /// Propagates the validator's rejection, or rejects blocks that do not
    /// extend this node's chain.
    ///
    /// A rejection may leave the world holding effects of the rejected
    /// block (validation mutates the world; see
    /// [`crate::validator::Validator`]), so the node conservatively
    /// marks itself stale on *any* validator rejection and every
    /// subsequent call fails fast — a real node discards that state and
    /// resynchronizes, and so must callers of this API (rebuild the node
    /// from a trusted world). Blocks turned away before the validator
    /// runs (wrong parent) do not stale the node.
    pub fn validate_and_append(&mut self, block: &Block) -> Result<ValidationReport, CoreError> {
        let engine = self.engine.clone();
        self.validate_and_append_with(engine.validator(), block)
    }

    /// Like [`Node::validate_and_append`] but with an explicit validator
    /// (e.g. a legacy replay validator for schedule-less blocks).
    ///
    /// # Errors
    ///
    /// Same as [`Node::validate_and_append`].
    pub fn validate_and_append_with(
        &mut self,
        validator: &dyn Validator,
        block: &Block,
    ) -> Result<ValidationReport, CoreError> {
        self.ensure_fresh()?;
        if block.header.parent_hash != self.chain.head_hash() {
            return Err(CoreError::rejected(
                "block does not extend this node's head",
            ));
        }
        let report = match validator.validate(&self.world, block) {
            Ok(report) => report,
            Err(err) => {
                // The replay already mutated this node's world; nothing
                // built on it can be trusted any more.
                self.stale = true;
                return Err(err);
            }
        };
        self.chain
            .append(block.clone())
            .map_err(|e| CoreError::rejected(e.to_string()))?;
        self.persist_block(block)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecutionStrategy;
    use cc_vm::testing::CounterContract;
    use cc_vm::{Address, ArgValue, CallData};
    use std::sync::Arc;

    fn fresh_world() -> World {
        let world = World::new();
        world.deploy(Arc::new(CounterContract::new(Address::from_name(
            "counter-node",
        ))));
        world
    }

    fn engine_node(threads: usize) -> Node {
        Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(threads))
            .build()
            .expect("valid config")
    }

    fn block_txs(base: u64, n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| {
                Transaction::new(
                    base + i,
                    Address::from_index(i),
                    Address::from_name("counter-node"),
                    CallData::new("increment", vec![ArgValue::Uint(1)]),
                    1_000_000,
                )
            })
            .collect()
    }

    #[test]
    fn miner_node_and_validator_node_stay_in_sync() {
        let mut miner_node = engine_node(3);
        let mut validator_node = engine_node(3);

        for block_number in 0..3u64 {
            let mined = miner_node
                .mine_and_append(block_txs(block_number * 100, 12))
                .unwrap();
            let report = validator_node.validate_and_append(&mined.block).unwrap();
            assert_eq!(report.state_root, mined.block.header.state_root);
        }
        assert_eq!(miner_node.chain().len(), 4);
        assert_eq!(validator_node.chain().len(), 4);
        assert_eq!(
            miner_node.world().state_root(),
            validator_node.world().state_root()
        );
        assert!(miner_node.chain().verify_structure());
    }

    #[test]
    fn validator_node_rejects_blocks_that_do_not_extend_its_head() {
        let mut miner_node = engine_node(2);
        let mut validator_node = engine_node(2);

        let first = miner_node.mine_and_append(block_txs(0, 4)).unwrap();
        let second = miner_node.mine_and_append(block_txs(100, 4)).unwrap();
        // Skipping the first block: the second does not extend genesis.
        let err = validator_node
            .validate_and_append(&second.block)
            .unwrap_err();
        assert!(err.to_string().contains("does not extend"));
        validator_node.validate_and_append(&first.block).unwrap();
        validator_node.validate_and_append(&second.block).unwrap();
    }

    #[test]
    fn rejected_validation_stales_the_node() {
        let mut miner_node = engine_node(2);
        let mut validator_node = engine_node(2);

        let mined = miner_node.mine_and_append(block_txs(0, 6)).unwrap();
        let mut forged = mined.block.clone();
        forged.header.state_root = cc_primitives::sha256(b"forged");
        assert!(validator_node.validate_and_append(&forged).is_err());
        assert!(validator_node.is_stale());

        // The replay mutated the validator's world; the node now refuses
        // all further work instead of silently diverging.
        let err = validator_node
            .validate_and_append(&mined.block)
            .unwrap_err();
        assert!(err.to_string().contains("stale"), "got: {err}");
        let err = validator_node
            .mine_and_append(block_txs(100, 2))
            .unwrap_err();
        assert!(err.to_string().contains("stale"), "got: {err}");

        // A wrong-parent rejection happens before the validator runs and
        // does not stale the node.
        let mut fresh = engine_node(2);
        let second = miner_node.mine_and_append(block_txs(100, 2)).unwrap();
        assert!(fresh.validate_and_append(&second.block).is_err());
        assert!(!fresh.is_stale());
        fresh.validate_and_append(&mined.block).unwrap();
        fresh.validate_and_append(&second.block).unwrap();
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cc-node-test-{}-{tag}", std::process::id()));
        p
    }

    #[test]
    fn durable_node_recovers_to_identical_state() {
        let dir = temp_dir("recover");
        std::fs::remove_dir_all(&dir).ok();
        let config = DurabilityConfig::new(&dir, DurabilityMode::Fsync).snapshot_interval(2);
        let mut node = Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            .durability(config.clone())
            .build()
            .unwrap();
        for block_number in 0..3u64 {
            node.mine_and_append(block_txs(block_number * 100, 8))
                .unwrap();
        }
        let head_hash = node.chain().head_hash();
        let world_bytes = node.world().snapshot().to_bytes();
        drop(node);

        let engine = EngineConfig::new().threads(2).build().unwrap();
        let recovered = Node::recover(config, fresh_world(), engine).unwrap();
        assert_eq!(recovered.chain().head_hash(), head_hash);
        assert_eq!(recovered.chain().len(), 4);
        assert_eq!(recovered.world().snapshot().to_bytes(), world_bytes);

        // The recovered node keeps working durably.
        let mut recovered = recovered;
        recovered.mine_and_append(block_txs(1000, 4)).unwrap();
        assert_eq!(recovered.chain().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_is_the_exit_from_a_staled_node() {
        let dir = temp_dir("stale-recover");
        std::fs::remove_dir_all(&dir).ok();
        let config = DurabilityConfig::new(&dir, DurabilityMode::Buffered);
        let mut miner_node = engine_node(2);
        let mut validator_node = Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            .durability(config.clone())
            .build()
            .unwrap();

        let first = miner_node.mine_and_append(block_txs(0, 6)).unwrap();
        validator_node.validate_and_append(&first.block).unwrap();

        let second = miner_node.mine_and_append(block_txs(100, 6)).unwrap();
        let mut forged = second.block.clone();
        forged.header.state_root = cc_primitives::sha256(b"forged");
        assert!(validator_node.validate_and_append(&forged).is_err());
        assert!(validator_node.is_stale());
        let err = validator_node
            .mine_and_append(block_txs(200, 2))
            .unwrap_err();
        assert!(err.to_string().contains("Node::recover"), "got: {err}");
        drop(validator_node);

        // Recovery rebuilds the pre-forgery state; the honest block then
        // validates cleanly.
        let engine = EngineConfig::new().threads(2).build().unwrap();
        let mut recovered = Node::recover(config, fresh_world(), engine).unwrap();
        assert_eq!(recovered.chain().head_hash(), first.block.hash());
        recovered.validate_and_append(&second.block).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_resumes_from_snapshot_when_wal_is_missing() {
        let dir = temp_dir("missing-wal");
        std::fs::remove_dir_all(&dir).ok();
        let config = DurabilityConfig::new(&dir, DurabilityMode::Fsync);
        let mut node = Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            .durability(config.clone())
            .build()
            .unwrap();
        node.mine_and_append(block_txs(0, 4)).unwrap();
        drop(node);

        // A snapshot without a wal.log is a legal directory state (the
        // log was reset and the file later removed); recovery resumes
        // from the snapshot alone and recreates the log.
        std::fs::remove_file(dir.join(WAL_FILE)).unwrap();
        let engine = EngineConfig::new().threads(2).build().unwrap();
        let mut recovered = Node::recover(config, fresh_world(), engine).unwrap();
        assert_eq!(
            recovered.chain().len(),
            1,
            "only the genesis snapshot survived"
        );
        recovered.mine_and_append(block_txs(0, 4)).unwrap();
        assert_eq!(recovered.chain().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_persistence_stales_the_node() {
        let dir = temp_dir("persist-fail");
        std::fs::remove_dir_all(&dir).ok();
        let config = DurabilityConfig::new(&dir, DurabilityMode::Buffered).snapshot_interval(1);
        let mut node = Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            .durability(config)
            .build()
            .unwrap();
        // Yank the durability directory out from under the node: the
        // WAL seal still reaches the (unlinked) open file, but the
        // snapshot due at interval 1 cannot be written.
        std::fs::remove_dir_all(&dir).unwrap();
        let err = node.mine_and_append(block_txs(0, 4)).unwrap_err();
        assert!(err.to_string().contains("durability"), "got: {err}");
        assert!(node.is_stale(), "failed persistence must stale the node");

        // The in-memory chain is ahead of durable state; the node fails
        // fast instead of serving blocks a crash would forget.
        let err = node.mine_and_append(block_txs(100, 2)).unwrap_err();
        assert!(err.to_string().contains("stale"), "got: {err}");
    }

    #[test]
    fn durability_off_creates_nothing() {
        let dir = temp_dir("off");
        std::fs::remove_dir_all(&dir).ok();
        let mut node = Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            .durability(DurabilityConfig::new(&dir, DurabilityMode::Off))
            .build()
            .unwrap();
        node.mine_and_append(block_txs(0, 4)).unwrap();
        assert!(!dir.exists(), "Off mode must not touch the filesystem");
    }

    #[test]
    fn recover_from_a_broken_directory_is_a_typed_error() {
        // A directory that never existed.
        let dir = temp_dir("no-such-dir");
        std::fs::remove_dir_all(&dir).ok();
        let config = DurabilityConfig::new(&dir, DurabilityMode::Buffered);
        let err = Node::recover(config, fresh_world(), Engine::default()).unwrap_err();
        assert!(matches!(err, CoreError::Durability { .. }), "got: {err}");

        // A directory whose snapshot is garbage: still a typed error,
        // never a panic.
        let dir = temp_dir("garbage-snapshot");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("snapshot-0.snap"), b"not a snapshot").unwrap();
        let config = DurabilityConfig::new(&dir, DurabilityMode::Buffered);
        let err = Node::recover(config, fresh_world(), Engine::default()).unwrap_err();
        assert!(matches!(err, CoreError::Durability { .. }), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_rejects_mismatched_initial_world() {
        let dir = temp_dir("wrong-world");
        std::fs::remove_dir_all(&dir).ok();
        let config = DurabilityConfig::new(&dir, DurabilityMode::Buffered);
        let mut node = Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            .durability(config.clone())
            .build()
            .unwrap();
        node.mine_and_append(block_txs(0, 4)).unwrap();
        drop(node);

        let err = Node::recover(config, World::new(), Engine::default()).unwrap_err();
        assert!(err.to_string().contains("genesis"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn builder_defaults_and_shared_engines() {
        // No world, no config: an empty world and the default engine.
        let node = Node::builder().build().unwrap();
        assert_eq!(node.engine().threads(), EngineConfig::DEFAULT_THREADS);
        assert_eq!(node.chain().len(), 1);

        // A bad config is rejected at build time.
        assert!(Node::builder()
            .config(EngineConfig::new().threads(0))
            .build()
            .is_err());

        // Two nodes can share one engine.
        let engine = Engine::serial();
        let mut a = Node::builder()
            .world(fresh_world())
            .engine(engine.clone())
            .build()
            .unwrap();
        let mut b = Node::builder()
            .world(fresh_world())
            .engine(engine)
            .build()
            .unwrap();
        assert_eq!(a.engine().strategy(), ExecutionStrategy::Serial);
        let mined = a.mine_and_append(block_txs(0, 5)).unwrap();
        b.validate_and_append(&mined.block).unwrap();
        assert_eq!(a.world().state_root(), b.world().state_root());
    }

    #[test]
    fn explicit_miner_and_validator_escape_hatches() {
        let mut node = engine_node(2);
        let serial = Engine::serial();
        let mined = node
            .mine_and_append_with(serial.miner(), block_txs(0, 6))
            .unwrap();
        assert_eq!(mined.stats.threads, 1);
        // The serially-mined block has no lock profiles, so replaying it
        // with the node's strict fork-join validator fails — the lenient
        // one accepts it.
        let lenient = Engine::builder().check_traces(false).build().unwrap();
        // Note the fresh node per attempt: a rejected validation leaves
        // the world in an unspecified state, so it must be discarded.
        assert!(engine_node(2).validate_and_append(&mined.block).is_err());
        engine_node(2)
            .validate_and_append_with(lenient.validator(), &mined.block)
            .unwrap();
    }
}
