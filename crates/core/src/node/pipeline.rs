//! Pipelined block production: overlap mining with durable persistence.
//!
//! Sequential production ([`Node::mine_pending`]) runs every stage of a
//! block back to back, so with durability on, the WAL seal — and in
//! [`cc_ledger::wal::DurabilityMode::Fsync`] mode the fsync — sits on
//! the critical path of every block:
//!
//! ```text
//!   sequential:  [assemble N][mine N][seal+fsync N][assemble N+1][mine N+1][seal+fsync N+1]
//!
//!   pipelined:   [assemble N][mine N][assemble N+1][mine N+1][assemble N+2] …   (production stage)
//!                                    [seal+fsync N]          [seal+fsync N+1]   (durability stage)
//! ```
//!
//! [`Node::run_pipeline`] keeps block *assembly* (draining the mempool)
//! and *mining* (speculative execution on the engine) on the calling
//! thread, and moves the WAL seal to a dedicated durability worker.
//! While the worker fsyncs block N, the caller is already assembling and
//! mining block N+1. The stages are joined by a **bounded hand-off
//! channel** ([`PipelineConfig::max_in_flight`]): when the durability
//! stage falls behind, the hand-off blocks and production stops
//! speculating further ahead — back-pressure, not unbounded queueing.
//!
//! # Invariants
//!
//! * **In-order commit.** A single worker seals blocks in hand-off
//!   order, so the durable prefix is always a chain prefix; seal
//!   acknowledgements arrive in block order.
//! * **Bounded speculation.** At most `max_in_flight` blocks are mined
//!   but not yet durable. The in-memory chain may run ahead of the WAL
//!   by at most that many blocks.
//! * **Stale on persist failure** (the PR 8 invariant, preserved). If a
//!   seal fails, the node marks itself stale, *truncates the in-memory
//!   chain back to the last durable block* — discarding mined-but-
//!   unpersisted successors instead of advertising blocks a crash would
//!   forget — and returns the failure. [`Node::recover`] is the exit.
//! * **Quiesced snapshots.** Periodic snapshots serialize the world, so
//!   the pipeline drains all in-flight seals (a barrier) before
//!   snapshotting on the production thread; the WAL reset therefore
//!   never races an in-flight seal.
//!
//! With pipelining, WAL records of block N+1's transactions may be
//! flushed by block N's group commit (the log is shared). That is
//! harmless: recovery replays *sealed blocks* only, so unsealed tail
//! records are ignored exactly as in the sequential path.

use super::Node;
use crate::error::CoreError;
use crate::miner::Miner;
use cc_ledger::Block;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Tuning for [`Node::run_pipeline`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    gas_limit: u64,
    max_in_flight: usize,
}

impl PipelineConfig {
    /// Default bound on mined-but-not-yet-durable blocks.
    pub const DEFAULT_MAX_IN_FLIGHT: usize = 2;

    /// A pipeline assembling blocks of at most `gas_limit` total gas
    /// (see [`cc_mempool::Mempool::build_block`]).
    pub fn new(gas_limit: u64) -> Self {
        PipelineConfig {
            gas_limit,
            max_in_flight: Self::DEFAULT_MAX_IN_FLIGHT,
        }
    }

    /// Sets how many blocks may be mined but not yet durable (clamped to
    /// at least 1). Raising this deepens the pipeline without changing
    /// its output; it only moves the back-pressure point.
    pub fn max_in_flight(mut self, depth: usize) -> Self {
        self.max_in_flight = depth.max(1);
        self
    }

    /// The per-block gas budget.
    pub fn gas_limit(&self) -> u64 {
        self.gas_limit
    }
}

/// What a pipeline run produced (see [`Node::run_pipeline`]).
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Blocks mined, appended and made durable.
    pub blocks: u64,
    /// Transactions across those blocks.
    pub transactions: usize,
    /// Periodic snapshots written (each one a pipeline barrier).
    pub snapshots: u64,
    /// Time the production stage spent blocked handing blocks to the
    /// durability stage (back-pressure) or draining it (snapshot
    /// barriers, final drain). The sequential path would have spent at
    /// least this long sealing inline; a small value with durability on
    /// means the fsyncs hid behind mining almost entirely.
    pub stalled: Duration,
}

/// A seal acknowledgement from the durability worker: block number plus
/// the seal outcome (`io::Error` rendered, it is not `Clone`).
type SealAck = (u64, Result<(), String>);

impl Node {
    /// Produces blocks from the mempool until no transaction is ready,
    /// overlapping each block's WAL seal/fsync with the mining of the
    /// next (see the [module docs](self) for the stage diagram and
    /// invariants). Returns once every produced block is durable.
    ///
    /// The chain, world and durable artifacts are **byte-identical** to
    /// what the same submissions produce through sequential
    /// [`Node::mine_pending`] calls with the same gas limit — the
    /// pipeline reorders work against the wall clock, never against the
    /// chain. (Only difference: an empty pool here produces no block
    /// rather than an empty one.) Without durability there is nothing to
    /// overlap and the loop degenerates to sequential production.
    ///
    /// # Errors
    ///
    /// Mining errors propagate as in [`Node::mine_and_append`]. A seal
    /// or snapshot failure stales the node, rolls the in-memory chain
    /// back to the durable prefix, and surfaces as
    /// [`CoreError::Durability`]; transactions of discarded blocks are
    /// not returned to the mempool (recovery re-serves from the WAL).
    pub fn run_pipeline(&mut self, config: &PipelineConfig) -> Result<PipelineReport, CoreError> {
        self.ensure_fresh()?;
        let engine = self.engine.clone();
        let miner = engine.miner();
        let mut report = PipelineReport::default();

        let Some(state) = &self.durability else {
            // Nothing to overlap: assemble and mine on this thread.
            loop {
                let batch = self.mempool.build_block(config.gas_limit);
                if batch.is_empty() {
                    return Ok(report);
                }
                report.transactions += batch.len();
                report.blocks += 1;
                self.mine_next(miner, batch)?;
            }
        };

        let wal = state.wal.clone();
        let snapshot_interval = state.config.snapshot_interval;
        let (work_tx, work_rx) = mpsc::sync_channel::<Block>(config.max_in_flight.max(1) - 1);
        let (ack_tx, ack_rx) = mpsc::channel::<SealAck>();
        let worker = thread::Builder::new()
            .name("cc-durability".into())
            .spawn(move || {
                // In-order commit: one worker, FIFO channel. Stop at the
                // first failure — later seals would lie about durability.
                for block in work_rx {
                    let number = block.header.number;
                    let sealed = wal.seal_block(&block).map_err(|e| e.to_string());
                    let failed = sealed.is_err();
                    if ack_tx.send((number, sealed)).is_err() || failed {
                        return;
                    }
                }
            })
            .expect("spawn durability worker");

        // Everything at or below `durable` is safe against a crash. The
        // run starts from a fully persisted head (the node is fresh).
        let mut durable = self.chain.head().header.number;
        let mut in_flight = 0u64;
        let mut failure: Option<String> = None;

        let absorb = |acks: &mut dyn Iterator<Item = SealAck>,
                      durable: &mut u64,
                      in_flight: &mut u64,
                      failure: &mut Option<String>| {
            for (number, sealed) in acks {
                *in_flight -= 1;
                match sealed {
                    Ok(()) => *durable = number,
                    Err(reason) => {
                        *failure = Some(format!("sealing block {number} failed: {reason}"));
                        break;
                    }
                }
            }
        };

        let outcome = loop {
            // Collect whatever the durability stage finished meanwhile.
            absorb(
                &mut ack_rx.try_iter(),
                &mut durable,
                &mut in_flight,
                &mut failure,
            );
            if failure.is_some() {
                break Ok(());
            }
            let batch = self.mempool.build_block(config.gas_limit);
            if batch.is_empty() {
                break Ok(());
            }
            report.transactions += batch.len();
            report.blocks += 1;
            let block = match self.mine_next(miner, batch) {
                Ok(block) => block,
                Err(e) => break Err(e),
            };
            let number = block.header.number;

            // Hand off to the durability stage; a full channel is the
            // back-pressure point. A closed channel means the worker hit
            // a failure whose ack is (or will be) in ack_rx.
            let handoff = Instant::now();
            if work_tx.send(block).is_ok() {
                in_flight += 1;
            }
            report.stalled += handoff.elapsed();

            if number.is_multiple_of(snapshot_interval) {
                // Snapshot barrier: drain the durability stage, then
                // serialize the quiesced world and reset the WAL.
                let drain = Instant::now();
                absorb(
                    &mut ack_rx.iter().take(in_flight as usize),
                    &mut durable,
                    &mut in_flight,
                    &mut failure,
                );
                report.stalled += drain.elapsed();
                if failure.is_some() {
                    break Ok(());
                }
                if let Err(e) = self.write_snapshot() {
                    break Err(e);
                }
                report.snapshots += 1;
            }
        };

        // Final drain: close the hand-off, absorb outstanding acks, join.
        drop(work_tx);
        let drain = Instant::now();
        absorb(
            &mut ack_rx.iter(),
            &mut durable,
            &mut in_flight,
            &mut failure,
        );
        report.stalled += drain.elapsed();
        worker.join().expect("durability worker panicked");

        match (outcome, failure) {
            (Err(e), _) => {
                // Mining/snapshot error. A snapshot failure leaves the
                // node ahead of durable state exactly like a failed seal.
                self.stale = true;
                self.chain.truncate_to(durable);
                Err(e)
            }
            (Ok(()), Some(reason)) => {
                // The PR 8 invariant, pipelined: never let the in-memory
                // chain advertise blocks the WAL cannot recover.
                self.stale = true;
                self.chain.truncate_to(durable);
                Err(CoreError::durability(reason))
            }
            (Ok(()), None) => {
                debug_assert_eq!(durable, self.chain.head().header.number);
                Ok(report)
            }
        }
    }

    /// Mines `batch` on the current head and appends it (the production
    /// stage of the pipeline: everything but persistence).
    fn mine_next(
        &mut self,
        miner: &dyn Miner,
        batch: Vec<cc_ledger::Transaction>,
    ) -> Result<Block, CoreError> {
        let parent_hash = self.chain.head_hash();
        let number = self.chain.head().header.number + 1;
        let mined = miner.mine_on(&self.world, batch, parent_hash, number)?;
        self.chain
            .append(mined.block.clone())
            .map_err(|e| CoreError::rejected(e.to_string()))?;
        Ok(mined.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::node::DurabilityConfig;
    use cc_ledger::wal::DurabilityMode;
    use cc_ledger::Transaction;
    use cc_vm::testing::CounterContract;
    use cc_vm::{Address, ArgValue, CallData, World};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn fresh_world() -> World {
        let world = World::new();
        world.deploy(Arc::new(CounterContract::new(Address::from_name(
            "counter-pipe",
        ))));
        world
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cc-pipeline-test-{}-{tag}", std::process::id()));
        p
    }

    fn submit_traffic(node: &Node, senders: u64, per_sender: u64) {
        for sender in 0..senders {
            for nonce in 0..per_sender {
                let tx = Transaction::new(
                    nonce,
                    Address::from_index(sender),
                    Address::from_name("counter-pipe"),
                    CallData::new("increment", vec![ArgValue::Uint(1)]),
                    100_000,
                )
                .priority_fee(sender + nonce);
                node.submit(tx).unwrap();
            }
        }
    }

    #[test]
    fn pipeline_drains_the_pool_into_durable_blocks() {
        let dir = temp_dir("drain");
        std::fs::remove_dir_all(&dir).ok();
        let mut node = Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            .durability(DurabilityConfig::new(&dir, DurabilityMode::Buffered).snapshot_interval(2))
            .build()
            .unwrap();
        submit_traffic(&node, 6, 2);
        // 12 txs at 100k gas, 400k per block => 3 blocks.
        let report = node.run_pipeline(&PipelineConfig::new(400_000)).unwrap();
        assert_eq!(report.blocks, 3);
        assert_eq!(report.transactions, 12);
        assert_eq!(report.snapshots, 1, "block 2 hits the interval");
        assert!(node.mempool().is_empty());
        assert_eq!(node.chain().len(), 4);
        assert!(node.chain().verify_structure());

        // Everything the pipeline produced is recoverable.
        let config = DurabilityConfig::new(&dir, DurabilityMode::Buffered);
        let engine = EngineConfig::new().threads(2).build().unwrap();
        let head = node.chain().head_hash();
        drop(node);
        let recovered = Node::recover(config, fresh_world(), engine).unwrap();
        assert_eq!(recovered.chain().head_hash(), head);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pipeline_without_durability_is_plain_sequential_production() {
        let mut node = Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            .build()
            .unwrap();
        submit_traffic(&node, 4, 1);
        let report = node.run_pipeline(&PipelineConfig::new(200_000)).unwrap();
        assert_eq!(report.blocks, 2);
        assert_eq!(report.snapshots, 0);
        assert_eq!(node.chain().len(), 3);
    }

    #[test]
    fn empty_pool_produces_no_blocks() {
        let mut node = Node::builder().world(fresh_world()).build().unwrap();
        let report = node.run_pipeline(&PipelineConfig::new(1_000_000)).unwrap();
        assert_eq!(report.blocks, 0);
        assert_eq!(node.chain().len(), 1);
    }

    #[test]
    fn seal_failure_stales_and_rolls_back_to_the_durable_prefix() {
        let dir = temp_dir("seal-fail");
        std::fs::remove_dir_all(&dir).ok();
        let mut node = Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            // Interval past the run: no snapshot resets the failure arm.
            .durability(DurabilityConfig::new(&dir, DurabilityMode::Fsync).snapshot_interval(100))
            .build()
            .unwrap();
        submit_traffic(&node, 8, 2);
        // Two seals succeed (blocks 1 and 2), the third fails mid-run.
        node.wal().unwrap().inject_seal_failures(2);
        let err = node
            .run_pipeline(&PipelineConfig::new(400_000))
            .unwrap_err();
        assert!(err.to_string().contains("sealing block 3"), "got: {err}");
        assert!(node.is_stale());
        assert_eq!(
            node.chain().head().header.number,
            2,
            "chain rolled back to the durable prefix"
        );
        // Stale node refuses further pipelining.
        assert!(node.run_pipeline(&PipelineConfig::new(400_000)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
