//! Speculative pending states: validate block N+1 against block N's
//! still-uncommitted post-state.
//!
//! Sequential validation ([`crate::node::Node::validate_and_append`])
//! runs every stage of a block back to back, so the WAL seal of block N
//! gates the replay of block N+1. A [`PendingChain`] breaks that chain:
//! it replays each incoming block's transactions as optimistic
//! multi-version transactions (see `cc_mvcc`), leaving the installed
//! versions in place as a **pending overlay** stacked above the base
//! state instead of flattening them. The next block's replay reads
//! *through* that overlay — its snapshot sees the predecessor's
//! uncommitted post-state — so validation of N+1 can proceed while N is
//! still being sealed.
//!
//! Each pending block records a **boundary**: the oracle's newest commit
//! timestamp when its replay finished. Every version the block installed
//! is at or below its boundary and above its predecessor's, which makes
//! the overlay algebra exact:
//!
//! * [`PendingChain::commit`] flattens the *oldest* overlay into the
//!   base ([`cc_mvcc::MvccRuntime::finalize_below`] at its boundary) and
//!   only then checks the block's state root — roots read the base, so
//!   the check is deferred to commit time.
//! * [`PendingChain::discard`] drops a pending block *and every pending
//!   descendant* ([`cc_mvcc::MvccRuntime::discard_above`] at the
//!   predecessor's boundary) without touching the base — the rollback
//!   path when a block fails validation or its seal fails.
//!
//! # Invariants
//!
//! * **In-order commit.** Only the oldest pending block can commit; the
//!   base always holds a chain-prefix state.
//! * **Bounded speculation.** At most `max_in_flight` overlays exist at
//!   once; [`PendingChain::speculate`] refuses further blocks until one
//!   commits or is discarded.
//! * **Exclusive use.** Speculation, commit and discard reshape the
//!   version lists and must not run concurrently with other execution on
//!   the same world; in particular, MVCC garbage collection
//!   ([`cc_mvcc::MvccRuntime::collect`]) would merge overlay versions
//!   across boundaries and must not run while overlays are pending.
//!   The follower pipeline drives the world from one thread, which
//!   satisfies both.
//!
//! A block caught *before* its versions reach the base (a speculate-time
//! rejection) leaves the trusted state intact: the partial overlay is
//! discarded and earlier pending blocks remain committable. A block
//! caught *at* commit (a forged state root) has already polluted the
//! base; the caller must treat the world as stale, exactly like a
//! rejected [`crate::node::Node::validate_and_append`].

use crate::error::CoreError;
use crate::schedule::HappensBeforeGraph;
use crate::validator::checks::trace_check_reasons;
use crate::validator::receipt_mismatches;
use cc_ledger::Block;
use cc_mvcc::Timestamp;
use cc_primitives::hash::Hash256;
use cc_stm::{LockId, LockMode};
use cc_vm::{Receipt, TxnRef, World};
use std::collections::{BTreeMap, VecDeque};

/// One speculatively validated block awaiting commit.
#[derive(Debug)]
struct PendingEntry {
    block: Block,
    hash: Hash256,
    /// Newest commit timestamp of the block's replay; every version the
    /// block installed is at or below it (and above the predecessor's).
    boundary: Timestamp,
}

/// A read-only view of one pending block (see
/// [`PendingChain::pending_state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingState {
    /// The pending block's hash.
    pub hash: Hash256,
    /// The pending block's number.
    pub number: u64,
    /// Transactions the block carries.
    pub transactions: usize,
    /// Position in the pending queue: 1 is the oldest (next to commit).
    pub depth: usize,
}

/// The bounded queue of speculative pending states over one world. See
/// the [module docs](self) for the overlay model and invariants.
#[derive(Debug)]
pub struct PendingChain<'w> {
    world: &'w World,
    max_in_flight: usize,
    check_traces: bool,
    /// Hash of the last *committed* block — what the base state answers
    /// for.
    committed_hash: Hash256,
    /// Boundary of the committed base: versions at or below it have been
    /// flattened (or never existed).
    base_boundary: Timestamp,
    entries: VecDeque<PendingEntry>,
}

impl<'w> PendingChain<'w> {
    /// Creates a pending chain over `world`, whose base state is the
    /// post-state of the block `head_hash`, holding at most
    /// `max_in_flight` pending overlays (clamped to at least 1).
    pub fn new(world: &'w World, head_hash: Hash256, max_in_flight: usize) -> Self {
        PendingChain {
            world,
            max_in_flight: max_in_flight.max(1),
            check_traces: true,
            committed_hash: head_hash,
            base_boundary: world.mvcc().oracle().latest(),
            entries: VecDeque::new(),
        }
    }

    /// Enables or disables the lock-trace and hidden-race checks during
    /// speculation. Disable them for schedule-less (serially mined)
    /// blocks, mirroring [`crate::validator::ParallelValidator`]'s
    /// ablation mode.
    pub fn with_trace_checks(mut self, check: bool) -> Self {
        self.check_traces = check;
        self
    }

    /// Number of pending (speculated, uncommitted) blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no block is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the chain holds `max_in_flight` overlays and must commit
    /// or discard before speculating further.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.max_in_flight
    }

    /// Hash of the newest pending block (the speculation point), or of
    /// the committed head when nothing is pending.
    pub fn tip_hash(&self) -> Hash256 {
        self.entries
            .back()
            .map(|e| e.hash)
            .unwrap_or(self.committed_hash)
    }

    /// Hash of the last committed block (what the base state reflects).
    pub fn committed_hash(&self) -> Hash256 {
        self.committed_hash
    }

    /// Hash of the oldest pending block — the only one
    /// [`PendingChain::commit`] accepts — or `None` when nothing is
    /// pending.
    pub fn oldest_hash(&self) -> Option<Hash256> {
        self.entries.front().map(|e| e.hash)
    }

    /// The pending block `hash`, if any.
    pub fn pending_state(&self, hash: &Hash256) -> Option<PendingState> {
        self.entries
            .iter()
            .position(|e| e.hash == *hash)
            .map(|pos| {
                let entry = &self.entries[pos];
                PendingState {
                    hash: entry.hash,
                    number: entry.block.header.number,
                    transactions: entry.block.transactions.len(),
                    depth: pos + 1,
                }
            })
    }

    /// Boundary the next speculation's rollback would cut back to: the
    /// newest pending boundary, or the base when nothing is pending.
    fn tip_boundary(&self) -> Timestamp {
        self.entries
            .back()
            .map(|e| e.boundary)
            .unwrap_or(self.base_boundary)
    }

    /// Speculatively validates `block` on top of the pending state
    /// `prev` (which must be the current tip) and, on success, parks it
    /// as a new pending overlay. Returns the block's hash — the handle
    /// for [`PendingChain::pending_state`], [`PendingChain::commit`] and
    /// [`PendingChain::discard`].
    ///
    /// Replay runs the transactions one at a time in the published
    /// serial order (block order for schedule-less blocks) as optimistic
    /// multi-version transactions, then checks everything that does not
    /// require the flattened base: well-formedness, parent linkage,
    /// receipts, and (unless disabled) the lock traces and hidden-race
    /// freedom of the published schedule. The state root is checked at
    /// [`PendingChain::commit`], where the base exists to hash.
    ///
    /// # Errors
    ///
    /// [`CoreError::BlockRejected`] when the chain is full, `prev` is
    /// not the tip, the block does not link, or replay contradicts the
    /// block's commitments; [`CoreError::MissingSchedule`] /
    /// [`CoreError::MalformedSchedule`] when trace checks are on and the
    /// schedule cannot be replayed. A rejection discards the partial
    /// overlay: the already-pending predecessors stay committable and
    /// the base is untouched.
    pub fn speculate(&mut self, prev: Hash256, block: &Block) -> Result<Hash256, CoreError> {
        if self.is_full() {
            return Err(CoreError::rejected(format!(
                "pending chain is full ({} blocks in flight); commit or discard before speculating further",
                self.entries.len()
            )));
        }
        if prev != self.tip_hash() {
            return Err(CoreError::rejected(
                "speculation must extend the pending tip",
            ));
        }
        if block.header.parent_hash != prev {
            return Err(CoreError::rejected("block does not extend the pending tip"));
        }
        if !block.is_well_formed() {
            return Err(CoreError::rejected(
                "block commitments do not match its body",
            ));
        }

        let n = block.transactions.len();
        let (schedule, graph) = if self.check_traces {
            let schedule = block.schedule.as_ref().ok_or(CoreError::MissingSchedule)?;
            let graph = HappensBeforeGraph::from_metadata(schedule, n)?;
            (Some(schedule), Some(graph))
        } else {
            (None, None)
        };

        // Replay in the published serial order when present (the
        // serialization the block's receipts and state commit to);
        // otherwise plain block order.
        let order: Vec<usize> = match &block.schedule {
            Some(schedule) if schedule.serial_order.len() == n => schedule.serial_order.clone(),
            _ => (0..n).collect(),
        };

        let rollback = self.tip_boundary();
        let runtime = self.world.mvcc();
        let mut replayed: Vec<Option<Receipt>> = vec![None; n];
        let mut traces: Vec<BTreeMap<LockId, LockMode>> = vec![BTreeMap::new(); n];
        for &index in &order {
            let tx = &block.transactions[index];
            let txn = runtime.begin();
            let receipt = match self.world.execute_in(
                TxnRef::Mvcc(&txn),
                index,
                tx.msg(),
                tx.to,
                &tx.call,
                tx.gas_limit,
            ) {
                Ok(receipt) => receipt,
                Err(e) => {
                    // Unreachable for the optimistic seam (it raises no
                    // speculative errors); kept as a guarded exit.
                    let _ = txn.abort();
                    runtime.discard_above(rollback);
                    return Err(CoreError::rejected(format!(
                        "replay of transaction {index} failed: {e}"
                    )));
                }
            };
            match txn.commit() {
                Ok(commit) => {
                    // One transaction at a time from a fresh snapshot:
                    // first-committer-wins has nobody to lose to. The
                    // footprint already carries the strongest mode per
                    // lock, exactly what the trace checks compare.
                    traces[index] = commit.footprint.into_iter().collect();
                    replayed[index] = Some(receipt);
                }
                Err(e) => {
                    runtime.discard_above(rollback);
                    return Err(CoreError::rejected(format!(
                        "replay of transaction {index} failed: {e}"
                    )));
                }
            }
        }
        let replayed: Vec<Receipt> = match replayed
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.ok_or_else(|| {
                    CoreError::rejected(format!(
                        "transaction {i} missing from the published serial order"
                    ))
                })
            })
            .collect()
        {
            Ok(receipts) => receipts,
            Err(e) => {
                runtime.discard_above(rollback);
                return Err(e);
            }
        };

        let mut reasons = match (schedule, &graph) {
            (Some(schedule), Some(graph)) => trace_check_reasons(schedule, graph, &traces),
            _ => Vec::new(),
        };
        reasons.extend(receipt_mismatches(&block.receipts, &replayed));
        if !reasons.is_empty() {
            runtime.discard_above(rollback);
            return Err(CoreError::BlockRejected { reasons });
        }

        let hash = block.hash();
        self.entries.push_back(PendingEntry {
            block: block.clone(),
            hash,
            boundary: runtime.oracle().latest(),
        });
        Ok(hash)
    }

    /// Commits the **oldest** pending block (which must be `hash`):
    /// flattens its overlay into the base state, then checks the block's
    /// state root against the freshly flattened base. Returns the
    /// committed block for the caller to append/seal.
    ///
    /// # Errors
    ///
    /// [`CoreError::BlockRejected`] when `hash` is not the oldest
    /// pending block (commits are in-order), or when the flattened state
    /// root contradicts the block's commitment. A root mismatch has
    /// already polluted the base: every pending descendant is discarded
    /// and the caller must treat the world as stale.
    pub fn commit(&mut self, hash: &Hash256) -> Result<Block, CoreError> {
        let Some(oldest) = self.entries.front() else {
            return Err(CoreError::rejected("no block is pending"));
        };
        if oldest.hash != *hash {
            return Err(CoreError::rejected(format!(
                "pending blocks commit in order: expected block {}, not {hash}",
                oldest.hash
            )));
        }
        let entry = self.entries.pop_front().expect("front exists");
        let runtime = self.world.mvcc();
        runtime.finalize_below(entry.boundary);
        let state_root = self.world.state_root();
        if state_root != entry.block.header.state_root {
            // The bad block's effects are in the base now; nothing built
            // on them can be trusted. Drop every pending descendant and
            // report — the caller stales the node.
            runtime.discard_above(entry.boundary);
            self.entries.clear();
            return Err(CoreError::BlockRejected {
                reasons: vec![format!(
                    "state root mismatch: block commits to {}, replay produced {}",
                    entry.block.header.state_root, state_root
                )],
            });
        }
        self.committed_hash = entry.hash;
        self.base_boundary = entry.boundary;
        Ok(entry.block)
    }

    /// Discards the pending block `hash` **and every pending descendant**,
    /// rolling the versioned state back to the predecessor's boundary.
    /// The base state is untouched; earlier pending blocks stay
    /// committable and speculation can resume from the new tip. Returns
    /// the discarded blocks, oldest first.
    ///
    /// # Errors
    ///
    /// [`CoreError::BlockRejected`] when `hash` is not pending.
    pub fn discard(&mut self, hash: &Hash256) -> Result<Vec<Block>, CoreError> {
        let Some(pos) = self.entries.iter().position(|e| e.hash == *hash) else {
            return Err(CoreError::rejected(format!("block {hash} is not pending")));
        };
        let rollback = match pos {
            0 => self.base_boundary,
            _ => self.entries[pos - 1].boundary,
        };
        self.world.mvcc().discard_above(rollback);
        Ok(self.entries.drain(pos..).map(|e| e.block).collect())
    }

    /// Discards every pending block (see [`PendingChain::discard`]).
    /// Returns the discarded blocks, oldest first; empty when nothing
    /// was pending.
    pub fn discard_all(&mut self) -> Vec<Block> {
        match self.entries.front().map(|e| e.hash) {
            Some(oldest) => self.discard(&oldest).expect("oldest is pending"),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::node::Node;
    use cc_ledger::Transaction;
    use cc_vm::testing::CounterContract;
    use cc_vm::{Address, ArgValue, CallData};
    use std::sync::Arc;

    fn fresh_world() -> World {
        let world = World::new();
        world.deploy(Arc::new(CounterContract::new(Address::from_name(
            "counter-pending",
        ))));
        world
    }

    fn block_txs(base: u64, n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| {
                Transaction::new(
                    base + i,
                    Address::from_index(i % 3),
                    Address::from_name("counter-pending"),
                    CallData::new("increment", vec![ArgValue::Uint(1)]),
                    1_000_000,
                )
            })
            .collect()
    }

    /// Three blocks mined by a speculative-STM producer.
    fn mined_blocks() -> (Node, Vec<Block>) {
        let mut producer = Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            .build()
            .unwrap();
        let blocks = (0..3u64)
            .map(|i| {
                producer
                    .mine_and_append(block_txs(i * 100, 6))
                    .unwrap()
                    .block
            })
            .collect();
        (producer, blocks)
    }

    #[test]
    fn speculate_then_commit_in_order_reaches_the_producer_state() {
        let (producer, blocks) = mined_blocks();
        let world = fresh_world();
        let mut pending = PendingChain::new(&world, blocks[0].header.parent_hash, 3);

        // All three blocks validate before any of them commits: block 2
        // replays against block 1's uncommitted overlay, and so on.
        let mut prev = pending.tip_hash();
        let hashes: Vec<Hash256> = blocks
            .iter()
            .map(|block| {
                let hash = pending.speculate(prev, block).unwrap();
                prev = hash;
                hash
            })
            .collect();
        assert_eq!(pending.len(), 3);
        assert!(pending.is_full());
        assert_eq!(
            pending.pending_state(&hashes[1]),
            Some(PendingState {
                hash: hashes[1],
                number: 2,
                transactions: 6,
                depth: 2,
            })
        );
        // The base still answers for genesis while all blocks are
        // pending.
        assert_ne!(world.state_root(), blocks[0].header.state_root);

        for (hash, block) in hashes.iter().zip(&blocks) {
            let committed = pending.commit(hash).unwrap();
            assert_eq!(committed.hash(), *hash);
            assert_eq!(world.state_root(), block.header.state_root);
            assert_eq!(pending.committed_hash(), *hash);
        }
        assert!(pending.is_empty());
        assert_eq!(world.state_root(), producer.world().state_root());
    }

    #[test]
    fn misuse_is_rejected_without_corrupting_pending_blocks() {
        let (_, blocks) = mined_blocks();
        let world = fresh_world();
        let mut pending = PendingChain::new(&world, blocks[0].header.parent_hash, 2);

        let first = pending.speculate(pending.tip_hash(), &blocks[0]).unwrap();
        // Wrong prev: block 2 does not sit on block 0's parent.
        let err = pending
            .speculate(blocks[0].header.parent_hash, &blocks[1])
            .unwrap_err();
        assert!(err.to_string().contains("tip"), "got: {err}");
        let second = pending.speculate(first, &blocks[1]).unwrap();
        // Full at max_in_flight = 2.
        let err = pending.speculate(second, &blocks[2]).unwrap_err();
        assert!(err.to_string().contains("full"), "got: {err}");
        // Commits are in-order only.
        let err = pending.commit(&second).unwrap_err();
        assert!(err.to_string().contains("in order"), "got: {err}");
        // Unknown hashes are not pending.
        assert!(pending.pending_state(&Hash256::ZERO).is_none());
        assert!(pending.discard(&Hash256::ZERO).is_err());

        // Nothing above was corrupted: the queue drains normally.
        pending.commit(&first).unwrap();
        pending.commit(&second).unwrap();
        assert_eq!(world.state_root(), blocks[1].header.state_root);
    }

    #[test]
    fn discard_drops_the_block_and_all_descendants() {
        let (_, blocks) = mined_blocks();
        let world = fresh_world();
        let mut pending = PendingChain::new(&world, blocks[0].header.parent_hash, 3);

        let first = pending.speculate(pending.tip_hash(), &blocks[0]).unwrap();
        let second = pending.speculate(first, &blocks[1]).unwrap();
        let third = pending.speculate(second, &blocks[2]).unwrap();

        let dropped = pending.discard(&second).unwrap();
        assert_eq!(
            dropped.iter().map(Block::hash).collect::<Vec<_>>(),
            vec![second, third],
            "the block and its descendant fall together"
        );
        assert_eq!(pending.len(), 1);
        assert_eq!(pending.tip_hash(), first);

        // The surviving prefix is intact: re-speculate the discarded
        // blocks and drain — byte-identical post-state.
        let second = pending.speculate(first, &blocks[1]).unwrap();
        let third = pending.speculate(second, &blocks[2]).unwrap();
        for hash in [first, second, third] {
            pending.commit(&hash).unwrap();
        }
        assert_eq!(world.state_root(), blocks[2].header.state_root);
    }

    #[test]
    fn speculate_time_rejection_keeps_the_base_trusted() {
        let (_, blocks) = mined_blocks();
        let world = fresh_world();
        let mut pending = PendingChain::new(&world, blocks[0].header.parent_hash, 3);
        let first = pending.speculate(pending.tip_hash(), &blocks[0]).unwrap();

        // Tamper with a receipt and re-commit the body so the block
        // stays well-formed; the replayed receipts then contradict it.
        let mut tampered = blocks[1].clone();
        tampered.receipts[2].gas_used += 1;
        let rebuilt = Block::build(
            tampered.header.parent_hash,
            tampered.header.number,
            tampered.transactions.clone(),
            tampered.receipts.clone(),
            tampered.header.state_root,
            tampered.schedule.clone(),
        );
        let err = pending.speculate(first, &rebuilt).unwrap_err();
        assert!(err.to_string().contains("receipt"), "got: {err}");

        // The partial overlay was discarded: the honest block still
        // validates and the whole chain drains to the honest state.
        let second = pending.speculate(first, &blocks[1]).unwrap();
        pending.commit(&first).unwrap();
        pending.commit(&second).unwrap();
        assert_eq!(world.state_root(), blocks[1].header.state_root);
    }

    #[test]
    fn forged_state_root_is_caught_at_commit_and_drops_descendants() {
        let (_, blocks) = mined_blocks();
        let world = fresh_world();
        let mut pending = PendingChain::new(&world, blocks[0].header.parent_hash, 3);

        // A forged state root passes every speculate-time check (the
        // body and receipts are honest) and must be caught when the
        // overlay flattens.
        let mut forged = blocks[0].clone();
        forged.header.state_root = cc_primitives::sha256(b"forged");
        let first = pending.speculate(pending.tip_hash(), &forged).unwrap();
        // Its descendant links to the forged header.
        let mut child = blocks[1].clone();
        child.header.parent_hash = forged.hash();
        let second = pending.speculate(first, &child).unwrap();
        assert_eq!(pending.len(), 2);

        let err = pending.commit(&first).unwrap_err();
        assert!(err.to_string().contains("state root"), "got: {err}");
        assert!(
            pending.is_empty(),
            "descendants of the bad block are discarded"
        );
        assert!(pending.pending_state(&second).is_none());
    }

    #[test]
    fn schedule_less_blocks_need_trace_checks_off() {
        let mut producer = Node::builder()
            .world(fresh_world())
            .engine(crate::engine::Engine::serial())
            .build()
            .unwrap();
        let block = producer.mine_and_append(block_txs(0, 5)).unwrap().block;

        // A serially-mined block publishes a sequential schedule with no
        // lock profiles; strict trace checks must reject it, mirroring
        // the fork-join validator.
        let strict_world = fresh_world();
        let mut strict = PendingChain::new(&strict_world, block.header.parent_hash, 2);
        let err = strict.speculate(strict.tip_hash(), &block).unwrap_err();
        assert!(err.to_string().contains("profile"), "got: {err}");

        let world = fresh_world();
        let mut lenient =
            PendingChain::new(&world, block.header.parent_hash, 2).with_trace_checks(false);
        let hash = lenient.speculate(lenient.tip_hash(), &block).unwrap();
        lenient.commit(&hash).unwrap();
        assert_eq!(world.state_root(), block.header.state_root);
    }
}
