//! Pipelined block validation: overlap a follower's WAL seal with the
//! speculative validation of the next block.
//!
//! Sequential validation ([`Node::validate_and_append`]) runs every
//! stage of a block back to back, so with durability on, the WAL seal —
//! and in [`cc_ledger::wal::DurabilityMode::Fsync`] mode the fsync —
//! sits on the critical path of every block:
//!
//! ```text
//!   sequential:  [validate N][seal+fsync N][validate N+1][seal+fsync N+1]
//!
//!   pipelined:   [speculate N][speculate N+1][commit N][speculate N+2][commit N+1] …  (validation stage)
//!                                            [seal+fsync N]           [seal+fsync N+1]  (durability stage)
//! ```
//!
//! [`Node::run_follower_pipeline`] keeps speculative validation and the
//! overlay commit (see [`super::pending`]) on the calling thread and
//! moves the WAL seal to a dedicated durability worker. While the
//! worker fsyncs block N, the caller is already replaying block N+1
//! against N's pending post-state. The stages are joined by a **bounded
//! hand-off channel** ([`FollowerConfig::max_in_flight`]): when the
//! durability stage falls behind, the hand-off blocks and validation
//! stops speculating further ahead — back-pressure, not unbounded
//! queueing.
//!
//! # Invariants
//!
//! * **In-order commit.** Overlays flatten oldest-first
//!   ([`super::pending::PendingChain::commit`]), blocks append and seal
//!   in chain order, and only *fully validated* blocks (state root
//!   included) reach the WAL — recovery never replays a block this
//!   follower did not accept.
//! * **Bounded speculation.** At most `max_in_flight` blocks are
//!   validated but not yet durable, counting both pending overlays and
//!   sealed-but-unacknowledged blocks.
//! * **Stale on persist failure** (the PR 8 invariant, preserved). If a
//!   seal fails, the node marks itself stale, truncates the in-memory
//!   chain back to the last durable block, discards every pending
//!   overlay, and returns the failure. [`Node::recover`] is the exit.
//! * **Quiesced snapshots.** Periodic snapshots drain all in-flight
//!   seals (a barrier) before serializing the world, so the WAL reset
//!   never races an in-flight seal.
//!
//! A *speculate-time* rejection (bad receipts, bad traces, a hidden
//! race) never touches the base state: the follower drains its valid
//! pending predecessors into the chain, drops the rejected block and
//! the rest of the stream, and returns the rejection **without staling
//! the node** — unlike sequential validation, whose replay pollutes the
//! world before it can reject. Only a commit-time state-root mismatch
//! (the one check that needs the flattened base) stales the follower.

use super::pending::PendingChain;
use super::Node;
use crate::engine::ExecutionStrategy;
use crate::error::CoreError;
use cc_ledger::Block;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Tuning for [`Node::run_follower_pipeline`].
#[derive(Debug, Clone, Copy)]
pub struct FollowerConfig {
    max_in_flight: usize,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig::new()
    }
}

impl FollowerConfig {
    /// Default bound on validated-but-not-yet-durable blocks.
    pub const DEFAULT_MAX_IN_FLIGHT: usize = 2;

    /// A follower pipeline with the default speculation depth.
    pub fn new() -> Self {
        FollowerConfig {
            max_in_flight: Self::DEFAULT_MAX_IN_FLIGHT,
        }
    }

    /// Sets how many blocks may be validated but not yet durable
    /// (clamped to at least 1). Raising this deepens the pipeline
    /// without changing its output; it only moves the back-pressure
    /// point.
    pub fn max_in_flight(mut self, depth: usize) -> Self {
        self.max_in_flight = depth.max(1);
        self
    }
}

/// What a follower pipeline run produced (see
/// [`Node::run_follower_pipeline`]).
#[derive(Debug, Clone, Default)]
pub struct FollowerReport {
    /// Blocks validated, appended and made durable.
    pub blocks: u64,
    /// Transactions across those blocks.
    pub transactions: usize,
    /// Periodic snapshots written (each one a pipeline barrier).
    pub snapshots: u64,
    /// Time the validation stage spent blocked handing blocks to the
    /// durability stage (back-pressure) or draining it (snapshot
    /// barriers, final drain). The sequential path would have spent at
    /// least this long sealing inline; a small value with durability on
    /// means the fsyncs hid behind validation almost entirely.
    pub stalled: Duration,
}

/// A seal acknowledgement from the durability worker: block number plus
/// the seal outcome (`io::Error` rendered, it is not `Clone`).
type SealAck = (u64, Result<(), String>);

impl Node {
    /// Whether the engine's configuration calls for lock-trace checks
    /// during speculative validation (a serial engine replays
    /// schedule-less blocks, which carry no profiles to check).
    pub(super) fn speculation_checks_traces(&self) -> bool {
        self.engine.config().check_traces && self.engine.strategy() != ExecutionStrategy::Serial
    }

    /// Validates a stream of `blocks` against this node's chain,
    /// overlapping each block's WAL seal/fsync with the speculative
    /// validation of the next (see the [module docs](self) for the stage
    /// diagram and invariants). Returns once every accepted block is
    /// durable.
    ///
    /// The chain, world and durable artifacts are **byte-identical** to
    /// what the same stream produces through sequential
    /// [`Node::validate_and_append`] calls — the pipeline reorders work
    /// against the wall clock, never against the chain. Without
    /// durability there is nothing to overlap and the loop degenerates
    /// to speculate-then-commit per block.
    ///
    /// # Errors
    ///
    /// A speculate-time rejection ([`CoreError::BlockRejected`],
    /// [`CoreError::MissingSchedule`], …) drains the valid pending
    /// prefix, drops the rest of the stream and propagates — the node
    /// stays fresh at the last accepted block. A commit-time state-root
    /// mismatch or a seal/snapshot failure stales the node, rolls the
    /// in-memory chain back to the durable prefix and surfaces as
    /// [`CoreError::BlockRejected`] / [`CoreError::Durability`];
    /// [`Node::recover`] is the exit.
    pub fn run_follower_pipeline<I>(
        &mut self,
        blocks: I,
        config: &FollowerConfig,
    ) -> Result<FollowerReport, CoreError>
    where
        I: IntoIterator<Item = Block>,
    {
        self.ensure_fresh()?;
        let check_traces = self.speculation_checks_traces();
        let mut report = FollowerReport::default();
        let mut blocks = blocks.into_iter();

        let Some(state) = &self.durability else {
            // Nothing to overlap: speculate and commit back to back.
            let mut pending =
                PendingChain::new(&self.world, self.chain.head_hash(), config.max_in_flight)
                    .with_trace_checks(check_traces);
            for block in blocks {
                let hash = pending.speculate(pending.tip_hash(), &block)?;
                let committed = match pending.commit(&hash) {
                    Ok(block) => block,
                    Err(e) => {
                        self.stale = true;
                        return Err(e);
                    }
                };
                report.blocks += 1;
                report.transactions += committed.transactions.len();
                self.chain
                    .append(committed)
                    .map_err(|e| CoreError::rejected(e.to_string()))?;
            }
            return Ok(report);
        };

        let wal = state.wal.clone();
        let snapshot_interval = state.config.snapshot_interval;
        let (work_tx, work_rx) = mpsc::sync_channel::<Block>(config.max_in_flight.max(1) - 1);
        let (ack_tx, ack_rx) = mpsc::channel::<SealAck>();
        let worker = thread::Builder::new()
            .name("cc-durability".into())
            .spawn(move || {
                // In-order commit: one worker, FIFO channel. Stop at the
                // first failure — later seals would lie about durability.
                for block in work_rx {
                    let number = block.header.number;
                    let sealed = wal.seal_block(&block).map_err(|e| e.to_string());
                    let failed = sealed.is_err();
                    if ack_tx.send((number, sealed)).is_err() || failed {
                        return;
                    }
                }
            })
            .expect("spawn durability worker");

        // Everything at or below `durable` is safe against a crash. The
        // run starts from a fully persisted head (the node is fresh).
        let mut durable = self.chain.head().header.number;
        let mut in_flight = 0u64;
        let mut failure: Option<String> = None;
        // A speculate-time rejection: remember it, stop consuming input,
        // and drain the valid pending prefix before returning it.
        let mut rejection: Option<CoreError> = None;
        let mut exhausted = false;
        let mut pending =
            PendingChain::new(&self.world, self.chain.head_hash(), config.max_in_flight)
                .with_trace_checks(check_traces);

        let absorb = |acks: &mut dyn Iterator<Item = SealAck>,
                      durable: &mut u64,
                      in_flight: &mut u64,
                      failure: &mut Option<String>| {
            for (number, sealed) in acks {
                *in_flight -= 1;
                match sealed {
                    Ok(()) => *durable = number,
                    Err(reason) => {
                        *failure = Some(format!("sealing block {number} failed: {reason}"));
                        break;
                    }
                }
            }
        };

        let outcome = loop {
            // Collect whatever the durability stage finished meanwhile.
            absorb(
                &mut ack_rx.try_iter(),
                &mut durable,
                &mut in_flight,
                &mut failure,
            );
            if failure.is_some() {
                break Ok(());
            }

            // Keep the speculation window full, so the next block
            // validates against its predecessor's still-pending
            // post-state while that predecessor's seal is in flight.
            while !pending.is_full() && !exhausted && rejection.is_none() {
                match blocks.next() {
                    Some(block) => {
                        if let Err(e) = pending.speculate(pending.tip_hash(), &block) {
                            // The rejected block's overlay is already
                            // discarded; its descendants (the rest of
                            // the stream) are dropped unconsumed.
                            rejection = Some(e);
                        }
                    }
                    None => exhausted = true,
                }
            }

            // Commit the oldest pending overlay, append it and hand it
            // to the durability stage. An empty window means the stream
            // is drained (or rejected): flush and exit.
            let Some(oldest) = pending.oldest_hash() else {
                break Ok(());
            };
            let committed = match pending.commit(&oldest) {
                // A state-root mismatch has polluted the base; the
                // outcome arm below stales the node.
                Err(e) => break Err(e),
                Ok(block) => block,
            };
            report.blocks += 1;
            report.transactions += committed.transactions.len();
            let number = committed.header.number;
            if let Err(e) = self.chain.append(committed.clone()) {
                break Err(CoreError::rejected(e.to_string()));
            }

            // A full channel is the back-pressure point. A closed
            // channel means the worker hit a failure whose ack is (or
            // will be) in ack_rx.
            let handoff = Instant::now();
            if work_tx.send(committed).is_ok() {
                in_flight += 1;
            }
            report.stalled += handoff.elapsed();

            if number.is_multiple_of(snapshot_interval) {
                // Snapshot barrier: drain the durability stage, then
                // serialize the quiesced world and reset the WAL.
                let drain = Instant::now();
                absorb(
                    &mut ack_rx.iter().take(in_flight as usize),
                    &mut durable,
                    &mut in_flight,
                    &mut failure,
                );
                report.stalled += drain.elapsed();
                if failure.is_some() {
                    break Ok(());
                }
                if let Err(e) = self.write_snapshot() {
                    break Err(e);
                }
                report.snapshots += 1;
            }
        };

        // Final drain: close the hand-off, absorb outstanding acks, join.
        drop(work_tx);
        let drain = Instant::now();
        absorb(
            &mut ack_rx.iter(),
            &mut durable,
            &mut in_flight,
            &mut failure,
        );
        report.stalled += drain.elapsed();
        worker.join().expect("durability worker panicked");

        match (outcome, failure) {
            (Err(e), _) => {
                // Commit-time rejection or snapshot failure: the base
                // world holds effects the chain does not vouch for.
                pending.discard_all();
                self.stale = true;
                self.chain.truncate_to(durable);
                Err(e)
            }
            (Ok(()), Some(reason)) => {
                // The PR 8 invariant, pipelined: never let the in-memory
                // chain advertise blocks the WAL cannot recover.
                pending.discard_all();
                self.stale = true;
                self.chain.truncate_to(durable);
                Err(CoreError::durability(reason))
            }
            (Ok(()), None) => {
                debug_assert!(pending.is_empty());
                debug_assert_eq!(durable, self.chain.head().header.number);
                // The world and chain sit consistently at the last
                // accepted block; a speculate-time rejection propagates
                // without staling the node.
                match rejection {
                    Some(e) => Err(e),
                    None => Ok(report),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::node::DurabilityConfig;
    use cc_ledger::wal::DurabilityMode;
    use cc_ledger::Transaction;
    use cc_vm::testing::CounterContract;
    use cc_vm::{Address, ArgValue, CallData, World};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn fresh_world() -> World {
        let world = World::new();
        world.deploy(Arc::new(CounterContract::new(Address::from_name(
            "counter-follower",
        ))));
        world
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cc-follower-test-{}-{tag}", std::process::id()));
        p
    }

    fn block_txs(base: u64, n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| {
                Transaction::new(
                    base + i,
                    Address::from_index(i % 4),
                    Address::from_name("counter-follower"),
                    CallData::new("increment", vec![ArgValue::Uint(1)]),
                    1_000_000,
                )
            })
            .collect()
    }

    fn mined_blocks(n: u64) -> Vec<Block> {
        let mut producer = Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            .build()
            .unwrap();
        (0..n)
            .map(|i| {
                producer
                    .mine_and_append(block_txs(i * 100, 8))
                    .unwrap()
                    .block
            })
            .collect()
    }

    fn durable_follower(dir: &PathBuf, interval: u64) -> Node {
        Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            .durability(
                DurabilityConfig::new(dir, DurabilityMode::Fsync).snapshot_interval(interval),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn pipelined_follower_matches_sequential_validation() {
        let blocks = mined_blocks(4);

        let mut sequential = Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            .build()
            .unwrap();
        for block in &blocks {
            sequential.validate_and_append(block).unwrap();
        }

        let mut pipelined = Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            .build()
            .unwrap();
        let report = pipelined
            .run_follower_pipeline(blocks.clone(), &FollowerConfig::new().max_in_flight(3))
            .unwrap();
        assert_eq!(report.blocks, 4);
        assert_eq!(report.transactions, 32);
        assert_eq!(
            pipelined.chain().head_hash(),
            sequential.chain().head_hash()
        );
        assert_eq!(
            pipelined.world().state_root(),
            sequential.world().state_root()
        );
        assert!(pipelined.chain().verify_structure());
    }

    #[test]
    fn durable_follower_seals_snapshots_and_recovers() {
        let dir = temp_dir("durable");
        std::fs::remove_dir_all(&dir).ok();
        let blocks = mined_blocks(5);
        let mut follower = durable_follower(&dir, 2);
        let report = follower
            .run_follower_pipeline(blocks.clone(), &FollowerConfig::new())
            .unwrap();
        assert_eq!(report.blocks, 5);
        assert_eq!(report.snapshots, 2, "blocks 2 and 4 hit the interval");
        assert_eq!(follower.chain().len(), 6);

        // Everything the pipeline accepted is recoverable.
        let head = follower.chain().head_hash();
        let world_bytes = follower.world().snapshot().to_bytes();
        drop(follower);
        let config = DurabilityConfig::new(&dir, DurabilityMode::Fsync);
        let engine = EngineConfig::new().threads(2).build().unwrap();
        let recovered = Node::recover(config, fresh_world(), engine).unwrap();
        assert_eq!(recovered.chain().head_hash(), head);
        assert_eq!(recovered.world().snapshot().to_bytes(), world_bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seal_failure_stales_and_rolls_back_to_the_durable_prefix() {
        let dir = temp_dir("seal-fail");
        std::fs::remove_dir_all(&dir).ok();
        let blocks = mined_blocks(5);
        // Interval past the run: no snapshot resets the failure arm.
        let mut follower = durable_follower(&dir, 100);
        // Two seals succeed (blocks 1 and 2), the third fails mid-run.
        follower.wal().unwrap().inject_seal_failures(2);
        let err = follower
            .run_follower_pipeline(blocks, &FollowerConfig::new())
            .unwrap_err();
        assert!(err.to_string().contains("sealing block 3"), "got: {err}");
        assert!(follower.is_stale());
        assert_eq!(
            follower.chain().head().header.number,
            2,
            "chain rolled back to the durable prefix"
        );
        // Stale node refuses further pipelining.
        assert!(follower
            .run_follower_pipeline(Vec::new(), &FollowerConfig::new())
            .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_stream_rejection_keeps_the_valid_prefix_without_staling() {
        let blocks = mined_blocks(4);
        let mut stream = blocks.clone();
        // Tamper with block 3's receipts (re-committed so it stays
        // well-formed): speculation rejects it before it touches the
        // base, and block 4 is dropped as its descendant.
        let mut receipts = stream[2].receipts.clone();
        receipts[0].gas_used += 1;
        stream[2] = Block::build(
            stream[2].header.parent_hash,
            stream[2].header.number,
            stream[2].transactions.clone(),
            receipts,
            stream[2].header.state_root,
            stream[2].schedule.clone(),
        );

        let mut follower = Node::builder()
            .world(fresh_world())
            .config(EngineConfig::new().threads(2))
            .build()
            .unwrap();
        let err = follower
            .run_follower_pipeline(stream, &FollowerConfig::new().max_in_flight(3))
            .unwrap_err();
        assert!(err.to_string().contains("receipt"), "got: {err}");
        assert!(
            !follower.is_stale(),
            "a speculate-time rejection never pollutes the base"
        );
        assert_eq!(
            follower.chain().head_hash(),
            blocks[1].hash(),
            "the valid prefix was committed"
        );
        // The follower keeps working: the honest remainder validates.
        follower
            .run_follower_pipeline(blocks[2..].to_vec(), &FollowerConfig::new())
            .unwrap();
        assert_eq!(follower.chain().head_hash(), blocks[3].hash());
    }

    #[test]
    fn forged_state_root_stales_at_commit() {
        let dir = temp_dir("forged-root");
        std::fs::remove_dir_all(&dir).ok();
        let blocks = mined_blocks(3);
        let mut stream = blocks.clone();
        stream[1].header.state_root = cc_primitives::sha256(b"forged");
        // Re-link the descendant so speculation accepts the chain shape.
        stream[2].header.parent_hash = stream[1].hash();

        let mut follower = durable_follower(&dir, 100);
        let err = follower
            .run_follower_pipeline(stream, &FollowerConfig::new().max_in_flight(3))
            .unwrap_err();
        assert!(err.to_string().contains("state root"), "got: {err}");
        assert!(follower.is_stale(), "a polluted base must stale the node");
        assert_eq!(
            follower.chain().head().header.number,
            1,
            "chain rolled back to the durable prefix"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let mut follower = Node::builder().world(fresh_world()).build().unwrap();
        let report = follower
            .run_follower_pipeline(Vec::new(), &FollowerConfig::new())
            .unwrap();
        assert_eq!(report.blocks, 0);
        assert_eq!(follower.chain().len(), 1);
    }
}
