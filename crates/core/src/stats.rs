//! Execution statistics and validation reports.

use cc_primitives::hash::Hash256;
use std::fmt;
use std::time::Duration;

/// Statistics gathered while mining one block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MinerStats {
    /// Number of worker threads used (1 for the serial miner).
    pub threads: usize,
    /// Number of transactions in the block.
    pub transactions: usize,
    /// How many speculative executions were aborted and retried
    /// (deadlock victims).
    pub retries: u64,
    /// Wall-clock time spent executing the block's transactions.
    pub elapsed: Duration,
    /// Total gas charged across all transactions.
    pub gas_used: u64,
    /// Critical-path length of the discovered schedule (in transactions).
    pub critical_path: usize,
    /// Number of happens-before edges discovered.
    pub hb_edges: usize,
}

impl fmt::Display for MinerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} txns on {} thread(s) in {:?} ({} retries, critical path {}, {} edges)",
            self.transactions,
            self.threads,
            self.elapsed,
            self.retries,
            self.critical_path,
            self.hb_edges
        )
    }
}

/// The successful outcome of validating a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Number of worker threads used (1 for the serial validator).
    pub threads: usize,
    /// Number of transactions replayed.
    pub transactions: usize,
    /// The state root computed by replay (always equal to the block's
    /// state root when validation succeeds).
    pub state_root: Hash256,
    /// Wall-clock time spent re-executing the block.
    pub elapsed: Duration,
    /// Critical-path length of the replayed schedule.
    pub critical_path: usize,
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "validated {} txns on {} thread(s) in {:?} (critical path {})",
            self.transactions, self.threads, self.elapsed, self.critical_path
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let stats = MinerStats {
            threads: 3,
            transactions: 200,
            retries: 5,
            elapsed: Duration::from_millis(12),
            gas_used: 1_000,
            critical_path: 7,
            hb_edges: 30,
        };
        let s = stats.to_string();
        assert!(s.contains("200 txns"));
        assert!(s.contains("3 thread"));

        let report = ValidationReport {
            threads: 3,
            transactions: 200,
            state_root: Hash256::ZERO,
            elapsed: Duration::from_millis(8),
            critical_path: 7,
        };
        assert!(report.to_string().contains("validated 200"));
    }
}
