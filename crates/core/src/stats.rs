//! Execution statistics and validation reports.

use cc_primitives::hash::Hash256;
use cc_stm::manager::LockStats;
use std::fmt;
use std::time::Duration;

/// Statistics gathered while mining one block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MinerStats {
    /// Number of worker threads used (1 for the serial miner).
    pub threads: usize,
    /// Number of transactions in the block.
    pub transactions: usize,
    /// How many speculative executions were aborted and retried
    /// (deadlock victims).
    pub retries: u64,
    /// Wall-clock time spent executing the block's transactions.
    pub elapsed: Duration,
    /// Total gas charged across all transactions.
    pub gas_used: u64,
    /// Critical-path length of the discovered schedule (in transactions).
    pub critical_path: usize,
    /// Number of happens-before edges discovered.
    pub hb_edges: usize,
    /// Number of committed transactions that performed no writes — under
    /// the optimistic strategy these commit without validation and can
    /// never abort; pessimistic miners count commits whose profile holds
    /// only shared locks.
    pub read_only: u64,
    /// Lock-manager activity while this block was mined: acquisitions,
    /// blocking waits, deadlocks, targeted wakeups, and the stripe count
    /// of the sharded lock table. The serial miner still acquires locks
    /// (its transactions run through the same STM), but its waits and
    /// deadlocks are always zero.
    pub locks: LockStats,
}

impl fmt::Display for MinerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} txns on {} thread(s) in {:?} ({} retries, {} read-only, critical path {}, {} edges; locks: {} acquired, {} waits, {} deadlocks over {} shards)",
            self.transactions,
            self.threads,
            self.elapsed,
            self.retries,
            self.read_only,
            self.critical_path,
            self.hb_edges,
            self.locks.acquisitions,
            self.locks.waits,
            self.locks.deadlocks,
            self.locks.shards
        )
    }
}

/// The successful outcome of validating a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Number of worker threads used (1 for the serial validator).
    pub threads: usize,
    /// Number of transactions replayed.
    pub transactions: usize,
    /// The state root computed by replay (always equal to the block's
    /// state root when validation succeeds).
    pub state_root: Hash256,
    /// Wall-clock time spent re-executing the block.
    pub elapsed: Duration,
    /// Critical-path length of the replayed schedule.
    pub critical_path: usize,
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "validated {} txns on {} thread(s) in {:?} (critical path {})",
            self.transactions, self.threads, self.elapsed, self.critical_path
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let stats = MinerStats {
            threads: 3,
            transactions: 200,
            retries: 5,
            elapsed: Duration::from_millis(12),
            gas_used: 1_000,
            critical_path: 7,
            hb_edges: 30,
            read_only: 40,
            locks: LockStats {
                acquisitions: 420,
                waits: 12,
                deadlocks: 5,
                wakeups: 12,
                shards: 16,
            },
        };
        let s = stats.to_string();
        assert!(s.contains("200 txns"));
        assert!(s.contains("3 thread"));
        assert!(s.contains("40 read-only"));
        assert!(s.contains("420 acquired"));
        assert!(s.contains("16 shards"));

        let report = ValidationReport {
            threads: 3,
            transactions: 200,
            state_root: Hash256::ZERO,
            elapsed: Duration::from_millis(8),
            critical_path: 7,
        };
        assert!(report.to_string().contains("validated 200"));
    }
}
