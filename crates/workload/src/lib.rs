//! Deterministic workload generators for the paper's benchmarks.
//!
//! §7.1 of the paper defines four benchmarks — **Ballot**,
//! **SimpleAuction**, **EtherDoc** and **Mixed** — each parameterised by
//! the number of transactions per block and the *data-conflict
//! percentage*: "the percentage of transactions that contend with at least
//! one other transaction for shared data". This crate regenerates those
//! blocks:
//!
//! | Benchmark | non-conflicting transactions | conflict injection |
//! |-----------|------------------------------|--------------------|
//! | Ballot | each registered voter votes once for the same proposal | some voters attempt to vote twice (the second vote throws) |
//! | SimpleAuction | outbid bidders `withdraw()` their pending returns | new bidders call `bidPlusOne()`, all reading/raising the shared highest bid |
//! | EtherDoc | owners check existence of distinct documents | owners transfer their documents to the contract creator, all updating the creator's tally |
//! | Mixed | equal proportions of the above three | injected per-contract in equal proportions |
//!
//! A [`Workload`] knows how to build a **fresh, identical initial world**
//! any number of times ([`Workload::build_world`]), which is how the
//! benchmark harness gives the serial miner, the parallel miner and the
//! validators byte-identical starting states.
//!
//! # Example
//!
//! ```
//! use cc_workload::{Benchmark, WorkloadSpec};
//!
//! let spec = WorkloadSpec::new(Benchmark::Ballot, 100, 0.15).with_seed(42);
//! let workload = spec.generate();
//! assert_eq!(workload.transactions().len(), 100);
//! let world = workload.build_world();
//! assert_eq!(world.contract_count(), 1);
//! // A second build yields the same initial state.
//! assert_eq!(world.state_root(), workload.build_world().state_root());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod auction;
mod ballot;
mod etherdoc;

use cc_ledger::Transaction;
use cc_vm::World;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// Which of the paper's benchmarks to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// The Ballot voting contract.
    Ballot,
    /// The SimpleAuction contract.
    SimpleAuction,
    /// The EtherDoc proof-of-existence contract.
    EtherDoc,
    /// Equal proportions of the other three on their own contracts.
    Mixed,
}

impl Benchmark {
    /// All four benchmarks, in the order the paper reports them.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::SimpleAuction,
        Benchmark::Ballot,
        Benchmark::EtherDoc,
        Benchmark::Mixed,
    ];
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Benchmark::Ballot => f.write_str("Ballot"),
            Benchmark::SimpleAuction => f.write_str("SimpleAuction"),
            Benchmark::EtherDoc => f.write_str("EtherDoc"),
            Benchmark::Mixed => f.write_str("Mixed"),
        }
    }
}

/// Parameters of one generated block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Number of transactions in the block (the paper sweeps 10–400).
    pub block_size: usize,
    /// Fraction (0.0–1.0) of transactions that contend with at least one
    /// other transaction.
    pub conflict: f64,
    /// RNG seed controlling the in-block ordering of transactions.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Creates a spec with the default seed.
    pub fn new(benchmark: Benchmark, block_size: usize, conflict: f64) -> Self {
        WorkloadSpec {
            benchmark,
            block_size,
            conflict: conflict.clamp(0.0, 1.0),
            seed: 0xC0FFEE,
        }
    }

    /// Overrides the shuffle seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the workload described by this spec.
    pub fn generate(&self) -> Workload {
        Workload::generate(*self)
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} txns, {:.0}% conflict)",
            self.benchmark,
            self.block_size,
            self.conflict * 100.0
        )
    }
}

/// A generated block of transactions plus the recipe for its initial
/// world state.
#[derive(Debug, Clone)]
pub struct Workload {
    spec: WorkloadSpec,
    transactions: Vec<Transaction>,
}

impl Workload {
    /// Generates the workload for `spec`.
    pub fn generate(spec: WorkloadSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5eed_0001);
        let mut transactions = match spec.benchmark {
            Benchmark::Ballot => ballot::transactions(spec.block_size, spec.conflict),
            Benchmark::SimpleAuction => auction::transactions(spec.block_size, spec.conflict),
            Benchmark::EtherDoc => etherdoc::transactions(spec.block_size, spec.conflict),
            Benchmark::Mixed => {
                let per = spec.block_size / 3;
                let remainder = spec.block_size - 2 * per;
                let mut txs = ballot::transactions(remainder, spec.conflict);
                txs.extend(auction::transactions(per, spec.conflict));
                txs.extend(etherdoc::transactions(per, spec.conflict));
                txs
            }
        };
        // Shuffle so contending transactions are not adjacent in the block
        // (block position must not encode the conflict structure).
        transactions.shuffle(&mut rng);
        for (nonce, tx) in transactions.iter_mut().enumerate() {
            tx.nonce = nonce as u64;
        }
        Workload { spec, transactions }
    }

    /// The spec this workload was generated from.
    pub fn spec(&self) -> WorkloadSpec {
        self.spec
    }

    /// The block's transactions (cloned; the same list every call).
    pub fn transactions(&self) -> Vec<Transaction> {
        self.transactions.clone()
    }

    /// Builds a fresh world holding the benchmark's initial state. Every
    /// call produces an identical, independent world (own STM runtime, own
    /// storage), so serial and parallel executions never share state.
    pub fn build_world(&self) -> World {
        let world = World::new();
        match self.spec.benchmark {
            Benchmark::Ballot => ballot::deploy(&world, self.spec.block_size),
            Benchmark::SimpleAuction => auction::deploy(&world, self.spec.block_size),
            Benchmark::EtherDoc => etherdoc::deploy(&world, self.spec.block_size),
            Benchmark::Mixed => {
                ballot::deploy(&world, self.spec.block_size);
                auction::deploy(&world, self.spec.block_size);
                etherdoc::deploy(&world, self.spec.block_size);
            }
        }
        world
    }

    /// The number of transactions that were generated as contending
    /// (useful for asserting the conflict definition in tests).
    pub fn expected_conflicting(&self) -> usize {
        contending_count(self.spec.block_size, self.spec.conflict)
    }
}

/// Number of contending transactions for a block of `n` transactions at
/// conflict fraction `c`, rounded to the nearest even number (conflicts
/// are always injected in groups of at least two — a single transaction
/// cannot contend with itself).
pub(crate) fn contending_count(n: usize, c: f64) -> usize {
    let raw = (n as f64 * c).round() as usize;
    let even = raw - (raw % 2);
    even.min(n - (n % 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_core::miner::{Miner, ParallelMiner, SerialMiner};
    use cc_core::validator::{ParallelValidator, Validator};
    use cc_vm::ExecutionStatus;

    #[test]
    fn contending_count_is_even_and_bounded() {
        assert_eq!(contending_count(100, 0.15), 14);
        assert_eq!(contending_count(100, 0.0), 0);
        assert_eq!(contending_count(100, 1.0), 100);
        assert_eq!(contending_count(10, 0.5), 4);
        assert_eq!(contending_count(7, 1.0), 6);
    }

    #[test]
    fn block_sizes_are_exact_for_all_benchmarks() {
        for benchmark in Benchmark::ALL {
            for &n in &[10usize, 47, 100, 200] {
                let w = WorkloadSpec::new(benchmark, n, 0.15).generate();
                assert_eq!(w.transactions().len(), n, "{benchmark} at {n}");
            }
        }
    }

    #[test]
    fn worlds_are_reproducible() {
        for benchmark in Benchmark::ALL {
            let w = WorkloadSpec::new(benchmark, 50, 0.2).generate();
            assert_eq!(
                w.build_world().state_root(),
                w.build_world().state_root(),
                "{benchmark}"
            );
        }
    }

    #[test]
    fn transactions_are_reproducible_for_same_seed_and_differ_across_seeds() {
        let a = WorkloadSpec::new(Benchmark::Ballot, 60, 0.15)
            .with_seed(1)
            .generate();
        let b = WorkloadSpec::new(Benchmark::Ballot, 60, 0.15)
            .with_seed(1)
            .generate();
        let c = WorkloadSpec::new(Benchmark::Ballot, 60, 0.15)
            .with_seed(2)
            .generate();
        assert_eq!(a.transactions(), b.transactions());
        assert_ne!(a.transactions(), c.transactions());
    }

    #[test]
    fn serial_and_parallel_mining_agree_on_every_benchmark() {
        for benchmark in Benchmark::ALL {
            let w = WorkloadSpec::new(benchmark, 60, 0.25).generate();
            let parallel = ParallelMiner::new(3)
                .mine(&w.build_world(), w.transactions())
                .unwrap();
            // Serializability: running the published serial order one
            // transaction at a time reproduces the parallel state. (Plain
            // block order is not used here because SimpleAuction's final
            // state legitimately depends on the serialization chosen.)
            let schedule = parallel.block.schedule.as_ref().unwrap();
            let txs = w.transactions();
            let reordered: Vec<cc_ledger::Transaction> = schedule
                .serial_order
                .iter()
                .map(|&i| txs[i].clone())
                .collect();
            let serial = SerialMiner::new()
                .mine(&w.build_world(), reordered)
                .unwrap();
            assert_eq!(
                serial.block.header.state_root, parallel.block.header.state_root,
                "{benchmark}: parallel mining must be equivalent to its published serial order"
            );
            let report = ParallelValidator::new(3)
                .validate(&w.build_world(), &parallel.block)
                .unwrap();
            assert_eq!(report.state_root, parallel.block.header.state_root);
        }
    }

    #[test]
    fn zero_conflict_ballot_blocks_have_no_reverts() {
        let w = WorkloadSpec::new(Benchmark::Ballot, 80, 0.0).generate();
        let mined = ParallelMiner::new(3)
            .mine(&w.build_world(), w.transactions())
            .unwrap();
        assert!(mined.block.receipts.iter().all(|r| r.succeeded()));
    }

    #[test]
    fn conflicting_ballot_transactions_produce_reverts() {
        let w = WorkloadSpec::new(Benchmark::Ballot, 80, 0.5).generate();
        let mined = SerialMiner::new()
            .mine(&w.build_world(), w.transactions())
            .unwrap();
        let reverted = mined
            .block
            .receipts
            .iter()
            .filter(|r| matches!(r.status, ExecutionStatus::Reverted { .. }))
            .count();
        // Each contending pair is one real vote plus one double vote.
        assert_eq!(reverted, w.expected_conflicting() / 2);
    }

    #[test]
    fn full_conflict_auction_still_validates() {
        let w = WorkloadSpec::new(Benchmark::SimpleAuction, 40, 1.0).generate();
        let mined = ParallelMiner::new(3)
            .mine(&w.build_world(), w.transactions())
            .unwrap();
        assert_eq!(
            mined.block.schedule.as_ref().unwrap().critical_path(),
            40,
            "all bidPlusOne transactions serialize"
        );
        ParallelValidator::new(3)
            .validate(&w.build_world(), &mined.block)
            .unwrap();
    }

    #[test]
    fn display_impls() {
        let spec = WorkloadSpec::new(Benchmark::Mixed, 200, 0.15);
        assert!(spec.to_string().contains("Mixed"));
        assert!(Benchmark::EtherDoc.to_string().contains("EtherDoc"));
    }
}
