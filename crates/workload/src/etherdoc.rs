//! The EtherDoc benchmark (paper §7.1).
//!
//! "The contract is initialized with a number of documents and owners.
//! Transactions consist of owners checking the existence of the document
//! by hashcode. Data conflict is added by including transactions that
//! transfer ownership to the contract creator. As with SimpleAuction, all
//! contending transactions touch the same shared data … 100% data conflict
//! happens when all transactions are transfers."

use crate::contending_count;
use cc_contracts::EtherDoc;
use cc_ledger::Transaction;
use cc_vm::{Address, ArgValue, CallData, World};
use std::sync::Arc;

/// Index offset for EtherDoc accounts (disjoint from the other
/// benchmarks).
const ACCOUNT_BASE: u64 = 30_000;
/// Gas limit per transaction.
const GAS_LIMIT: u64 = 1_000_000;

/// The deterministic address of the benchmark's EtherDoc contract.
pub fn contract_address() -> Address {
    Address::from_name("bench.EtherDoc")
}

/// The contract creator (the destination of every contending transfer).
pub fn creator() -> Address {
    Address::from_index(ACCOUNT_BASE)
}

/// The owner of benchmark document `i`.
pub fn owner(i: usize) -> Address {
    Address::from_index(ACCOUNT_BASE + 1 + i as u64)
}

/// The hash of benchmark document `i`.
pub fn document(i: usize) -> [u8; 32] {
    EtherDoc::document_hash(1_000_000 + i as u64)
}

/// Deploys EtherDoc and seeds `block_size` documents, each with its own
/// owner.
pub fn deploy(world: &World, block_size: usize) {
    let etherdoc = EtherDoc::new(contract_address(), creator());
    for i in 0..block_size.max(1) {
        etherdoc.seed_document(document(i), owner(i));
    }
    world.deploy(Arc::new(etherdoc));
}

/// Generates `n` transactions: `contending_count(n, conflict)` transfers of
/// distinct documents to the contract creator (all of which contend on the
/// creator's ownership tally), the rest existence checks of other distinct
/// documents.
pub fn transactions(n: usize, conflict: f64) -> Vec<Transaction> {
    let contending = contending_count(n, conflict);
    let mut txs = Vec::with_capacity(n);
    for i in 0..contending {
        txs.push(Transaction::new(
            0,
            owner(i),
            contract_address(),
            CallData::new(
                "transferDocument",
                vec![ArgValue::Bytes32(document(i)), ArgValue::Addr(creator())],
            ),
            GAS_LIMIT,
        ));
    }
    for j in contending..n {
        txs.push(Transaction::new(
            0,
            owner(j),
            contract_address(),
            CallData::new("hasDocument", vec![ArgValue::Bytes32(document(j))]),
            GAS_LIMIT,
        ));
    }
    txs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_fraction_controls_transfer_count() {
        let txs = transactions(200, 0.15);
        assert_eq!(txs.len(), 200);
        let transfers = txs
            .iter()
            .filter(|t| t.call.function == "transferDocument")
            .count();
        assert_eq!(transfers, 30);
    }

    #[test]
    fn extremes() {
        assert!(transactions(30, 0.0)
            .iter()
            .all(|t| t.call.function == "hasDocument"));
        assert!(transactions(30, 1.0)
            .iter()
            .all(|t| t.call.function == "transferDocument"));
    }

    #[test]
    fn reads_and_transfers_touch_disjoint_documents() {
        let txs = transactions(60, 0.5);
        let transferred: std::collections::HashSet<[u8; 32]> = txs
            .iter()
            .filter(|t| t.call.function == "transferDocument")
            .map(|t| t.call.args[0].as_bytes32().unwrap())
            .collect();
        let read: std::collections::HashSet<[u8; 32]> = txs
            .iter()
            .filter(|t| t.call.function == "hasDocument")
            .map(|t| t.call.args[0].as_bytes32().unwrap())
            .collect();
        assert!(transferred.is_disjoint(&read));
    }

    #[test]
    fn deploy_seeds_documents() {
        let world = World::new();
        deploy(&world, 8);
        assert!(world.contract(contract_address()).is_some());
    }
}
