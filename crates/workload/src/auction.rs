//! The SimpleAuction benchmark (paper §7.1).
//!
//! "The contract state is initialized by several bidders entering a bid.
//! The block consists of transactions that withdraw these bids. Data
//! conflict is added by including new bidders who call bidPlusOne() to
//! read and increase the highest bid. … 100% data conflict happens when
//! all transactions are bidPlusOne() bids."

use crate::contending_count;
use cc_contracts::SimpleAuction;
use cc_ledger::Transaction;
use cc_vm::{Address, CallData, World};
use std::sync::Arc;

/// Index offset for auction accounts (disjoint from the other benchmarks).
const ACCOUNT_BASE: u64 = 20_000;
/// Pending return seeded for every withdrawing bidder.
const SEEDED_RETURN: u128 = 100;
/// The highest bid the auction starts with.
const SEEDED_HIGHEST_BID: u128 = 1_000;
/// Gas limit per transaction.
const GAS_LIMIT: u64 = 1_000_000;

/// The deterministic address of the benchmark's SimpleAuction contract.
pub fn contract_address() -> Address {
    Address::from_name("bench.SimpleAuction")
}

/// The account of withdrawing bidder `i`.
pub fn bidder(i: usize) -> Address {
    Address::from_index(ACCOUNT_BASE + i as u64)
}

/// The account of overbidding newcomer `i` (used by `bidPlusOne`
/// transactions).
pub fn overbidder(i: usize) -> Address {
    Address::from_index(ACCOUNT_BASE + 100_000 + i as u64)
}

/// Deploys the auction and seeds pending returns for up to `block_size`
/// bidders plus an initial highest bid.
pub fn deploy(world: &World, block_size: usize) {
    let beneficiary = Address::from_index(ACCOUNT_BASE);
    let auction = SimpleAuction::new(contract_address(), beneficiary);
    for i in 0..block_size.max(1) {
        auction.seed_pending_return(bidder(i), SEEDED_RETURN);
    }
    auction.seed_highest_bid(
        Address::from_index(ACCOUNT_BASE + 999_999),
        SEEDED_HIGHEST_BID,
    );
    world.deploy(Arc::new(auction));
}

/// Generates `n` transactions: `contending_count(n, conflict)` of them are
/// `bidPlusOne()` calls (which all touch the shared highest bid and hence
/// all contend), the rest are `withdraw()` calls by distinct bidders.
pub fn transactions(n: usize, conflict: f64) -> Vec<Transaction> {
    let contending = contending_count(n, conflict);
    let mut txs = Vec::with_capacity(n);
    for i in 0..contending {
        txs.push(Transaction::new(
            0,
            overbidder(i),
            contract_address(),
            CallData::nullary("bidPlusOne"),
            GAS_LIMIT,
        ));
    }
    for i in 0..(n - contending) {
        txs.push(Transaction::new(
            0,
            bidder(i),
            contract_address(),
            CallData::nullary("withdraw"),
            GAS_LIMIT,
        ));
    }
    txs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_fraction_controls_bid_plus_one_count() {
        let txs = transactions(200, 0.15);
        assert_eq!(txs.len(), 200);
        let bids = txs
            .iter()
            .filter(|t| t.call.function == "bidPlusOne")
            .count();
        assert_eq!(bids, 30);
        let withdraws = txs.iter().filter(|t| t.call.function == "withdraw").count();
        assert_eq!(withdraws, 170);
    }

    #[test]
    fn extremes() {
        assert!(transactions(40, 0.0)
            .iter()
            .all(|t| t.call.function == "withdraw"));
        assert!(transactions(40, 1.0)
            .iter()
            .all(|t| t.call.function == "bidPlusOne"));
    }

    #[test]
    fn withdrawers_are_distinct() {
        let txs = transactions(50, 0.2);
        let withdrawers: std::collections::HashSet<Address> = txs
            .iter()
            .filter(|t| t.call.function == "withdraw")
            .map(|t| t.sender)
            .collect();
        assert_eq!(withdrawers.len(), 40);
    }

    #[test]
    fn deploy_seeds_returns() {
        let world = World::new();
        deploy(&world, 5);
        assert!(world.contract(contract_address()).is_some());
    }
}
