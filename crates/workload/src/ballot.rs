//! The Ballot benchmark (paper §7.1).
//!
//! "All block transactions for this benchmark are requests to vote on the
//! same proposal. To add data conflict, some voters attempt to
//! double-vote, creating two transactions that contend for the same voter
//! data. 100% data conflict occurs when all voters attempt to vote twice."

use crate::contending_count;
use cc_contracts::Ballot;
use cc_ledger::Transaction;
use cc_vm::{Address, ArgValue, CallData, World};
use std::sync::Arc;

/// Index offset so ballot voter accounts never collide with accounts used
/// by the other benchmarks inside the Mixed workload.
const ACCOUNT_BASE: u64 = 10_000;
/// The proposal every benchmark transaction votes for.
const PROPOSAL: u64 = 0;
/// Gas limit for one vote.
const GAS_LIMIT: u64 = 1_000_000;

/// The deterministic address of the benchmark's Ballot contract.
pub fn contract_address() -> Address {
    Address::from_name("bench.Ballot")
}

/// The account of benchmark voter `i`.
pub fn voter(i: usize) -> Address {
    Address::from_index(ACCOUNT_BASE + i as u64)
}

/// Deploys the Ballot contract and registers enough voters for a block of
/// `block_size` transactions ("the contract is put into an initial state
/// where voters are already registered").
pub fn deploy(world: &World, block_size: usize) {
    let chairperson = Address::from_index(ACCOUNT_BASE);
    let ballot = Ballot::with_numbered_proposals(contract_address(), chairperson, 4);
    for i in 0..block_size.max(1) {
        ballot.seed_registered_voter(voter(i));
    }
    world.deploy(Arc::new(ballot));
}

/// Generates `n` vote transactions, of which [`contending_count`]`(n, conflict)`
/// contend: contending transactions come in pairs — the same voter voting
/// twice, the second of which will throw.
pub fn transactions(n: usize, conflict: f64) -> Vec<Transaction> {
    let contending = contending_count(n, conflict);
    let double_voters = contending / 2;
    let mut txs = Vec::with_capacity(n);
    let vote_call = || CallData::new("vote", vec![ArgValue::Uint(u128::from(PROPOSAL))]);

    // Double voters: two transactions each.
    for i in 0..double_voters {
        txs.push(Transaction::new(
            0,
            voter(i),
            contract_address(),
            vote_call(),
            GAS_LIMIT,
        ));
        txs.push(Transaction::new(
            0,
            voter(i),
            contract_address(),
            vote_call(),
            GAS_LIMIT,
        ));
    }
    // The rest vote exactly once, each from a distinct voter.
    let singles = n - 2 * double_voters;
    for j in 0..singles {
        txs.push(Transaction::new(
            0,
            voter(double_voters + j),
            contract_address(),
            vote_call(),
            GAS_LIMIT,
        ));
    }
    txs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn sizes_and_conflict_structure() {
        let txs = transactions(100, 0.15);
        assert_eq!(txs.len(), 100);
        let mut per_sender: HashMap<Address, usize> = HashMap::new();
        for tx in &txs {
            *per_sender.entry(tx.sender).or_default() += 1;
        }
        let doubles = per_sender.values().filter(|&&c| c == 2).count();
        assert_eq!(
            doubles, 7,
            "15% of 100 -> 14 contending txns -> 7 double voters"
        );
        assert!(per_sender.values().all(|&c| c <= 2));
    }

    #[test]
    fn hundred_percent_conflict_means_everyone_votes_twice() {
        let txs = transactions(50, 1.0);
        let mut per_sender: HashMap<Address, usize> = HashMap::new();
        for tx in &txs {
            *per_sender.entry(tx.sender).or_default() += 1;
        }
        assert!(per_sender.values().all(|&c| c == 2));
    }

    #[test]
    fn deploy_registers_voters() {
        let world = World::new();
        deploy(&world, 10);
        assert_eq!(world.contract_count(), 1);
        assert!(world.contract(contract_address()).is_some());
    }
}
