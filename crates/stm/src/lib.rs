//! A transactional-boosting runtime for speculative smart-contract execution.
//!
//! This crate is the concurrency substrate of the reproduction of
//! *Adding Concurrency to Smart Contracts* (Dickerson, Gazzillo, Herlihy,
//! Koskinen — PODC 2017). The paper executes contract invocations as
//! *speculative atomic actions* synchronized by **transactional boosting**
//! rather than read/write-set STM:
//!
//! * every storage operation maps to an **abstract lock** ([`LockId`]); two
//!   operations that map to *distinct* locks are guaranteed to commute, and
//!   locks are held in a **mode** ([`LockMode`]) — shared for reads,
//!   additive for commutative accumulates, exclusive for everything else —
//!   so same-key operations that commute (read/read, add/add) also run in
//!   parallel,
//! * before performing an operation a transaction acquires the lock
//!   ([`Transaction::acquire`]) and records an **inverse operation** in its
//!   undo log — a typed `(key, prior value)` entry moved into the owning
//!   collection's [`UndoSink`], not a boxed closure,
//! * on commit the locks are released and the undo log discarded; on abort
//!   the inverse log is replayed (most recent first) and the locks released,
//! * a contract calling another contract runs as a **nested speculative
//!   action** ([`Transaction::nested`]) that can abort without aborting its
//!   parent,
//! * deadlocks are detected on the wait-for graph and resolved by aborting
//!   the requester,
//! * the lock table is sharded into independently-locked stripes with
//!   targeted per-lock wakeups, so transactions over disjoint locks never
//!   serialize in the runtime itself (see `README.md` and the [`manager`]
//!   module docs for the architecture),
//! * every abstract lock carries a **use counter**; a committing transaction
//!   increments the counter of each lock it holds and registers a
//!   [`LockProfile`], from which the miner derives the happens-before graph
//!   that validators replay deterministically.
//!
//! On top of the raw transaction machinery the [`boosted`] module provides
//! the collection types contracts actually use: [`BoostedMap`],
//! [`BoostedCell`], [`BoostedVec`] and [`BoostedCounterMap`].
//!
//! # Example
//!
//! ```
//! use cc_stm::{Stm, boosted::BoostedMap};
//!
//! let stm = Stm::new();
//! let balances: BoostedMap<String, u64> = BoostedMap::new("balances");
//!
//! let (_, commit) = stm.run(|txn| {
//!     balances.insert(txn, "alice".to_string(), 100)?;
//!     balances.insert(txn, "bob".to_string(), 50)?;
//!     Ok(())
//! }).expect("transaction commits");
//!
//! assert_eq!(commit.profile.locks.len(), 2);
//! assert_eq!(balances.snapshot().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boosted;
pub mod error;
pub mod lock;
pub mod manager;
pub mod profile;
pub mod retry;
pub mod txn;

pub use boosted::{BoostedCell, BoostedCounterMap, BoostedMap, BoostedVec};
pub use error::StmError;
pub use lock::{LockId, LockMode, LockSpace};
pub use manager::LockManager;
pub use profile::{CommitProfile, LockProfile, ProfileEntry, TraceEntry};
pub use retry::RetryPolicy;
pub use txn::{PooledTxn, Savepoint, Stm, Transaction, TxnId, TxnKind, TxnScope, UndoSink};
