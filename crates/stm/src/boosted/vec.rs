//! A boosted growable array (Solidity dynamically-sized array).

use crate::error::StmError;
use crate::lock::{LockId, LockMode, LockSpace};
use crate::txn::{Transaction, UndoSink};
use cc_primitives::fx::RawSlot;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// A transactional vector.
///
/// * element reads lock the individual index in shared mode (concurrent
///   reads of the same element commute) and element writes lock it
///   exclusively, so updates to different proposals commute,
/// * `push`/`pop` lock a dedicated *length* lock exclusively (they do not
///   commute with each other), while `len` takes it in shared mode so
///   concurrent length reads commute.
///
/// The backing store is a latched [`RawSlot<Vec<T>>`] — no reader-writer
/// lock. The abstract locks serialize conflicting element/length
/// operations; the word-sized latch protects the `Vec`'s single shared
/// allocation, which even disjoint abstract locks share (a `push`'s
/// reallocation would otherwise race an element read under a different
/// index lock). Debug builds prove the abstract lock is held before every
/// raw access.
///
/// # Example
///
/// ```
/// use cc_stm::{Stm, BoostedVec};
/// let stm = Stm::new();
/// let proposals: BoostedVec<&'static str> = BoostedVec::new("ballot.proposals");
/// stm.run(|txn| {
///     proposals.push(txn, "expand the park")?;
///     proposals.push(txn, "repave main st")?;
///     assert_eq!(proposals.len(txn)?, 2);
///     assert_eq!(proposals.get(txn, 0)?, Some("expand the park"));
///     Ok(())
/// }).unwrap();
/// ```
pub struct BoostedVec<T> {
    name: String,
    space: LockSpace,
    length_lock: LockId,
    inner: Arc<RawSlot<Vec<T>>>,
}

/// One typed inverse entry of a [`BoostedVec`] mutation.
enum VecUndoEntry<T> {
    /// Restore the prior value of an overwritten index.
    Set(usize, T),
    /// Remove the element a `push` appended at this index.
    Unpush(usize),
    /// Re-append the element a `pop` removed.
    Repush(T),
}

/// The typed undo sink of one [`BoostedVec`].
struct VecUndo<T> {
    target: Arc<RawSlot<Vec<T>>>,
    entries: Vec<VecUndoEntry<T>>,
}

impl<T: Send + Sync + 'static> UndoSink for VecUndo<T> {
    fn undo_last(&mut self) {
        if let Some(entry) = self.entries.pop() {
            // Inverses replay while the aborting transaction still holds
            // the element/length abstract locks it mutated under.
            self.target.with(|v| match entry {
                VecUndoEntry::Set(i, prior) => {
                    if let Some(slot) = v.get_mut(i) {
                        *slot = prior;
                    }
                }
                VecUndoEntry::Unpush(index) => {
                    if v.len() == index + 1 {
                        v.pop();
                    }
                }
                VecUndoEntry::Repush(value) => v.push(value),
            });
        }
    }
    fn reset(&mut self) {
        self.entries.clear();
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<T> Clone for BoostedVec<T> {
    fn clone(&self) -> Self {
        BoostedVec {
            name: self.name.clone(),
            space: self.space,
            length_lock: self.length_lock,
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for BoostedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoostedVec")
            .field("name", &self.name)
            .field("len", &self.inner.with(|v| v.len()))
            .finish()
    }
}

impl<T> BoostedVec<T>
where
    T: Clone + Send + Sync + 'static,
{
    /// Creates an empty boosted vector with locks in the space derived from
    /// `name`.
    pub fn new(name: &str) -> Self {
        let space = LockSpace::new(name);
        BoostedVec {
            name: name.to_string(),
            space,
            length_lock: space.whole(),
            inner: Arc::new(RawSlot::new(Vec::new())),
        }
    }

    /// The stable name of this vector.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The lock space this vector's length and element locks live in
    /// (shared with an optimistic overlay so footprints match).
    pub fn lock_space(&self) -> LockSpace {
        self.space
    }

    /// The undo-sink token of this vector (the backing storage address).
    fn undo_token(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// The sink constructor passed to the transaction on first use.
    fn undo_init(&self) -> impl FnOnce() -> VecUndo<T> {
        let target = Arc::clone(&self.inner);
        || VecUndo {
            target,
            entries: Vec::new(),
        }
    }

    /// The element lock for index `i`, hashing the index once.
    fn element_lock(&self, i: usize) -> crate::lock::LockId {
        self.space.lock_for(&i)
    }

    /// Transactionally returns the number of elements. Takes the length
    /// lock in shared mode: concurrent `len` calls commute, while
    /// push/pop (exclusive on the same lock) still order against them.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn len(&self, txn: &Transaction) -> Result<usize, StmError> {
        txn.acquire(self.length_lock, LockMode::Shared)?;
        txn.debug_assert_held(self.length_lock);
        Ok(self.inner.with(|v| v.len()))
    }

    /// Transactionally reports whether the vector is empty.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn is_empty(&self, txn: &Transaction) -> Result<bool, StmError> {
        Ok(self.len(txn)? == 0)
    }

    /// Transactionally reads index `i` (None if out of bounds). Takes the
    /// element lock in shared mode.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn get(&self, txn: &Transaction, i: usize) -> Result<Option<T>, StmError> {
        let lock = self.element_lock(i);
        txn.acquire(lock, LockMode::Shared)?;
        txn.debug_assert_held(lock);
        Ok(self.inner.with(|v| v.get(i).cloned()))
    }

    /// Transactionally reads index `i` **by reference**: `f` observes the
    /// element in place (or `None` when out of bounds) and only what it
    /// returns is materialized — no `T: Clone` per read. Same shared-mode
    /// locking as [`BoostedVec::get`].
    ///
    /// `f` runs under the slot's latch; it must not touch the
    /// transaction or this vector.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn get_with<R>(
        &self,
        txn: &Transaction,
        i: usize,
        f: impl FnOnce(Option<&T>) -> R,
    ) -> Result<R, StmError> {
        let lock = self.element_lock(i);
        txn.acquire(lock, LockMode::Shared)?;
        txn.debug_assert_held(lock);
        Ok(self.inner.with(|v| f(v.get(i))))
    }

    /// Transactionally overwrites index `i`. Returns `false` (and does
    /// nothing) if `i` is out of bounds. The prior value moves into the
    /// undo log — one write-lock pass, no clones.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn set(&self, txn: &Transaction, i: usize, value: T) -> Result<bool, StmError> {
        let mut in_bounds = false;
        txn.acquire_and_log(
            self.element_lock(i),
            LockMode::Exclusive,
            self.undo_token(),
            self.undo_init(),
            || {
                let previous = self
                    .inner
                    .with(|v| v.get_mut(i).map(|slot| std::mem::replace(slot, value)));
                in_bounds = previous.is_some();
                previous
            },
            |sink, previous| match previous {
                Some(prev) => {
                    sink.entries.push(VecUndoEntry::Set(i, prev));
                    true
                }
                None => false,
            },
        )?;
        Ok(in_bounds)
    }

    /// Transactionally applies `f` to element `i` in place (a single
    /// write-lock pass). Returns the updated value, or `None` if out of
    /// bounds.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn modify(
        &self,
        txn: &Transaction,
        i: usize,
        f: impl FnOnce(&mut T),
    ) -> Result<Option<T>, StmError> {
        let mut updated = None;
        txn.acquire_and_log(
            self.element_lock(i),
            LockMode::Exclusive,
            self.undo_token(),
            self.undo_init(),
            || {
                self.inner.with(|v| match v.get_mut(i) {
                    Some(slot) => {
                        let prior = slot.clone();
                        f(slot);
                        updated = Some(slot.clone());
                        Some(prior)
                    }
                    None => None,
                })
            },
            |sink, prior| match prior {
                Some(prior) => {
                    sink.entries.push(VecUndoEntry::Set(i, prior));
                    true
                }
                None => false,
            },
        )?;
        Ok(updated)
    }

    /// Transactionally appends a value, returning its index. Locks the
    /// length lock plus the new element's index lock.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn push(&self, txn: &Transaction, value: T) -> Result<usize, StmError> {
        txn.acquire(self.length_lock, LockMode::Exclusive)?;
        txn.debug_assert_held(self.length_lock);
        let index = self.inner.with(|v| v.len());
        txn.acquire_and_log(
            self.element_lock(index),
            LockMode::Exclusive,
            self.undo_token(),
            self.undo_init(),
            || self.inner.with(|v| v.push(value)),
            |sink, ()| {
                sink.entries.push(VecUndoEntry::Unpush(index));
                true
            },
        )?;
        Ok(index)
    }

    /// Transactionally removes and returns the last element (cloning it
    /// once into the undo log).
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn pop(&self, txn: &Transaction) -> Result<Option<T>, StmError> {
        txn.acquire(self.length_lock, LockMode::Exclusive)?;
        txn.debug_assert_held(self.length_lock);
        let last_index = match self.inner.with(|v| v.len()) {
            0 => return Ok(None),
            len => len - 1,
        };
        let mut popped = None;
        txn.acquire_and_log(
            self.element_lock(last_index),
            LockMode::Exclusive,
            self.undo_token(),
            self.undo_init(),
            || {
                let value = self.inner.with(|v| v.pop());
                popped = value.clone();
                value
            },
            |sink, value| match value {
                Some(value) => {
                    sink.entries.push(VecUndoEntry::Repush(value));
                    true
                }
                None => false,
            },
        )?;
        Ok(popped)
    }

    /// Non-transactional element read (setup/tests only).
    pub fn peek(&self, i: usize) -> Option<T> {
        self.inner.with(|v| v.get(i).cloned())
    }

    /// Non-transactional length (setup/tests only).
    pub fn snapshot_len(&self) -> usize {
        self.inner.with(|v| v.len())
    }

    /// Non-transactional append used while building initial state.
    pub fn seed_push(&self, value: T) {
        self.inner.with(|v| v.push(value));
    }

    /// Point-in-time copy of the vector contents.
    pub fn snapshot(&self) -> Vec<T> {
        self.inner.with(|v| v.clone())
    }

    /// Replaces the contents (snapshot restore / setup only).
    pub fn restore(&self, values: impl IntoIterator<Item = T>) {
        let values: Vec<T> = values.into_iter().collect();
        self.inner.with(|v| {
            v.clear();
            v.extend(values);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Stm;
    use proptest::prelude::*;

    #[test]
    fn push_get_set_len() {
        let stm = Stm::new();
        let v: BoostedVec<u32> = BoostedVec::new("vec.basic");
        stm.run(|txn| {
            assert_eq!(v.push(txn, 10)?, 0);
            assert_eq!(v.push(txn, 20)?, 1);
            assert_eq!(v.len(txn)?, 2);
            assert!(!v.is_empty(txn)?);
            assert!(v.set(txn, 0, 11)?);
            assert!(!v.set(txn, 9, 99)?);
            assert_eq!(v.get(txn, 0)?, Some(11));
            assert_eq!(v.get(txn, 9)?, None);
            assert_eq!(v.modify(txn, 1, |x| *x += 1)?, Some(21));
            assert_eq!(v.modify(txn, 9, |x| *x += 1)?, None);
            assert_eq!(v.pop(txn)?, Some(21));
            Ok(())
        })
        .unwrap();
        assert_eq!(v.snapshot(), vec![11]);
    }

    #[test]
    fn abort_undoes_push_set_pop() {
        let stm = Stm::new();
        let v: BoostedVec<i64> = BoostedVec::new("vec.abort");
        v.seed_push(1);
        v.seed_push(2);

        let txn = stm.begin();
        v.push(&txn, 3).unwrap();
        v.set(&txn, 0, 100).unwrap();
        v.pop(&txn).unwrap();
        v.pop(&txn).unwrap();
        txn.abort().unwrap();
        assert_eq!(v.snapshot(), vec![1, 2]);
    }

    #[test]
    fn element_updates_on_distinct_indices_commute() {
        let stm = Stm::new();
        let v: BoostedVec<u64> = BoostedVec::new("vec.disjoint");
        v.seed_push(0);
        v.seed_push(0);
        let t1 = stm.begin();
        let t2 = stm.begin();
        v.set(&t1, 0, 7).unwrap();
        v.set(&t2, 1, 8).unwrap();
        let p1 = t1.commit().unwrap();
        let p2 = t2.commit().unwrap();
        assert!(!p1.profile.conflicts_with(&p2.profile));
    }

    #[test]
    fn pushes_conflict_via_length_lock() {
        let stm = Stm::new();
        let v: BoostedVec<u64> = BoostedVec::new("vec.pushes");
        let t1 = stm.begin();
        v.push(&t1, 1).unwrap();
        let p1 = t1.commit().unwrap();
        let t2 = stm.begin();
        v.push(&t2, 2).unwrap();
        let p2 = t2.commit().unwrap();
        assert!(p1.profile.conflicts_with(&p2.profile));
    }

    #[test]
    fn pop_empty_is_none() {
        let stm = Stm::new();
        let v: BoostedVec<u8> = BoostedVec::new("vec.empty");
        stm.run(|txn| {
            assert_eq!(v.pop(txn)?, None);
            Ok(())
        })
        .unwrap();
    }

    proptest! {
        /// A random interleaving of pushes/pops/sets aborted must restore
        /// the initial contents exactly.
        #[test]
        fn prop_abort_restores(initial in proptest::collection::vec(any::<u16>(), 0..12),
                               ops in proptest::collection::vec((0u8..3, 0usize..16, any::<u16>()), 0..24)) {
            let stm = Stm::new();
            let v: BoostedVec<u16> = BoostedVec::new("vec.prop");
            for x in &initial {
                v.seed_push(*x);
            }
            let txn = stm.begin();
            for (op, idx, val) in &ops {
                match op % 3 {
                    0 => { v.push(&txn, *val).unwrap(); }
                    1 => { v.pop(&txn).unwrap(); }
                    _ => { v.set(&txn, *idx, *val).unwrap(); }
                }
            }
            txn.abort().unwrap();
            prop_assert_eq!(v.snapshot(), initial);
        }
    }
}
