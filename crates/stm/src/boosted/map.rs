//! A boosted hash map: the workhorse behind Solidity `mapping` state
//! variables.

use crate::error::StmError;
use crate::lock::{LockMode, LockSpace};
use crate::txn::{Transaction, UndoSink};
use cc_primitives::fx::FxHashMap;
use parking_lot::RwLock;
use std::any::Any;
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

/// A concurrent map whose per-key operations are speculative atomic
/// actions.
///
/// Each logical key maps to its own abstract lock, so operations on
/// distinct keys commute and run in parallel, while operations on the same
/// key serialize — exactly the behaviour of the paper's boosted hashtable
/// (binding Alice's vote commutes with binding Bob's, but not with deleting
/// Alice's). Reads (`get`/`contains_key`) take the key lock in
/// [`LockMode::Shared`], so concurrent reads of the same key also commute;
/// mutations take it exclusively, and a read followed by a mutation of the
/// same key upgrades.
///
/// Mutations log their inverse as a typed `(key, prior value)` undo entry
/// moved into a per-map [`UndoSink`] — no boxed closure, no value clones
/// on the common path. Mutators therefore do not return the previous
/// value; use [`BoostedMap::replace`] / [`BoostedMap::take`] when the
/// prior binding is needed (they clone it once into the undo log).
///
/// # Example
///
/// ```
/// use cc_stm::{Stm, BoostedMap};
/// let stm = Stm::new();
/// let m: BoostedMap<u64, String> = BoostedMap::new("accounts");
/// stm.run(|txn| {
///     m.insert(txn, 7, "alice".to_string())?;
///     assert_eq!(m.get(txn, &7)?, Some("alice".to_string()));
///     Ok(())
/// }).unwrap();
/// ```
pub struct BoostedMap<K, V> {
    name: String,
    space: LockSpace,
    inner: Arc<RwLock<FxHashMap<K, V>>>,
}

/// The typed undo sink of one [`BoostedMap`]: `(key, prior binding)`
/// entries, most recent last.
struct MapUndo<K, V> {
    target: Arc<RwLock<FxHashMap<K, V>>>,
    entries: Vec<(K, Option<V>)>,
}

impl<K, V> UndoSink for MapUndo<K, V>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    fn undo_last(&mut self) {
        if let Some((key, prior)) = self.entries.pop() {
            let mut map = self.target.write();
            match prior {
                Some(value) => {
                    map.insert(key, value);
                }
                None => {
                    map.remove(&key);
                }
            }
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<K, V> Clone for BoostedMap<K, V> {
    fn clone(&self) -> Self {
        BoostedMap {
            name: self.name.clone(),
            space: self.space,
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<K, V> fmt::Debug for BoostedMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoostedMap")
            .field("name", &self.name)
            .field("len", &self.inner.read().len())
            .finish()
    }
}

impl<K, V> BoostedMap<K, V>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty boosted map whose abstract locks live in the lock
    /// space derived from `name` (use a globally unique, stable name such
    /// as `"Ballot.voters"`).
    pub fn new(name: &str) -> Self {
        BoostedMap {
            name: name.to_string(),
            space: LockSpace::new(name),
            inner: Arc::new(RwLock::new(FxHashMap::default())),
        }
    }

    /// Records one `(key, prior)` inverse entry with this map's undo sink.
    fn log_undo(&self, txn: &Transaction, key: K, prior: Option<V>) {
        txn.log_undo_typed(
            Arc::as_ptr(&self.inner) as usize,
            || MapUndo {
                target: Arc::clone(&self.inner),
                entries: Vec::new(),
            },
            |sink| sink.entries.push((key, prior)),
        );
    }

    /// The stable name this map was created with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The lock space backing this map (exposed for diagnostics).
    pub fn lock_space(&self) -> LockSpace {
        self.space
    }

    /// Transactionally reads the value bound to `key`. Takes the key lock
    /// in shared mode: concurrent reads of the same key commute.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures (deadlock victim, closed
    /// transaction).
    pub fn get(&self, txn: &Transaction, key: &K) -> Result<Option<V>, StmError> {
        txn.acquire(self.space.lock_for(key), LockMode::Shared)?;
        Ok(self.inner.read().get(key).cloned())
    }

    /// Transactionally checks whether `key` is bound (shared mode).
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn contains_key(&self, txn: &Transaction, key: &K) -> Result<bool, StmError> {
        txn.acquire(self.space.lock_for(key), LockMode::Shared)?;
        Ok(self.inner.read().contains_key(key))
    }

    /// Transactionally binds `key` to `value`. The previous binding (if
    /// any) moves into the undo log — one write-lock pass, no clones.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn insert(&self, txn: &Transaction, key: K, value: V) -> Result<(), StmError> {
        txn.acquire(self.space.lock_for(&key), LockMode::Exclusive)?;
        let previous = self.inner.write().insert(key.clone(), value);
        self.log_undo(txn, key, previous);
        Ok(())
    }

    /// Like [`BoostedMap::insert`], but returns the previous binding
    /// (cloning it once into the undo log).
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn replace(&self, txn: &Transaction, key: K, value: V) -> Result<Option<V>, StmError> {
        txn.acquire(self.space.lock_for(&key), LockMode::Exclusive)?;
        let previous = self.inner.write().insert(key.clone(), value);
        self.log_undo(txn, key, previous.clone());
        Ok(previous)
    }

    /// Transactionally removes the binding for `key`, reporting whether
    /// one existed. The removed value moves into the undo log; use
    /// [`BoostedMap::take`] to get it back.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn remove(&self, txn: &Transaction, key: &K) -> Result<bool, StmError> {
        txn.acquire(self.space.lock_for(key), LockMode::Exclusive)?;
        let previous = self.inner.write().remove(key);
        let existed = previous.is_some();
        if existed {
            self.log_undo(txn, key.clone(), previous);
        }
        Ok(existed)
    }

    /// Transactionally removes and returns the binding for `key` (cloning
    /// it once into the undo log).
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn take(&self, txn: &Transaction, key: &K) -> Result<Option<V>, StmError> {
        txn.acquire(self.space.lock_for(key), LockMode::Exclusive)?;
        let previous = self.inner.write().remove(key);
        if previous.is_some() {
            self.log_undo(txn, key.clone(), previous.clone());
        }
        Ok(previous)
    }

    /// Transactionally applies `f` to the value bound to `key` (inserting
    /// `default` first if absent), in place: a single write-lock pass,
    /// cloning the prior value once for the undo log (and not at all when
    /// the key was absent).
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn update_or(
        &self,
        txn: &Transaction,
        key: K,
        default: V,
        f: impl FnOnce(&mut V),
    ) -> Result<(), StmError> {
        txn.acquire(self.space.lock_for(&key), LockMode::Exclusive)?;
        let prior = {
            let mut map = self.inner.write();
            match map.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(mut entry) => {
                    let prior = entry.get().clone();
                    f(entry.get_mut());
                    Some(prior)
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    let mut value = default;
                    f(&mut value);
                    entry.insert(value);
                    None
                }
            }
        };
        self.log_undo(txn, key, prior);
        Ok(())
    }

    /// Non-transactional read used only during setup (e.g. building a
    /// genesis state) and in tests. Not linearized with respect to running
    /// transactions.
    pub fn peek(&self, key: &K) -> Option<V> {
        self.inner.read().get(key).cloned()
    }

    /// Non-transactional insert used only during setup.
    pub fn seed(&self, key: K, value: V) {
        self.inner.write().insert(key, value);
    }

    /// Number of bindings (non-transactional; setup/tests only).
    pub fn snapshot_len(&self) -> usize {
        self.inner.read().len()
    }

    /// A point-in-time copy of the whole map (non-transactional; used for
    /// state commitment and world cloning).
    pub fn snapshot(&self) -> Vec<(K, V)> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Replaces the entire contents (non-transactional; used to restore a
    /// world snapshot before validation).
    pub fn restore(&self, entries: impl IntoIterator<Item = (K, V)>) {
        let mut map = self.inner.write();
        map.clear();
        map.extend(entries);
    }

    /// Removes every binding (non-transactional).
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Stm;
    use proptest::prelude::*;
    use std::collections::HashMap as StdMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let stm = Stm::new();
        let m: BoostedMap<String, u64> = BoostedMap::new("t.map");
        stm.run(|txn| {
            m.insert(txn, "a".into(), 1)?;
            assert_eq!(m.replace(txn, "a".into(), 2)?, Some(1));
            assert_eq!(m.get(txn, &"a".to_string())?, Some(2));
            assert_eq!(m.take(txn, &"a".to_string())?, Some(2));
            assert_eq!(m.get(txn, &"a".to_string())?, None);
            assert!(!m.remove(txn, &"a".to_string())?);
            m.insert(txn, "b".into(), 9)?;
            assert!(m.remove(txn, &"b".to_string())?);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn abort_undoes_all_mutations() {
        let stm = Stm::new();
        let m: BoostedMap<u32, u32> = BoostedMap::new("t.abort");
        m.seed(1, 10);
        m.seed(2, 20);

        let txn = stm.begin();
        m.insert(&txn, 1, 11).unwrap();
        m.remove(&txn, &2).unwrap();
        m.insert(&txn, 3, 30).unwrap();
        m.update_or(&txn, 4, 0, |v| *v += 5).unwrap();
        txn.abort().unwrap();

        assert_eq!(m.peek(&1), Some(10));
        assert_eq!(m.peek(&2), Some(20));
        assert_eq!(m.peek(&3), None);
        assert_eq!(m.peek(&4), None);
        assert_eq!(m.snapshot_len(), 2);
    }

    #[test]
    fn distinct_keys_do_not_conflict() {
        let stm = Stm::new();
        let m: BoostedMap<u64, u64> = BoostedMap::new("t.disjoint");
        let t1 = stm.begin();
        let t2 = stm.begin();
        m.insert(&t1, 1, 100).unwrap();
        // Second transaction can proceed on a different key without
        // blocking even though t1 has not committed.
        m.insert(&t2, 2, 200).unwrap();
        let p1 = t1.commit().unwrap();
        let p2 = t2.commit().unwrap();
        assert!(!p1.profile.conflicts_with(&p2.profile));
    }

    #[test]
    fn same_key_profiles_conflict() {
        let stm = Stm::new();
        let m: BoostedMap<u64, u64> = BoostedMap::new("t.conflict");
        let t1 = stm.begin();
        m.insert(&t1, 5, 1).unwrap();
        let p1 = t1.commit().unwrap();
        let t2 = stm.begin();
        m.insert(&t2, 5, 2).unwrap();
        let p2 = t2.commit().unwrap();
        assert!(p1.profile.conflicts_with(&p2.profile));
        // Counter ordering reflects commit order.
        let lock = m.lock_space().lock_for(&5u64);
        assert!(p1.profile.entry(lock).unwrap().counter < p2.profile.entry(lock).unwrap().counter);
    }

    #[test]
    fn update_or_creates_and_updates() {
        let stm = Stm::new();
        let m: BoostedMap<&'static str, u64> = BoostedMap::new("t.update");
        stm.run(|txn| {
            m.update_or(txn, "x", 0, |v| *v += 3)?;
            m.update_or(txn, "x", 0, |v| *v += 3)?;
            assert_eq!(m.get(txn, &"x")?, Some(6));
            Ok(())
        })
        .unwrap();
        assert_eq!(m.peek(&"x"), Some(6));
    }

    #[test]
    fn same_key_reads_do_not_conflict() {
        let stm = Stm::new();
        let m: BoostedMap<u64, u64> = BoostedMap::new("t.shared");
        m.seed(1, 10);
        // Two transactions hold the shared lock on the same key at the
        // same time — neither blocks, and their profiles commute.
        let t1 = stm.begin();
        let t2 = stm.begin();
        assert_eq!(m.get(&t1, &1).unwrap(), Some(10));
        assert_eq!(m.get(&t2, &1).unwrap(), Some(10));
        let p1 = t1.commit().unwrap();
        let p2 = t2.commit().unwrap();
        assert!(!p1.profile.conflicts_with(&p2.profile));
        // A writer's profile conflicts with a reader's.
        let t3 = stm.begin();
        m.insert(&t3, 1, 11).unwrap();
        let p3 = t3.commit().unwrap();
        assert!(p1.profile.conflicts_with(&p3.profile));
    }

    #[test]
    fn read_then_write_upgrades_to_exclusive_profile() {
        let stm = Stm::new();
        let m: BoostedMap<u64, u64> = BoostedMap::new("t.upgrade");
        m.seed(1, 10);
        let txn = stm.begin();
        m.get(&txn, &1).unwrap();
        m.insert(&txn, 1, 11).unwrap();
        let p = txn.commit().unwrap();
        let lock = m.lock_space().lock_for(&1u64);
        assert_eq!(p.profile.entry(lock).unwrap().mode, LockMode::Exclusive);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let m: BoostedMap<u32, String> = BoostedMap::new("t.snap");
        m.seed(1, "one".into());
        m.seed(2, "two".into());
        let snap = m.snapshot();
        m.clear();
        assert_eq!(m.snapshot_len(), 0);
        m.restore(snap.clone());
        let mut roundtrip = m.snapshot();
        let mut original = snap;
        roundtrip.sort();
        original.sort();
        assert_eq!(roundtrip, original);
    }

    proptest! {
        /// Applying a random batch of operations inside a transaction and
        /// aborting must leave the map exactly as it started; committing
        /// must leave it equal to a reference HashMap that applied the same
        /// operations.
        #[test]
        fn prop_abort_restores_commit_applies(
            seed_entries in proptest::collection::vec((0u8..32, 0u64..1000), 0..16),
            ops in proptest::collection::vec((0u8..3, 0u8..32, 0u64..1000), 0..32),
            commit in any::<bool>(),
        ) {
            let stm = Stm::new();
            let m: BoostedMap<u8, u64> = BoostedMap::new("t.prop");
            let mut reference: StdMap<u8, u64> = StdMap::new();
            for (k, v) in &seed_entries {
                m.seed(*k, *v);
                reference.insert(*k, *v);
            }
            let before: StdMap<u8, u64> = m.snapshot().into_iter().collect();

            let txn = stm.begin();
            for (op, k, v) in &ops {
                match op % 3 {
                    0 => {
                        m.insert(&txn, *k, *v).unwrap();
                        reference.insert(*k, *v);
                    }
                    1 => {
                        m.remove(&txn, k).unwrap();
                        reference.remove(k);
                    }
                    _ => {
                        m.update_or(&txn, *k, 0, |x| *x = x.wrapping_add(*v)).unwrap();
                        let prev = reference.get(k).copied().unwrap_or(0);
                        reference.insert(*k, prev.wrapping_add(*v));
                    }
                }
            }
            if commit {
                txn.commit().unwrap();
                let after: StdMap<u8, u64> = m.snapshot().into_iter().collect();
                prop_assert_eq!(after, reference);
            } else {
                txn.abort().unwrap();
                let after: StdMap<u8, u64> = m.snapshot().into_iter().collect();
                prop_assert_eq!(after, before);
            }
        }
    }
}
