//! A boosted hash map: the workhorse behind Solidity `mapping` state
//! variables.

use crate::error::StmError;
use crate::lock::{LockMode, LockSpace};
use crate::txn::{Transaction, UndoSink};
use cc_primitives::fnv::fnv1a_of;
use cc_primitives::fx::ShardedRawTable;
use std::any::Any;
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

/// A concurrent map whose per-key operations are speculative atomic
/// actions.
///
/// Each logical key maps to its own abstract lock, so operations on
/// distinct keys commute and run in parallel, while operations on the same
/// key serialize — exactly the behaviour of the paper's boosted hashtable
/// (binding Alice's vote commutes with binding Bob's, but not with deleting
/// Alice's). Reads (`get`/`contains_key`) take the key lock in
/// [`LockMode::Shared`], so concurrent reads of the same key also commute;
/// mutations take it exclusively, and a read followed by a mutation of the
/// same key upgrades.
///
/// Mutations log their inverse as a typed `(key, prior value)` undo entry
/// moved into a per-map [`UndoSink`] — no boxed closure, no value clones
/// on the common path. Mutators therefore do not return the previous
/// value; use [`BoostedMap::replace`] / [`BoostedMap::take`] when the
/// prior binding is needed (they clone it once into the undo log).
///
/// Every operation hashes its key **exactly once**: the FNV-64
/// fingerprint computed up front becomes the abstract-lock key *and* the
/// backing-store hash, and the mutation path enters the transaction
/// through the fused [`Transaction::acquire_and_log`].
///
/// The backing store is a [`ShardedRawTable`] — **no reader-writer lock**.
/// The held abstract lock is what makes the raw access sound (two-phase
/// locking serializes conflicting operations); a word-sized per-shard
/// latch protects only the table structure shared between distinct keys,
/// and debug builds prove the abstract lock is actually held before every
/// raw access ([`Transaction::debug_assert_held`]). See "Safety argument"
/// in the crate README.
///
/// # Example
///
/// ```
/// use cc_stm::{Stm, BoostedMap};
/// let stm = Stm::new();
/// let m: BoostedMap<u64, String> = BoostedMap::new("accounts");
/// stm.run(|txn| {
///     m.insert(txn, 7, "alice".to_string())?;
///     assert_eq!(m.get(txn, &7)?, Some("alice".to_string()));
///     assert_eq!(m.get_with(txn, &7, |v| v.map(String::len))?, Some(5));
///     Ok(())
/// }).unwrap();
/// ```
pub struct BoostedMap<K, V> {
    name: String,
    space: LockSpace,
    inner: Arc<ShardedRawTable<K, V>>,
}

/// The typed undo sink of one [`BoostedMap`]: `(key hash, key, prior
/// binding)` entries, most recent last. The fingerprint rides along so
/// replaying an inverse never re-hashes the key either. The `Arc` on the
/// backing store also pins the sink token (the store's address) for as
/// long as the sink lives — a recycled transaction arena can therefore
/// keep the sink across transactions without token collisions.
struct MapUndo<K, V> {
    target: Arc<ShardedRawTable<K, V>>,
    entries: Vec<(u64, K, Option<V>)>,
}

impl<K, V> UndoSink for MapUndo<K, V>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    fn undo_last(&mut self) {
        if let Some((hash, key, prior)) = self.entries.pop() {
            // Safe without the transaction handle: inverses replay while
            // the aborting transaction still holds the key's abstract lock.
            self.target.with(hash, |map| match prior {
                Some(value) => {
                    map.insert_hashed(hash, key, value);
                }
                None => {
                    map.remove_hashed(hash, &key);
                }
            });
        }
    }
    fn reset(&mut self) {
        self.entries.clear();
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<K, V> Clone for BoostedMap<K, V> {
    fn clone(&self) -> Self {
        BoostedMap {
            name: self.name.clone(),
            space: self.space,
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<K, V> fmt::Debug for BoostedMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoostedMap")
            .field("name", &self.name)
            .field("len", &self.inner.len())
            .finish()
    }
}

impl<K, V> BoostedMap<K, V>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty boosted map whose abstract locks live in the lock
    /// space derived from `name` (use a globally unique, stable name such
    /// as `"Ballot.voters"`).
    pub fn new(name: &str) -> Self {
        BoostedMap {
            name: name.to_string(),
            space: LockSpace::new(name),
            inner: Arc::new(ShardedRawTable::new()),
        }
    }

    /// The undo-sink token of this map (the backing storage address).
    fn undo_token(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// The sink constructor passed to the transaction on first use.
    fn undo_init(&self) -> impl FnOnce() -> MapUndo<K, V> {
        let target = Arc::clone(&self.inner);
        || MapUndo {
            target,
            entries: Vec::new(),
        }
    }

    /// The stable name this map was created with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The lock space backing this map (exposed for diagnostics).
    pub fn lock_space(&self) -> LockSpace {
        self.space
    }

    /// Transactionally reads the value bound to `key`. Takes the key lock
    /// in shared mode: concurrent reads of the same key commute.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures (deadlock victim, closed
    /// transaction).
    pub fn get(&self, txn: &Transaction, key: &K) -> Result<Option<V>, StmError> {
        let h = fnv1a_of(key);
        let lock = self.space.lock_for_hashed(h);
        txn.acquire(lock, LockMode::Shared)?;
        txn.debug_assert_held(lock);
        Ok(self.inner.with(h, |map| map.get_hashed(h, key).cloned()))
    }

    /// Transactionally reads the value bound to `key` **by reference**:
    /// `f` observes the binding in place and only what it returns is
    /// materialized. Use this when the caller immediately discards,
    /// compares or projects the value — it skips the `V: Clone` that
    /// [`BoostedMap::get`] pays per read. Same shared-mode locking.
    ///
    /// `f` runs under the store's shard latch; it must not touch the
    /// transaction or this map.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn get_with<R>(
        &self,
        txn: &Transaction,
        key: &K,
        f: impl FnOnce(Option<&V>) -> R,
    ) -> Result<R, StmError> {
        let h = fnv1a_of(key);
        let lock = self.space.lock_for_hashed(h);
        txn.acquire(lock, LockMode::Shared)?;
        txn.debug_assert_held(lock);
        Ok(self.inner.with(h, |map| f(map.get_hashed(h, key))))
    }

    /// Transactionally checks whether `key` is bound (shared mode).
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn contains_key(&self, txn: &Transaction, key: &K) -> Result<bool, StmError> {
        let h = fnv1a_of(key);
        let lock = self.space.lock_for_hashed(h);
        txn.acquire(lock, LockMode::Shared)?;
        txn.debug_assert_held(lock);
        Ok(self.inner.with(h, |map| map.contains_hashed(h, key)))
    }

    /// Transactionally binds `key` to `value`. The previous binding (if
    /// any) moves into the undo log — one write-lock pass, no clones.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn insert(&self, txn: &Transaction, key: K, value: V) -> Result<(), StmError> {
        let h = fnv1a_of(&key);
        txn.acquire_and_log(
            self.space.lock_for_hashed(h),
            LockMode::Exclusive,
            self.undo_token(),
            self.undo_init(),
            || {
                let previous = self
                    .inner
                    .with(h, |map| map.insert_hashed(h, key.clone(), value));
                (key, previous)
            },
            |sink, (key, previous)| {
                sink.entries.push((h, key, previous));
                true
            },
        )
    }

    /// Like [`BoostedMap::insert`], but returns the previous binding
    /// (cloning it once into the undo log).
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn replace(&self, txn: &Transaction, key: K, value: V) -> Result<Option<V>, StmError> {
        let h = fnv1a_of(&key);
        let mut returned = None;
        txn.acquire_and_log(
            self.space.lock_for_hashed(h),
            LockMode::Exclusive,
            self.undo_token(),
            self.undo_init(),
            || {
                let previous = self
                    .inner
                    .with(h, |map| map.insert_hashed(h, key.clone(), value));
                returned = previous.clone();
                (key, previous)
            },
            |sink, (key, previous)| {
                sink.entries.push((h, key, previous));
                true
            },
        )?;
        Ok(returned)
    }

    /// Transactionally removes the binding for `key`, reporting whether
    /// one existed. The removed value moves into the undo log; use
    /// [`BoostedMap::take`] to get it back.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn remove(&self, txn: &Transaction, key: &K) -> Result<bool, StmError> {
        let h = fnv1a_of(key);
        let mut existed = false;
        txn.acquire_and_log(
            self.space.lock_for_hashed(h),
            LockMode::Exclusive,
            self.undo_token(),
            self.undo_init(),
            || {
                let previous = self.inner.with(h, |map| map.remove_hashed(h, key));
                existed = previous.is_some();
                previous.map(|value| (key.clone(), value))
            },
            |sink, removed| match removed {
                Some((key, value)) => {
                    sink.entries.push((h, key, Some(value)));
                    true
                }
                None => false,
            },
        )?;
        Ok(existed)
    }

    /// Transactionally removes and returns the binding for `key` (cloning
    /// it once into the undo log).
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn take(&self, txn: &Transaction, key: &K) -> Result<Option<V>, StmError> {
        let h = fnv1a_of(key);
        let mut returned = None;
        txn.acquire_and_log(
            self.space.lock_for_hashed(h),
            LockMode::Exclusive,
            self.undo_token(),
            self.undo_init(),
            || {
                let previous = self.inner.with(h, |map| map.remove_hashed(h, key));
                returned = previous.clone();
                previous.map(|value| (key.clone(), value))
            },
            |sink, removed| match removed {
                Some((key, value)) => {
                    sink.entries.push((h, key, Some(value)));
                    true
                }
                None => false,
            },
        )?;
        Ok(returned)
    }

    /// Transactionally applies `f` to the value bound to `key` (inserting
    /// `default` first if absent), in place: a single write-lock pass,
    /// cloning the prior value once for the undo log (and not at all when
    /// the key was absent).
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn update_or(
        &self,
        txn: &Transaction,
        key: K,
        default: V,
        f: impl FnOnce(&mut V),
    ) -> Result<(), StmError> {
        let h = fnv1a_of(&key);
        txn.acquire_and_log(
            self.space.lock_for_hashed(h),
            LockMode::Exclusive,
            self.undo_token(),
            self.undo_init(),
            || {
                self.inner.with(h, |map| {
                    if let Some(slot) = map.get_hashed_mut(h, &key) {
                        let prior = slot.clone();
                        f(slot);
                        (key, Some(prior))
                    } else {
                        let mut value = default;
                        f(&mut value);
                        map.insert_hashed(h, key.clone(), value);
                        (key, None)
                    }
                })
            },
            |sink, (key, prior)| {
                sink.entries.push((h, key, prior));
                true
            },
        )
    }

    /// Non-transactional read used only during setup (e.g. building a
    /// genesis state) and in tests. Not linearized with respect to running
    /// transactions.
    pub fn peek(&self, key: &K) -> Option<V> {
        let h = fnv1a_of(key);
        self.inner.with(h, |map| map.get_hashed(h, key).cloned())
    }

    /// Non-transactional insert used only during setup.
    pub fn seed(&self, key: K, value: V) {
        let h = fnv1a_of(&key);
        self.inner.with(h, |map| {
            map.insert_hashed(h, key, value);
        });
    }

    /// Non-transactional removal, the counterpart of [`seed`](Self::seed):
    /// used during setup and when a finalized multi-version overlay
    /// flattens a tombstone into the base map.
    pub fn seed_remove(&self, key: &K) {
        let h = fnv1a_of(key);
        self.inner.with(h, |map| {
            map.remove_hashed(h, key);
        });
    }

    /// Number of bindings (non-transactional; setup/tests only).
    pub fn snapshot_len(&self) -> usize {
        self.inner.len()
    }

    /// A point-in-time copy of the whole map (non-transactional; used for
    /// state commitment and world cloning). Consistent only when callers
    /// quiesce transactions first, which the world's snapshot path does.
    pub fn snapshot(&self) -> Vec<(K, V)> {
        self.inner.fold(Vec::new(), |mut acc, map| {
            acc.extend(map.iter().map(|(k, v)| (k.clone(), v.clone())));
            acc
        })
    }

    /// Replaces the entire contents (non-transactional; used to restore a
    /// world snapshot before validation).
    pub fn restore(&self, entries: impl IntoIterator<Item = (K, V)>) {
        self.inner.clear();
        for (key, value) in entries {
            let h = fnv1a_of(&key);
            self.inner.with(h, |map| {
                map.insert_hashed(h, key, value);
            });
        }
    }

    /// Removes every binding (non-transactional).
    pub fn clear(&self) {
        self.inner.clear();
    }

    /// Debug-only test hook: performs a raw backing-store read **without**
    /// acquiring the abstract lock, so tests can prove
    /// [`Transaction::debug_assert_held`] refuses unlicensed raw access.
    #[cfg(debug_assertions)]
    #[doc(hidden)]
    pub fn debug_raw_get_unlocked(&self, txn: &Transaction, key: &K) -> Option<V> {
        let h = fnv1a_of(key);
        txn.debug_assert_held(self.space.lock_for_hashed(h));
        self.inner.with(h, |map| map.get_hashed(h, key).cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Stm;
    use proptest::prelude::*;
    use std::collections::HashMap as StdMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let stm = Stm::new();
        let m: BoostedMap<String, u64> = BoostedMap::new("t.map");
        stm.run(|txn| {
            m.insert(txn, "a".into(), 1)?;
            assert_eq!(m.replace(txn, "a".into(), 2)?, Some(1));
            assert_eq!(m.get(txn, &"a".to_string())?, Some(2));
            assert_eq!(m.take(txn, &"a".to_string())?, Some(2));
            assert_eq!(m.get(txn, &"a".to_string())?, None);
            assert!(!m.remove(txn, &"a".to_string())?);
            m.insert(txn, "b".into(), 9)?;
            assert!(m.remove(txn, &"b".to_string())?);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn abort_undoes_all_mutations() {
        let stm = Stm::new();
        let m: BoostedMap<u32, u32> = BoostedMap::new("t.abort");
        m.seed(1, 10);
        m.seed(2, 20);

        let txn = stm.begin();
        m.insert(&txn, 1, 11).unwrap();
        m.remove(&txn, &2).unwrap();
        m.insert(&txn, 3, 30).unwrap();
        m.update_or(&txn, 4, 0, |v| *v += 5).unwrap();
        txn.abort().unwrap();

        assert_eq!(m.peek(&1), Some(10));
        assert_eq!(m.peek(&2), Some(20));
        assert_eq!(m.peek(&3), None);
        assert_eq!(m.peek(&4), None);
        assert_eq!(m.snapshot_len(), 2);
    }

    #[test]
    fn distinct_keys_do_not_conflict() {
        let stm = Stm::new();
        let m: BoostedMap<u64, u64> = BoostedMap::new("t.disjoint");
        let t1 = stm.begin();
        let t2 = stm.begin();
        m.insert(&t1, 1, 100).unwrap();
        // Second transaction can proceed on a different key without
        // blocking even though t1 has not committed.
        m.insert(&t2, 2, 200).unwrap();
        let p1 = t1.commit().unwrap();
        let p2 = t2.commit().unwrap();
        assert!(!p1.profile.conflicts_with(&p2.profile));
    }

    #[test]
    fn same_key_profiles_conflict() {
        let stm = Stm::new();
        let m: BoostedMap<u64, u64> = BoostedMap::new("t.conflict");
        let t1 = stm.begin();
        m.insert(&t1, 5, 1).unwrap();
        let p1 = t1.commit().unwrap();
        let t2 = stm.begin();
        m.insert(&t2, 5, 2).unwrap();
        let p2 = t2.commit().unwrap();
        assert!(p1.profile.conflicts_with(&p2.profile));
        // Counter ordering reflects commit order.
        let lock = m.lock_space().lock_for(&5u64);
        assert!(p1.profile.entry(lock).unwrap().counter < p2.profile.entry(lock).unwrap().counter);
    }

    #[test]
    fn update_or_creates_and_updates() {
        let stm = Stm::new();
        let m: BoostedMap<&'static str, u64> = BoostedMap::new("t.update");
        stm.run(|txn| {
            m.update_or(txn, "x", 0, |v| *v += 3)?;
            m.update_or(txn, "x", 0, |v| *v += 3)?;
            assert_eq!(m.get(txn, &"x")?, Some(6));
            Ok(())
        })
        .unwrap();
        assert_eq!(m.peek(&"x"), Some(6));
    }

    #[test]
    fn same_key_reads_do_not_conflict() {
        let stm = Stm::new();
        let m: BoostedMap<u64, u64> = BoostedMap::new("t.shared");
        m.seed(1, 10);
        // Two transactions hold the shared lock on the same key at the
        // same time — neither blocks, and their profiles commute.
        let t1 = stm.begin();
        let t2 = stm.begin();
        assert_eq!(m.get(&t1, &1).unwrap(), Some(10));
        assert_eq!(m.get(&t2, &1).unwrap(), Some(10));
        let p1 = t1.commit().unwrap();
        let p2 = t2.commit().unwrap();
        assert!(!p1.profile.conflicts_with(&p2.profile));
        // A writer's profile conflicts with a reader's.
        let t3 = stm.begin();
        m.insert(&t3, 1, 11).unwrap();
        let p3 = t3.commit().unwrap();
        assert!(p1.profile.conflicts_with(&p3.profile));
    }

    #[test]
    fn read_then_write_upgrades_to_exclusive_profile() {
        let stm = Stm::new();
        let m: BoostedMap<u64, u64> = BoostedMap::new("t.upgrade");
        m.seed(1, 10);
        let txn = stm.begin();
        m.get(&txn, &1).unwrap();
        m.insert(&txn, 1, 11).unwrap();
        let p = txn.commit().unwrap();
        let lock = m.lock_space().lock_for(&1u64);
        assert_eq!(p.profile.entry(lock).unwrap().mode, LockMode::Exclusive);
    }

    #[test]
    fn same_key_upgrade_holds_one_lock_and_publishes_exclusive() {
        // The contract-typical `get` → `insert` on one key: the Shared
        // hold is upgraded in place, so the transaction tracks exactly
        // one held lock (not a Shared + an Exclusive entry) and the
        // published profile carries one entry, Exclusive, with the lock's
        // use counter.
        let stm = Stm::new();
        let m: BoostedMap<u64, u64> = BoostedMap::new("t.upgrade.one");
        m.seed(7, 1);
        let txn = stm.begin();
        assert_eq!(m.get(&txn, &7).unwrap(), Some(1));
        assert_eq!(txn.held_locks(), 1, "shared read holds the key lock");
        m.insert(&txn, 7, 2).unwrap();
        assert_eq!(
            txn.held_locks(),
            1,
            "upgrade reuses the existing held entry"
        );
        let p = txn.commit().unwrap();
        assert_eq!(p.profile.len(), 1, "one profile entry for the one lock");
        let entry = p.profile.entry(m.lock_space().lock_for(&7u64)).unwrap();
        assert_eq!(entry.mode, LockMode::Exclusive);
        assert_eq!(entry.counter, 1, "first commit through this lock");
        // A second same-key transaction orders after it via the counter.
        let txn2 = stm.begin();
        m.get(&txn2, &7).unwrap();
        let p2 = txn2.commit().unwrap();
        assert_eq!(
            p2.profile
                .entry(m.lock_space().lock_for(&7u64))
                .unwrap()
                .counter,
            2
        );
    }

    #[test]
    fn get_with_reads_in_place() {
        let stm = Stm::new();
        let m: BoostedMap<u64, String> = BoostedMap::new("t.get_with");
        m.seed(1, "alice".to_string());
        stm.run(|txn| {
            assert_eq!(m.get_with(txn, &1, |v| v.map(String::len))?, Some(5));
            assert!(!m.get_with(txn, &2, |v| v.is_some())?);
            Ok(())
        })
        .unwrap();
        // get_with takes the same shared lock as get: a writer conflicts.
        let t1 = stm.begin();
        m.get_with(&t1, &1, |_| ()).unwrap();
        let p1 = t1.commit().unwrap();
        let t2 = stm.begin();
        m.insert(&t2, 1, "bob".into()).unwrap();
        let p2 = t2.commit().unwrap();
        assert!(p1.profile.conflicts_with(&p2.profile));
    }

    /// One FNV key-hash per boosted-map operation on the commit path —
    /// the acceptance gate of the single-hash rework, asserted via the
    /// debug-only hash-count hook. (The hook only exists in debug builds,
    /// which is what `cargo test` runs.)
    #[cfg(debug_assertions)]
    #[test]
    fn each_map_op_hashes_its_key_exactly_once() {
        use cc_primitives::fnv::key_hash_count;

        let stm = Stm::new();
        let m: BoostedMap<u64, u64> = BoostedMap::new("t.hashcount");
        m.seed(1, 10);

        let txn = stm.begin();
        let ops: &[(&str, &dyn Fn())] = &[
            ("get", &|| {
                m.get(&txn, &1).unwrap();
            }),
            ("get_with", &|| {
                m.get_with(&txn, &1, |_| ()).unwrap();
            }),
            ("contains_key", &|| {
                m.contains_key(&txn, &1).unwrap();
            }),
            ("insert", &|| {
                m.insert(&txn, 2, 20).unwrap();
            }),
            ("replace", &|| {
                m.replace(&txn, 2, 21).unwrap();
            }),
            ("update_or", &|| {
                m.update_or(&txn, 3, 0, |v| *v += 1).unwrap();
            }),
            ("remove", &|| {
                m.remove(&txn, &2).unwrap();
            }),
            ("take", &|| {
                m.take(&txn, &3).unwrap();
            }),
        ];
        for (name, op) in ops {
            let before = key_hash_count();
            op();
            assert_eq!(
                key_hash_count() - before,
                1,
                "{name} must hash its key exactly once"
            );
        }
        // Commit (release + profile) re-hashes nothing.
        let before = key_hash_count();
        txn.commit().unwrap();
        assert_eq!(key_hash_count() - before, 0, "commit hashes no keys");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let m: BoostedMap<u32, String> = BoostedMap::new("t.snap");
        m.seed(1, "one".into());
        m.seed(2, "two".into());
        let snap = m.snapshot();
        m.clear();
        assert_eq!(m.snapshot_len(), 0);
        m.restore(snap.clone());
        let mut roundtrip = m.snapshot();
        let mut original = snap;
        roundtrip.sort();
        original.sort();
        assert_eq!(roundtrip, original);
    }

    proptest! {
        /// Applying a random batch of operations inside a transaction and
        /// aborting must leave the map exactly as it started; committing
        /// must leave it equal to a reference HashMap that applied the same
        /// operations.
        #[test]
        fn prop_abort_restores_commit_applies(
            seed_entries in proptest::collection::vec((0u8..32, 0u64..1000), 0..16),
            ops in proptest::collection::vec((0u8..3, 0u8..32, 0u64..1000), 0..32),
            commit in any::<bool>(),
        ) {
            let stm = Stm::new();
            let m: BoostedMap<u8, u64> = BoostedMap::new("t.prop");
            let mut reference: StdMap<u8, u64> = StdMap::new();
            for (k, v) in &seed_entries {
                m.seed(*k, *v);
                reference.insert(*k, *v);
            }
            let before: StdMap<u8, u64> = m.snapshot().into_iter().collect();

            let txn = stm.begin();
            for (op, k, v) in &ops {
                match op % 3 {
                    0 => {
                        m.insert(&txn, *k, *v).unwrap();
                        reference.insert(*k, *v);
                    }
                    1 => {
                        m.remove(&txn, k).unwrap();
                        reference.remove(k);
                    }
                    _ => {
                        m.update_or(&txn, *k, 0, |x| *x = x.wrapping_add(*v)).unwrap();
                        let prev = reference.get(k).copied().unwrap_or(0);
                        reference.insert(*k, prev.wrapping_add(*v));
                    }
                }
            }
            if commit {
                txn.commit().unwrap();
                let after: StdMap<u8, u64> = m.snapshot().into_iter().collect();
                prop_assert_eq!(after, reference);
            } else {
                txn.abort().unwrap();
                let after: StdMap<u8, u64> = m.snapshot().into_iter().collect();
                prop_assert_eq!(after, before);
            }
        }
    }

    /// The raw store carries no lock of its own; the debug assertion is
    /// what stands between a buggy collection and a silent race. Prove it
    /// fires on a raw access made without acquiring the abstract lock.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "without holding abstract lock")]
    fn raw_access_without_abstract_lock_panics_in_debug() {
        let stm = Stm::new();
        let m: BoostedMap<u32, u32> = BoostedMap::new("t.unlocked");
        m.seed(1, 10);
        let txn = stm.begin();
        let _ = m.debug_raw_get_unlocked(&txn, &1);
    }
}
