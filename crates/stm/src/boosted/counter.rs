//! A boosted tally map whose `add` operation uses the commutative
//! (additive) lock mode.

use crate::error::StmError;
use crate::lock::{LockMode, LockSpace};
use crate::txn::{Transaction, UndoSink};
use cc_primitives::fnv::fnv1a_of;
use cc_primitives::fx::ShardedRawTable;
use std::any::Any;
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

/// A map from keys to `u64` tallies supporting a commutative `add`.
///
/// `add(k, δ)` acquires the key's abstract lock in **additive** mode:
/// additive holders commute, so many transactions can increment the same
/// tally concurrently (the Ballot contract's
/// `proposals[p].voteCount += weight`). Reads (`get`) take the lock in
/// **shared** mode — they commute with each other but order against all
/// concurrent adds and sets; `set` takes the lock exclusively.
///
/// # Example
///
/// ```
/// use cc_stm::{Stm, BoostedCounterMap};
/// let stm = Stm::new();
/// let votes: BoostedCounterMap<u32> = BoostedCounterMap::new("ballot.vote_counts");
/// stm.run(|txn| {
///     votes.add(txn, 0, 3)?;
///     votes.add(txn, 0, 2)?;
///     Ok(())
/// }).unwrap();
/// assert_eq!(votes.peek(&0), 5);
/// ```
pub struct BoostedCounterMap<K> {
    name: String,
    space: LockSpace,
    inner: Arc<ShardedRawTable<K, u64>>,
}

/// One typed inverse entry of a [`BoostedCounterMap`] mutation; carries
/// the key's FNV fingerprint so inverses never re-hash.
enum CounterUndoEntry<K> {
    /// Subtract the delta an `add` contributed.
    Sub(u64, K, u64),
    /// Restore the prior binding a `set` overwrote.
    Restore(u64, K, Option<u64>),
}

/// The typed undo sink of one [`BoostedCounterMap`].
struct CounterUndo<K> {
    target: Arc<ShardedRawTable<K, u64>>,
    entries: Vec<CounterUndoEntry<K>>,
}

impl<K> UndoSink for CounterUndo<K>
where
    K: Hash + Eq + Send + Sync + 'static,
{
    fn undo_last(&mut self) {
        if let Some(entry) = self.entries.pop() {
            // Inverses replay while the aborting transaction still holds
            // the key's abstract lock, so the raw access is licensed.
            match entry {
                CounterUndoEntry::Sub(hash, key, delta) => {
                    self.target.with(hash, |map| {
                        if let Some(v) = map.get_hashed_mut(hash, &key) {
                            *v = v.saturating_sub(delta);
                        }
                    });
                }
                CounterUndoEntry::Restore(hash, key, prior) => {
                    self.target.with(hash, |map| match prior {
                        Some(v) => {
                            map.insert_hashed(hash, key, v);
                        }
                        None => {
                            map.remove_hashed(hash, &key);
                        }
                    });
                }
            }
        }
    }
    fn reset(&mut self) {
        self.entries.clear();
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<K> Clone for BoostedCounterMap<K> {
    fn clone(&self) -> Self {
        BoostedCounterMap {
            name: self.name.clone(),
            space: self.space,
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<K> fmt::Debug for BoostedCounterMap<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoostedCounterMap")
            .field("name", &self.name)
            .field("len", &self.inner.len())
            .finish()
    }
}

impl<K> BoostedCounterMap<K>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
{
    /// Creates an empty tally map in the lock space derived from `name`.
    pub fn new(name: &str) -> Self {
        BoostedCounterMap {
            name: name.to_string(),
            space: LockSpace::new(name),
            inner: Arc::new(ShardedRawTable::new()),
        }
    }

    /// The undo-sink token of this map (the backing storage address).
    fn undo_token(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// The sink constructor passed to the transaction on first use.
    fn undo_init(&self) -> impl FnOnce() -> CounterUndo<K> {
        let target = Arc::clone(&self.inner);
        || CounterUndo {
            target,
            entries: Vec::new(),
        }
    }

    /// The stable name of this map.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The lock space this map's key locks live in (shared with an
    /// optimistic overlay so footprints match).
    pub fn lock_space(&self) -> LockSpace {
        self.space
    }

    /// Transactionally adds `delta` to the tally for `key` (starting from
    /// zero if absent). Acquires the key lock in additive mode, so
    /// concurrent adds to the same key commute. Returns nothing — reading
    /// the running total would break commutativity; use [`get`](Self::get)
    /// if the current value is needed.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn add(&self, txn: &Transaction, key: K, delta: u64) -> Result<(), StmError> {
        let h = fnv1a_of(&key);
        txn.acquire_and_log(
            self.space.lock_for_hashed(h),
            LockMode::Additive,
            self.undo_token(),
            self.undo_init(),
            || {
                // Concurrent additive holders of the same key commute at
                // the abstract level; the shard latch (inside `with`)
                // orders their physical read-modify-writes.
                self.inner.with(h, |map| {
                    *map.entry_hashed(h, key.clone()).or_insert(0) += delta;
                });
                key
            },
            |sink, key| {
                sink.entries.push(CounterUndoEntry::Sub(h, key, delta));
                true
            },
        )
    }

    /// Transactionally reads the tally for `key` (0 if absent). Shared:
    /// concurrent reads commute, while adds and sets (additive/exclusive
    /// on the same lock) still order against them.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn get(&self, txn: &Transaction, key: &K) -> Result<u64, StmError> {
        let h = fnv1a_of(key);
        let lock = self.space.lock_for_hashed(h);
        txn.acquire(lock, LockMode::Shared)?;
        txn.debug_assert_held(lock);
        Ok(self
            .inner
            .with(h, |map| map.get_hashed(h, key).copied().unwrap_or(0)))
    }

    /// Transactionally overwrites the tally for `key` (exclusive). The
    /// prior binding moves into the undo log.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn set(&self, txn: &Transaction, key: K, value: u64) -> Result<(), StmError> {
        let h = fnv1a_of(&key);
        txn.acquire_and_log(
            self.space.lock_for_hashed(h),
            LockMode::Exclusive,
            self.undo_token(),
            self.undo_init(),
            || {
                let previous = self
                    .inner
                    .with(h, |map| map.insert_hashed(h, key.clone(), value));
                (key, previous)
            },
            |sink, (key, previous)| {
                sink.entries
                    .push(CounterUndoEntry::Restore(h, key, previous));
                true
            },
        )
    }

    /// Non-transactional read (setup, commitment, tests).
    pub fn peek(&self, key: &K) -> u64 {
        let h = fnv1a_of(key);
        self.inner
            .with(h, |map| map.get_hashed(h, key).copied().unwrap_or(0))
    }

    /// Non-transactional write used during setup.
    pub fn seed(&self, key: K, value: u64) {
        let h = fnv1a_of(&key);
        self.inner.with(h, |map| {
            map.insert_hashed(h, key, value);
        });
    }

    /// Point-in-time copy of all tallies.
    ///
    /// Zero tallies are omitted: a tally that was incremented and then
    /// undone (the inverse of `add` is "subtract") must be
    /// indistinguishable from one that was never touched, otherwise state
    /// commitments would depend on aborted speculation.
    pub fn snapshot(&self) -> Vec<(K, u64)> {
        self.inner.fold(Vec::new(), |mut acc, map| {
            acc.extend(
                map.iter()
                    .filter(|(_, v)| **v != 0)
                    .map(|(k, v)| (k.clone(), *v)),
            );
            acc
        })
    }

    /// Replaces all tallies (snapshot restore / setup only).
    pub fn restore(&self, entries: impl IntoIterator<Item = (K, u64)>) {
        self.inner.clear();
        for (key, value) in entries {
            let h = fnv1a_of(&key);
            self.inner.with(h, |map| {
                map.insert_hashed(h, key, value);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Stm;
    use std::sync::Arc as StdArc;

    #[test]
    fn add_get_set() {
        let stm = Stm::new();
        let c: BoostedCounterMap<u8> = BoostedCounterMap::new("cnt.basic");
        stm.run(|txn| {
            c.add(txn, 1, 5)?;
            c.add(txn, 1, 2)?;
            assert_eq!(c.get(txn, &1)?, 7);
            c.set(txn, 2, 100)?;
            assert_eq!(c.get(txn, &2)?, 100);
            Ok(())
        })
        .unwrap();
        assert_eq!(c.peek(&1), 7);
    }

    #[test]
    fn abort_undoes_adds_and_sets() {
        let stm = Stm::new();
        let c: BoostedCounterMap<u8> = BoostedCounterMap::new("cnt.abort");
        c.seed(1, 10);
        let txn = stm.begin();
        c.add(&txn, 1, 5).unwrap();
        c.set(&txn, 2, 7).unwrap();
        txn.abort().unwrap();
        assert_eq!(c.peek(&1), 10);
        assert_eq!(c.peek(&2), 0);
        assert_eq!(c.snapshot().len(), 1);
    }

    #[test]
    fn concurrent_adds_commute_and_do_not_conflict() {
        let stm = Stm::new();
        let c: BoostedCounterMap<u8> = BoostedCounterMap::new("cnt.additive");
        // Both transactions hold the additive lock on the same key at the
        // same time — neither blocks.
        let t1 = stm.begin();
        let t2 = stm.begin();
        c.add(&t1, 0, 1).unwrap();
        c.add(&t2, 0, 2).unwrap();
        let p1 = t1.commit().unwrap();
        let p2 = t2.commit().unwrap();
        assert_eq!(c.peek(&0), 3);
        assert!(!p1.profile.conflicts_with(&p2.profile));
    }

    #[test]
    fn read_conflicts_with_add() {
        let stm = Stm::new();
        let c: BoostedCounterMap<u8> = BoostedCounterMap::new("cnt.read");
        let t1 = stm.begin();
        c.add(&t1, 3, 1).unwrap();
        let p1 = t1.commit().unwrap();
        let t2 = stm.begin();
        c.get(&t2, &3).unwrap();
        let p2 = t2.commit().unwrap();
        assert!(p1.profile.conflicts_with(&p2.profile));
    }

    #[test]
    fn parallel_adds_from_many_threads_sum_correctly() {
        let stm = Stm::new();
        let c: StdArc<BoostedCounterMap<u8>> = StdArc::new(BoostedCounterMap::new("cnt.par"));
        crossbeam::scope(|s| {
            for _ in 0..8 {
                let stm = stm.clone();
                let c = StdArc::clone(&c);
                s.spawn(move |_| {
                    for _ in 0..100 {
                        stm.run(|txn| c.add(txn, 0, 1)).unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(c.peek(&0), 800);
    }

    #[test]
    fn snapshot_restore() {
        let c: BoostedCounterMap<u8> = BoostedCounterMap::new("cnt.snap");
        c.seed(1, 5);
        c.seed(2, 6);
        let snap = c.snapshot();
        c.restore(vec![(9, 9)]);
        assert_eq!(c.peek(&1), 0);
        c.restore(snap);
        assert_eq!(c.peek(&1), 5);
        assert_eq!(c.peek(&2), 6);
    }
}
