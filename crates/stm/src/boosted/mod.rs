//! Boosted (transaction-aware) collections.
//!
//! These are the equivalents of the paper's "boosted hashtables": ordinary
//! concurrent containers whose operations, when performed inside a
//! [`crate::Transaction`], first acquire the appropriate abstract lock and
//! record an inverse operation. Outside of a transaction they can only be
//! inspected through the non-transactional `snapshot`/`restore` methods
//! used for state commitment and test assertions.
//!
//! | Type | Protects | Lock granularity |
//! |------|----------|------------------|
//! | [`BoostedMap`] | a key→value mapping (Solidity `mapping`) | one lock per key |
//! | [`BoostedCell`] | a single scalar state variable | one lock per cell |
//! | [`BoostedVec`] | a dynamically sized array | one lock per index + a length lock |
//! | [`BoostedCounterMap`] | a key→integer tally | per-key lock, **additive** mode for `add` |

mod cell;
mod counter;
mod map;
mod vec;

pub use cell::BoostedCell;
pub use counter::BoostedCounterMap;
pub use map::BoostedMap;
pub use vec::BoostedVec;
