//! Boosted (transaction-aware) collections.
//!
//! These are the equivalents of the paper's "boosted hashtables": ordinary
//! concurrent containers whose operations, when performed inside a
//! [`crate::Transaction`], first acquire the appropriate abstract lock and
//! record an inverse operation. Outside of a transaction they can only be
//! inspected through the non-transactional `snapshot`/`restore` methods
//! used for state commitment and test assertions.
//!
//! | Type | Protects | Lock granularity |
//! |------|----------|------------------|
//! | [`BoostedMap`] | a key→value mapping (Solidity `mapping`) | one lock per key |
//! | [`BoostedCell`] | a single scalar state variable | one lock per cell |
//! | [`BoostedVec`] | a dynamically sized array | one lock per index + a length lock |
//! | [`BoostedCounterMap`] | a key→integer tally | per-key lock, **additive** mode for `add` |

mod cell;
mod counter;
mod map;
mod vec;

pub use cell::BoostedCell;
pub use counter::BoostedCounterMap;
pub use map::BoostedMap;
pub use vec::BoostedVec;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Stm;
    use proptest::prelude::*;

    /// One randomly chosen operation against one of the four collections,
    /// decoded from a `(selector, key, value)` tuple (the proptest shim
    /// supports ranges and tuples, not `prop_oneof`).
    type RawOp = (u8, u8, u64);

    /// A point-in-time fingerprint of all four collections.
    #[allow(clippy::type_complexity)]
    fn fingerprint(
        map: &BoostedMap<u8, u64>,
        vec: &BoostedVec<u64>,
        cell: &BoostedCell<u64>,
        counter: &BoostedCounterMap<u8>,
    ) -> (Vec<(u8, u64)>, Vec<u64>, u64, Vec<(u8, u64)>) {
        let mut m = map.snapshot();
        m.sort_unstable();
        let mut c = counter.snapshot();
        c.sort_unstable();
        (m, vec.snapshot(), cell.peek(), c)
    }

    /// Applies one decoded operation inside `txn`.
    fn apply(
        txn: &crate::txn::Transaction,
        op: RawOp,
        map: &BoostedMap<u8, u64>,
        vec: &BoostedVec<u64>,
        cell: &BoostedCell<u64>,
        counter: &BoostedCounterMap<u8>,
    ) {
        let (selector, key, value) = op;
        match selector % 10 {
            0 => {
                map.insert(txn, key, value).unwrap();
            }
            1 => {
                map.remove(txn, &key).unwrap();
            }
            2 => {
                map.update_or(txn, key, 0, |x| *x = x.wrapping_add(value))
                    .unwrap();
            }
            3 => {
                vec.push(txn, value).unwrap();
            }
            4 => {
                vec.pop(txn).unwrap();
            }
            5 => {
                vec.set(txn, key as usize, value).unwrap();
            }
            6 => {
                cell.set(txn, value).unwrap();
            }
            7 => {
                cell.modify(txn, |x| *x = x.wrapping_add(value)).unwrap();
            }
            8 => {
                counter.add(txn, key, value).unwrap();
            }
            _ => {
                counter.set(txn, key, value).unwrap();
            }
        }
    }

    proptest! {
        /// The cross-collection undo-log contract: a transaction that
        /// interleaves mutations across all four boosted collections and
        /// then aborts must leave every collection **exactly** as it
        /// started — the typed sinks must replay in one global
        /// most-recent-first order, not per collection.
        #[test]
        fn prop_abort_restores_across_all_four_collections(
            seed_map in proptest::collection::vec((0u8..8, 0u64..100), 0..8),
            seed_vec in proptest::collection::vec(0u64..100, 0..8),
            seed_cell in 0u64..100,
            seed_counter in proptest::collection::vec((0u8..8, 1u64..100), 0..8),
            ops in proptest::collection::vec((0u8..10, 0u8..8, 0u64..100), 0..40),
        ) {
            let stm = Stm::new();
            let map: BoostedMap<u8, u64> = BoostedMap::new("prop.map");
            let vec: BoostedVec<u64> = BoostedVec::new("prop.vec");
            let cell: BoostedCell<u64> = BoostedCell::new("prop.cell", seed_cell);
            let counter: BoostedCounterMap<u8> = BoostedCounterMap::new("prop.counter");
            for (k, v) in &seed_map {
                map.seed(*k, *v);
            }
            for v in &seed_vec {
                vec.seed_push(*v);
            }
            for (k, v) in &seed_counter {
                counter.seed(*k, *v);
            }

            let before = fingerprint(&map, &vec, &cell, &counter);

            let txn = stm.begin();
            for &op in &ops {
                apply(&txn, op, &map, &vec, &cell, &counter);
            }
            txn.abort().unwrap();

            prop_assert_eq!(fingerprint(&map, &vec, &cell, &counter), before);
        }

        /// The same interleavings under a savepoint: rolling back to the
        /// savepoint undoes everything logged after it (and only that),
        /// while the transaction stays open and committable.
        #[test]
        fn prop_savepoint_rollback_is_exact(
            prefix in proptest::collection::vec((0u8..10, 0u8..8, 0u64..100), 0..12),
            suffix in proptest::collection::vec((0u8..10, 0u8..8, 0u64..100), 0..12),
        ) {
            let stm = Stm::new();
            let map: BoostedMap<u8, u64> = BoostedMap::new("sp.map");
            let vec: BoostedVec<u64> = BoostedVec::new("sp.vec");
            let cell: BoostedCell<u64> = BoostedCell::new("sp.cell", 7);
            let counter: BoostedCounterMap<u8> = BoostedCounterMap::new("sp.counter");

            let txn = stm.begin();
            for &op in &prefix {
                apply(&txn, op, &map, &vec, &cell, &counter);
            }
            let at_savepoint = fingerprint(&map, &vec, &cell, &counter);
            let sp = txn.savepoint();
            for &op in &suffix {
                apply(&txn, op, &map, &vec, &cell, &counter);
            }
            txn.rollback_to(sp);
            prop_assert_eq!(fingerprint(&map, &vec, &cell, &counter), at_savepoint);
            txn.commit().unwrap();
        }
    }
}
