//! Boosted (transaction-aware) collections.
//!
//! These are the equivalents of the paper's "boosted hashtables": ordinary
//! concurrent containers whose operations, when performed inside a
//! [`crate::Transaction`], first acquire the appropriate abstract lock and
//! record an inverse operation. Outside of a transaction they can only be
//! inspected through the non-transactional `snapshot`/`restore` methods
//! used for state commitment and test assertions.
//!
//! | Type | Protects | Lock granularity |
//! |------|----------|------------------|
//! | [`BoostedMap`] | a key→value mapping (Solidity `mapping`) | one lock per key |
//! | [`BoostedCell`] | a single scalar state variable | one lock per cell |
//! | [`BoostedVec`] | a dynamically sized array | one lock per index + a length lock |
//! | [`BoostedCounterMap`] | a key→integer tally | per-key lock, **additive** mode for `add` |

mod cell;
mod counter;
mod map;
mod vec;

pub use cell::BoostedCell;
pub use counter::BoostedCounterMap;
pub use map::BoostedMap;
pub use vec::BoostedVec;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Stm;
    use proptest::prelude::*;

    /// One randomly chosen operation against one of the four collections,
    /// decoded from a `(selector, key, value)` tuple (the proptest shim
    /// supports ranges and tuples, not `prop_oneof`).
    type RawOp = (u8, u8, u64);

    /// A point-in-time fingerprint of all four collections.
    #[allow(clippy::type_complexity)]
    fn fingerprint(
        map: &BoostedMap<u8, u64>,
        vec: &BoostedVec<u64>,
        cell: &BoostedCell<u64>,
        counter: &BoostedCounterMap<u8>,
    ) -> (Vec<(u8, u64)>, Vec<u64>, u64, Vec<(u8, u64)>) {
        let mut m = map.snapshot();
        m.sort_unstable();
        let mut c = counter.snapshot();
        c.sort_unstable();
        (m, vec.snapshot(), cell.peek(), c)
    }

    /// Applies one decoded operation inside `txn`.
    fn apply(
        txn: &crate::txn::Transaction,
        op: RawOp,
        map: &BoostedMap<u8, u64>,
        vec: &BoostedVec<u64>,
        cell: &BoostedCell<u64>,
        counter: &BoostedCounterMap<u8>,
    ) {
        let (selector, key, value) = op;
        match selector % 10 {
            0 => {
                map.insert(txn, key, value).unwrap();
            }
            1 => {
                map.remove(txn, &key).unwrap();
            }
            2 => {
                map.update_or(txn, key, 0, |x| *x = x.wrapping_add(value))
                    .unwrap();
            }
            3 => {
                vec.push(txn, value).unwrap();
            }
            4 => {
                vec.pop(txn).unwrap();
            }
            5 => {
                vec.set(txn, key as usize, value).unwrap();
            }
            6 => {
                cell.set(txn, value).unwrap();
            }
            7 => {
                cell.modify(txn, |x| *x = x.wrapping_add(value)).unwrap();
            }
            8 => {
                counter.add(txn, key, value).unwrap();
            }
            _ => {
                counter.set(txn, key, value).unwrap();
            }
        }
    }

    proptest! {
        /// The cross-collection undo-log contract: a transaction that
        /// interleaves mutations across all four boosted collections and
        /// then aborts must leave every collection **exactly** as it
        /// started — the typed sinks must replay in one global
        /// most-recent-first order, not per collection.
        #[test]
        fn prop_abort_restores_across_all_four_collections(
            seed_map in proptest::collection::vec((0u8..8, 0u64..100), 0..8),
            seed_vec in proptest::collection::vec(0u64..100, 0..8),
            seed_cell in 0u64..100,
            seed_counter in proptest::collection::vec((0u8..8, 1u64..100), 0..8),
            ops in proptest::collection::vec((0u8..10, 0u8..8, 0u64..100), 0..40),
        ) {
            let stm = Stm::new();
            let map: BoostedMap<u8, u64> = BoostedMap::new("prop.map");
            let vec: BoostedVec<u64> = BoostedVec::new("prop.vec");
            let cell: BoostedCell<u64> = BoostedCell::new("prop.cell", seed_cell);
            let counter: BoostedCounterMap<u8> = BoostedCounterMap::new("prop.counter");
            for (k, v) in &seed_map {
                map.seed(*k, *v);
            }
            for v in &seed_vec {
                vec.seed_push(*v);
            }
            for (k, v) in &seed_counter {
                counter.seed(*k, *v);
            }

            let before = fingerprint(&map, &vec, &cell, &counter);

            let txn = stm.begin();
            for &op in &ops {
                apply(&txn, op, &map, &vec, &cell, &counter);
            }
            txn.abort().unwrap();

            prop_assert_eq!(fingerprint(&map, &vec, &cell, &counter), before);
        }

        /// The same interleavings under a savepoint: rolling back to the
        /// savepoint undoes everything logged after it (and only that),
        /// while the transaction stays open and committable.
        #[test]
        fn prop_savepoint_rollback_is_exact(
            prefix in proptest::collection::vec((0u8..10, 0u8..8, 0u64..100), 0..12),
            suffix in proptest::collection::vec((0u8..10, 0u8..8, 0u64..100), 0..12),
        ) {
            let stm = Stm::new();
            let map: BoostedMap<u8, u64> = BoostedMap::new("sp.map");
            let vec: BoostedVec<u64> = BoostedVec::new("sp.vec");
            let cell: BoostedCell<u64> = BoostedCell::new("sp.cell", 7);
            let counter: BoostedCounterMap<u8> = BoostedCounterMap::new("sp.counter");

            let txn = stm.begin();
            for &op in &prefix {
                apply(&txn, op, &map, &vec, &cell, &counter);
            }
            let at_savepoint = fingerprint(&map, &vec, &cell, &counter);
            let sp = txn.savepoint();
            for &op in &suffix {
                apply(&txn, op, &map, &vec, &cell, &counter);
            }
            txn.rollback_to(sp);
            prop_assert_eq!(fingerprint(&map, &vec, &cell, &counter), at_savepoint);
            txn.commit().unwrap();
        }

        /// Pooled transactions are indistinguishable from fresh ones: the
        /// same random op sequences applied through `Stm::begin` and
        /// through a `TxnScope`'s recycled arenas (mixing commits and
        /// aborts, so undo logs, held sets and sinks all get reused) must
        /// produce identical final states — no state may leak between an
        /// arena's lives.
        #[test]
        fn prop_pooled_transactions_leak_no_state(
            txns in proptest::collection::vec(
                (any::<bool>(), proptest::collection::vec((0u8..10, 0u8..8, 0u64..100), 0..12)),
                0..8,
            ),
        ) {
            let run = |label: &str, pooled: bool| {
                let stm = Stm::new();
                let map: BoostedMap<u8, u64> = BoostedMap::new(&format!("{label}.map"));
                let vec: BoostedVec<u64> = BoostedVec::new(&format!("{label}.vec"));
                let cell: BoostedCell<u64> = BoostedCell::new(&format!("{label}.cell"), 7);
                let counter: BoostedCounterMap<u8> =
                    BoostedCounterMap::new(&format!("{label}.counter"));
                let scope = stm.begin_block();
                for (commit, ops) in &txns {
                    // The scope arm reuses one pool for every transaction;
                    // the fresh arm constructs a new Transaction each time.
                    if pooled {
                        let txn = scope.begin();
                        for &op in ops {
                            apply(&txn, op, &map, &vec, &cell, &counter);
                        }
                        if *commit {
                            txn.commit().unwrap();
                        } else {
                            txn.abort().unwrap();
                        }
                    } else {
                        let txn = stm.begin();
                        for &op in ops {
                            apply(&txn, op, &map, &vec, &cell, &counter);
                        }
                        if *commit {
                            txn.commit().unwrap();
                        } else {
                            txn.abort().unwrap();
                        }
                    }
                }
                fingerprint(&map, &vec, &cell, &counter)
            };
            prop_assert_eq!(run("fresh", false), run("pooled", true));
        }
    }

    /// N threads hammer all four collections through the raw (RwLock-free)
    /// backing stores concurrently on disjoint keys, then the final state
    /// is checked against a `HashMap`/`Vec` reference built from the same
    /// schedule. Disjoint keys mean disjoint abstract locks — so this
    /// drives exactly the window the per-shard latches must cover: distinct
    /// keys sharing one open-addressing table (and vector elements sharing
    /// one allocation) being mutated from different threads at once.
    #[test]
    fn disjoint_key_stress_across_all_four_collections() {
        use std::collections::HashMap;

        const THREADS: usize = 8;
        const KEYS_PER_THREAD: u64 = 64;
        const ROUNDS: usize = 4;

        let stm = Stm::new();
        let map: BoostedMap<u64, u64> = BoostedMap::new("stress.map");
        let vec: BoostedVec<u64> = BoostedVec::new("stress.vec");
        let counter: BoostedCounterMap<u64> = BoostedCounterMap::new("stress.counter");
        // Cells are whole-collection locks, so give each thread its own.
        let cells: Vec<BoostedCell<u64>> = (0..THREADS)
            .map(|t| BoostedCell::new(&format!("stress.cell.{t}"), 0))
            .collect();
        for i in 0..(THREADS as u64 * KEYS_PER_THREAD) {
            vec.seed_push(i);
        }

        std::thread::scope(|scope| {
            for (t, cell) in cells.iter().enumerate() {
                let stm = stm.clone();
                let map = map.clone();
                let vec = vec.clone();
                let counter = counter.clone();
                let cell = cell.clone();
                scope.spawn(move || {
                    let base = t as u64 * KEYS_PER_THREAD;
                    for round in 0..ROUNDS as u64 {
                        for k in base..base + KEYS_PER_THREAD {
                            stm.run(|txn| {
                                map.insert(txn, k, k * 10 + round)?;
                                counter.add(txn, k, round + 1)?;
                                vec.set(txn, k as usize, k + round)?;
                                cell.modify(txn, |v| *v += k)?;
                                // Read back under the same locks: another
                                // thread rehashing a shared shard must not
                                // corrupt this key's binding mid-probe.
                                assert_eq!(map.get(txn, &k)?, Some(k * 10 + round));
                                Ok(())
                            })
                            .unwrap();
                        }
                    }
                });
            }
        });

        // Reference state from the same (per-key deterministic) schedule.
        let mut ref_map = HashMap::new();
        let mut ref_vec: Vec<u64> = (0..(THREADS as u64 * KEYS_PER_THREAD)).collect();
        let last_round = ROUNDS as u64 - 1;
        for k in 0..(THREADS as u64 * KEYS_PER_THREAD) {
            ref_map.insert(k, k * 10 + last_round);
            ref_vec[k as usize] = k + last_round;
        }
        let got_map: HashMap<u64, u64> = map.snapshot().into_iter().collect();
        assert_eq!(got_map, ref_map);
        assert_eq!(vec.snapshot(), ref_vec);
        for k in 0..(THREADS as u64 * KEYS_PER_THREAD) {
            assert_eq!(counter.peek(&k), (1..=ROUNDS as u64).sum::<u64>());
        }
        for (t, cell) in cells.iter().enumerate() {
            let base = t as u64 * KEYS_PER_THREAD;
            let per_round: u64 = (base..base + KEYS_PER_THREAD).sum();
            assert_eq!(cell.peek(), per_round * ROUNDS as u64);
        }
    }

    /// The acceptance criterion of the raw-store refactor, asserted
    /// directly: a transaction driving every operation of all four
    /// collections acquires **zero** reader-writer locks. The counter is a
    /// debug-only extension of the `parking_lot` shim (see
    /// `shims/README.md`).
    #[cfg(debug_assertions)]
    #[test]
    fn boosted_ops_acquire_zero_rwlocks() {
        let stm = Stm::new();
        let map: BoostedMap<u8, u64> = BoostedMap::new("norw.map");
        let vec: BoostedVec<u64> = BoostedVec::new("norw.vec");
        let cell: BoostedCell<u64> = BoostedCell::new("norw.cell", 1);
        let counter: BoostedCounterMap<u8> = BoostedCounterMap::new("norw.counter");
        map.seed(1, 10);
        vec.seed_push(5);

        let before = parking_lot::rwlock_acquisition_count();
        stm.run(|txn| {
            map.insert(txn, 2, 20)?;
            map.get(txn, &1)?;
            map.get_with(txn, &1, |v| v.copied())?;
            map.contains_key(txn, &2)?;
            map.update_or(txn, 3, 0, |x| *x += 1)?;
            map.replace(txn, 1, 11)?;
            map.take(txn, &3)?;
            map.remove(txn, &2)?;
            vec.len(txn)?;
            vec.get(txn, 0)?;
            vec.get_with(txn, 0, |v| v.copied())?;
            vec.push(txn, 6)?;
            vec.set(txn, 0, 7)?;
            vec.modify(txn, 0, |x| *x += 1)?;
            vec.pop(txn)?;
            cell.get(txn)?;
            cell.with(txn, |v| *v)?;
            cell.set(txn, 2)?;
            cell.modify(txn, |v| *v += 1)?;
            counter.add(txn, 1, 5)?;
            counter.get(txn, &1)?;
            counter.set(txn, 2, 9)?;
            Ok(())
        })
        .unwrap();
        // Aborts replay the undo log through the raw stores too.
        let txn = stm.begin();
        map.insert(&txn, 9, 90).unwrap();
        vec.push(&txn, 9).unwrap();
        cell.set(&txn, 9).unwrap();
        counter.add(&txn, 9, 9).unwrap();
        txn.abort().unwrap();
        assert_eq!(
            parking_lot::rwlock_acquisition_count() - before,
            0,
            "boosted-collection hot path must not acquire any RwLock"
        );
    }
}
