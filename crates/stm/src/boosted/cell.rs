//! A boosted scalar cell: one state variable protected by one abstract
//! lock.

use crate::error::StmError;
use crate::lock::{LockId, LockMode, LockSpace};
use crate::txn::{Transaction, UndoSink};
use cc_primitives::fx::RawSlot;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// A single transactional state variable (e.g. `highestBid`,
/// `chairperson`, `ended`).
///
/// All accesses map to the same abstract lock, so any two transactions
/// that touch the cell conflict — which is exactly the semantics of a
/// scalar Solidity state variable, and is what produces the
/// SimpleAuction/EtherDoc conflict behaviour studied in the paper.
///
/// The backing store is a latched [`RawSlot`] — no reader-writer lock.
/// The abstract cell lock already serializes conflicting accesses (shared
/// readers commute and never overlap the exclusive writer), so the
/// word-sized latch only backstops non-transactional `peek`/`seed` and
/// panics inside read closures; debug builds additionally prove the
/// abstract lock is held before every raw access.
///
/// # Example
///
/// ```
/// use cc_stm::{Stm, BoostedCell};
/// let stm = Stm::new();
/// let highest: BoostedCell<u64> = BoostedCell::new("auction.highest_bid", 0);
/// stm.run(|txn| {
///     let current = highest.get(txn)?;
///     highest.set(txn, current + 1)?;
///     Ok(())
/// }).unwrap();
/// assert_eq!(highest.peek(), 1);
/// ```
pub struct BoostedCell<T> {
    name: String,
    lock: LockId,
    value: Arc<RawSlot<T>>,
}

/// The typed undo sink of one [`BoostedCell`]: prior values, most recent
/// last.
struct CellUndo<T> {
    target: Arc<RawSlot<T>>,
    entries: Vec<T>,
}

impl<T: Send + Sync + 'static> UndoSink for CellUndo<T> {
    fn undo_last(&mut self) {
        if let Some(prior) = self.entries.pop() {
            self.target.with(|slot| *slot = prior);
        }
    }
    fn reset(&mut self) {
        self.entries.clear();
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<T> Clone for BoostedCell<T> {
    fn clone(&self) -> Self {
        BoostedCell {
            name: self.name.clone(),
            lock: self.lock,
            value: Arc::clone(&self.value),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for BoostedCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoostedCell")
            .field("name", &self.name)
            .field("value", &self.value.with(|v| format!("{v:?}")))
            .finish()
    }
}

impl<T> BoostedCell<T>
where
    T: Clone + Send + Sync + 'static,
{
    /// Creates a cell named `name` (stable, globally unique) holding
    /// `initial`.
    pub fn new(name: &str, initial: T) -> Self {
        BoostedCell {
            name: name.to_string(),
            lock: LockSpace::new(name).whole(),
            value: Arc::new(RawSlot::new(initial)),
        }
    }

    /// The stable name of this cell.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The abstract lock protecting the cell.
    pub fn lock_id(&self) -> LockId {
        self.lock
    }

    /// The undo-sink token of this cell (the backing storage address).
    fn undo_token(&self) -> usize {
        Arc::as_ptr(&self.value) as usize
    }

    /// The sink constructor passed to the transaction on first use.
    fn undo_init(&self) -> impl FnOnce() -> CellUndo<T> {
        let target = Arc::clone(&self.value);
        || CellUndo {
            target,
            entries: Vec::new(),
        }
    }

    /// Transactionally reads the value. Takes the cell lock in shared
    /// mode: concurrent reads commute.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn get(&self, txn: &Transaction) -> Result<T, StmError> {
        txn.acquire(self.lock, LockMode::Shared)?;
        txn.debug_assert_held(self.lock);
        Ok(self.value.with(|v| v.clone()))
    }

    /// Transactionally reads the value **by reference**: `f` observes it
    /// in place and only what it returns is materialized. Use this when
    /// the caller immediately discards or compares the value — it skips
    /// the `T: Clone` that [`BoostedCell::get`] pays per read. Same
    /// shared-mode locking.
    ///
    /// `f` runs under the slot's latch; it must not touch the
    /// transaction or this cell.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn with<R>(&self, txn: &Transaction, f: impl FnOnce(&T) -> R) -> Result<R, StmError> {
        txn.acquire(self.lock, LockMode::Shared)?;
        txn.debug_assert_held(self.lock);
        Ok(self.value.with(|v| f(v)))
    }

    /// Transactionally overwrites the value; the previous value moves
    /// into the undo log (no clones).
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn set(&self, txn: &Transaction, new: T) -> Result<(), StmError> {
        txn.acquire_and_log(
            self.lock,
            LockMode::Exclusive,
            self.undo_token(),
            self.undo_init(),
            || self.value.with(|slot| std::mem::replace(slot, new)),
            |sink, previous| {
                sink.entries.push(previous);
                true
            },
        )
    }

    /// Transactionally applies `f` to the value in place (a single
    /// write-lock pass) and returns the updated value.
    ///
    /// # Errors
    ///
    /// Propagates lock-acquisition failures.
    pub fn modify(&self, txn: &Transaction, f: impl FnOnce(&mut T)) -> Result<T, StmError> {
        let mut updated = None;
        txn.acquire_and_log(
            self.lock,
            LockMode::Exclusive,
            self.undo_token(),
            self.undo_init(),
            || {
                self.value.with(|slot| {
                    let previous = slot.clone();
                    f(slot);
                    updated = Some(slot.clone());
                    previous
                })
            },
            |sink, previous| {
                sink.entries.push(previous);
                true
            },
        )?;
        Ok(updated.expect("mutation ran"))
    }

    /// Non-transactional read (setup, state commitment, tests).
    pub fn peek(&self) -> T {
        self.value.with(|v| v.clone())
    }

    /// Non-transactional write (setup / snapshot restore only).
    pub fn seed(&self, value: T) {
        self.value.with(|slot| *slot = value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Stm;

    #[test]
    fn get_set_modify() {
        let stm = Stm::new();
        let c = BoostedCell::new("cell.a", 5u32);
        stm.run(|txn| {
            assert_eq!(c.get(txn)?, 5);
            c.set(txn, 6)?;
            assert_eq!(c.modify(txn, |v| *v *= 2)?, 12);
            Ok(())
        })
        .unwrap();
        assert_eq!(c.peek(), 12);
    }

    #[test]
    fn abort_restores_value() {
        let stm = Stm::new();
        let c = BoostedCell::new("cell.b", String::from("genesis"));
        let txn = stm.begin();
        c.set(&txn, "tentative".into()).unwrap();
        c.modify(&txn, |s| s.push('!')).unwrap();
        txn.abort().unwrap();
        assert_eq!(c.peek(), "genesis");
    }

    #[test]
    fn two_cells_do_not_conflict() {
        let stm = Stm::new();
        let a = BoostedCell::new("cell.x", 0u8);
        let b = BoostedCell::new("cell.y", 0u8);
        let t1 = stm.begin();
        let t2 = stm.begin();
        a.set(&t1, 1).unwrap();
        b.set(&t2, 2).unwrap();
        let p1 = t1.commit().unwrap();
        let p2 = t2.commit().unwrap();
        assert!(!p1.profile.conflicts_with(&p2.profile));
    }

    #[test]
    fn same_cell_conflicts() {
        let stm = Stm::new();
        let a = BoostedCell::new("cell.same", 0u8);
        let t1 = stm.begin();
        a.set(&t1, 1).unwrap();
        let p1 = t1.commit().unwrap();
        let t2 = stm.begin();
        a.get(&t2).unwrap();
        let p2 = t2.commit().unwrap();
        assert!(p1.profile.conflicts_with(&p2.profile));
    }

    #[test]
    fn seed_bypasses_transactions() {
        let c = BoostedCell::new("cell.seed", 0u64);
        c.seed(77);
        assert_eq!(c.peek(), 77);
    }
}
