//! Error type for speculative execution.

use crate::lock::LockId;
use crate::txn::TxnId;
use std::fmt;

/// Error raised while executing a speculative atomic action.
///
/// Conflicts and deadlocks are *retryable*: the transaction rolls back its
/// inverse log, releases its locks and can simply be re-executed (the
/// miner's worker pool does this automatically). All other variants are
/// surfaced to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmError {
    /// A deadlock was detected while waiting for `lock`; this transaction
    /// was chosen as the victim and must abort and retry.
    Deadlock {
        /// The transaction that was aborted (the requester).
        victim: TxnId,
        /// The lock whose acquisition closed the cycle.
        lock: LockId,
    },
    /// The transaction was explicitly aborted by the caller.
    Aborted {
        /// Human-readable reason recorded at the abort site.
        reason: String,
    },
    /// The retry budget of [`crate::Stm::run`] was exhausted.
    RetriesExhausted {
        /// Number of attempts made before giving up.
        attempts: u32,
    },
    /// An operation was attempted on a transaction that already committed
    /// or aborted.
    TransactionClosed,
}

impl StmError {
    /// Whether re-executing the transaction may succeed (deadlock victims
    /// and explicit conflict aborts are retryable).
    pub fn is_retryable(&self) -> bool {
        matches!(self, StmError::Deadlock { .. })
    }
}

impl fmt::Display for StmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmError::Deadlock { victim, lock } => {
                write!(
                    f,
                    "deadlock detected: transaction {victim} aborted while acquiring {lock}"
                )
            }
            StmError::Aborted { reason } => write!(f, "transaction aborted: {reason}"),
            StmError::RetriesExhausted { attempts } => {
                write!(f, "transaction failed to commit after {attempts} attempts")
            }
            StmError::TransactionClosed => f.write_str("transaction already committed or aborted"),
        }
    }
}

impl std::error::Error for StmError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::LockSpace;

    #[test]
    fn retryability() {
        let deadlock = StmError::Deadlock {
            victim: TxnId(1),
            lock: LockSpace::new("x").whole(),
        };
        assert!(deadlock.is_retryable());
        assert!(!StmError::TransactionClosed.is_retryable());
        assert!(!StmError::Aborted {
            reason: "user".into()
        }
        .is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e = StmError::RetriesExhausted { attempts: 12 };
        assert!(e.to_string().contains("12"));
        let e = StmError::Aborted {
            reason: "double vote".into(),
        };
        assert!(e.to_string().contains("double vote"));
    }
}
